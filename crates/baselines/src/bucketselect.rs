//! BucketSelect (Alabi, Blanchard, Gordon, Steinbach 2012, §III/\[10\]):
//! recursive bucketing by **uniformly splitting the input value range**.
//!
//! Each level computes `min`/`max`, assigns every element the bucket
//! `⌊(x - min) / (max - min) · b⌋`, counts, and recurses into the bucket
//! containing the target rank with that bucket's (narrower) value range.
//! "Their splitter choice is optimized for uniformly distributed data,
//! simplifying their bucket index calculation significantly" (§V-D) —
//! the bucket index is one fused multiply-add instead of a
//! `log2(b)`-level search-tree walk, which is why BucketSelect is fast
//! *when the data is uniform*. On clustered value distributions the
//! uniform split packs nearly everything into one bucket and the
//! recursion degenerates — SampleSelect's headline robustness claim.

use gpu_sim::arch::v100;
use gpu_sim::warp::{warp_atomic_stats, WARP_SIZE};
use gpu_sim::{Device, KernelCost, LaunchOrigin, ScatterBuffer};
use sampleselect::count::{CountResult, OracleBuf};
use sampleselect::element::SelectElement;
use sampleselect::filter::filter_kernel;
use sampleselect::instrument::SelectReport;
use sampleselect::params::SampleSelectConfig;
use sampleselect::recursion::base_case_select;
use sampleselect::reduce::reduce_kernel;
use sampleselect::{SelectError, SelectResult};

const MAX_LEVELS: u32 = 256;

/// Min/max reduction kernel: one pass over the data.
fn minmax_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> (T, T) {
    let launch = cfg.launch_config(data.len(), T::BYTES);
    let extremes: Option<(T, T)> = hpc_par::parallel_map_reduce(
        device.pool(),
        data.len(),
        1 << 12,
        None,
        |range, acc: Option<(T, T)>| {
            let mut acc = acc;
            for &x in &data[range] {
                acc = match acc {
                    None => Some((x, x)),
                    Some((lo, hi)) => {
                        Some((if x.lt(lo) { x } else { lo }, if hi.lt(x) { x } else { hi }))
                    }
                };
            }
            acc
        },
        |a, b| match (a, b) {
            (None, x) | (x, None) => x,
            (Some((alo, ahi)), Some((blo, bhi))) => Some((
                if blo.lt(alo) { blo } else { alo },
                if ahi.lt(bhi) { bhi } else { ahi },
            )),
        },
    );
    let mut cost = KernelCost::new();
    cost.global_read_bytes = (data.len() * T::BYTES) as u64;
    cost.int_ops = data.len() as u64 * 2;
    cost.warp_intrinsics = (data.len() / WARP_SIZE) as u64; // shuffle reduction
    cost.blocks = launch.blocks as u64;
    device.commit("minmax", launch, origin, cost);
    extremes.expect("minmax kernel requires non-empty input")
}

/// The value-range bucket index: `⌊(x - lo) / (hi - lo) · b⌋`, clamped.
#[inline]
fn value_bucket<T: SelectElement>(x: T, lo: f64, inv_width: f64, b: usize) -> u32 {
    let rel = (x.to_f64() - lo) * inv_width;
    let idx = (rel * b as f64) as i64;
    idx.clamp(0, b as i64 - 1) as u32
}

/// The BucketSelect assignment kernel: like SampleSelect's `count`, but
/// the bucket index comes from value arithmetic instead of a tree walk.
fn assign_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    lo: f64,
    hi: f64,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> CountResult {
    let n = data.len();
    let b = cfg.num_buckets;
    assert!(b <= 256, "BucketSelect stores one-byte oracles (b <= 256)");
    let launch = cfg.launch_config(n, T::BYTES);
    let blocks = launch.blocks as usize;
    let chunk = launch.block_chunk(n);
    let inv_width = if hi > lo { 1.0 / (hi - lo) } else { 0.0 };

    let partials = ScatterBuffer::<u64>::new(b * blocks);
    let oracles = ScatterBuffer::<u8>::new(n);
    let partials_ref = &partials;
    let oracles_ref = &oracles;

    let mut cost = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        KernelCost::new(),
        |range, mut cost| {
            let mut local = vec![0u64; b];
            let mut scratch = vec![0u32; b];
            let mut warp_buckets = [0u32; WARP_SIZE];
            for block in range {
                let start = block * chunk;
                let end = ((block + 1) * chunk).min(n);
                local.iter_mut().for_each(|c| *c = 0);
                if start < end {
                    let mut idx = start;
                    while idx < end {
                        let wlen = WARP_SIZE.min(end - idx);
                        for lane in 0..wlen {
                            let bucket = value_bucket(data[idx + lane], lo, inv_width, b);
                            warp_buckets[lane] = bucket;
                            local[bucket as usize] += 1;
                            // SAFETY: element indexes are block-disjoint.
                            unsafe { oracles_ref.write(idx + lane, bucket as u8) };
                        }
                        let stats = warp_atomic_stats(&warp_buckets[..wlen], &mut scratch);
                        cost.shared_atomic_warp_ops += 1;
                        if !cfg.warp_aggregation {
                            cost.shared_atomic_replays +=
                                stats.max_multiplicity.saturating_sub(1) as u64;
                        }
                        if cfg.warp_aggregation {
                            cost.warp_intrinsics += 8;
                        }
                        idx += wlen;
                    }
                    let len = (end - start) as u64;
                    cost.global_read_bytes += len * T::BYTES as u64;
                    // one subtract, one multiply, one truncate, one clamp
                    cost.int_ops += len * 4;
                    cost.global_write_bytes += len; // u8 oracle
                    cost.global_write_bytes += b as u64 * 4; // partial store
                    cost.blocks += 1;
                }
                for (bucket, &c) in local.iter().enumerate() {
                    // SAFETY: unique (bucket, block) slot per block.
                    unsafe { partials_ref.write(bucket * blocks + block, c) };
                }
            }
            cost
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    );
    cost.blocks = cost.blocks.max(1);
    device.commit("assign", launch, origin, cost);

    // SAFETY: all slots written exactly once.
    let partials = unsafe { partials.into_vec(b * blocks) };
    let oracles = unsafe { oracles.into_vec(n) };
    let mut counts = vec![0u64; b];
    for bucket in 0..b {
        counts[bucket] = partials[bucket * blocks..(bucket + 1) * blocks]
            .iter()
            .sum();
    }
    CountResult {
        counts,
        partials,
        blocks,
        oracles: Some(OracleBuf::U8(oracles)),
    }
}

/// BucketSelect on a simulated device.
pub fn bucket_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    if data.is_empty() {
        return Err(SelectError::EmptyInput);
    }
    if rank >= data.len() {
        return Err(SelectError::RankOutOfRange {
            rank,
            len: data.len(),
        });
    }
    let n = data.len();
    let records_before = device.records().len();

    let mut storage: Vec<T> = Vec::new();
    let mut use_storage = false;
    let mut k = rank;
    let mut levels = 0u32;
    let mut terminated_early = false;
    // The value range is measured ONCE (level 0) and thereafter derived
    // arithmetically from the chosen bucket's boundaries — this is the
    // published algorithm's key simplification, and the reason it
    // degrades on clustered data: the range only narrows by a factor of
    // `b` per level no matter where the elements actually lie.
    let mut range: Option<(f64, f64)> = None;
    let value: T;

    loop {
        let cur: &[T] = if use_storage { &storage } else { data };
        let origin = if levels == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };
        if cur.len() <= cfg.base_case_size {
            value = base_case_select(device, cur, k, cfg, origin);
            break;
        }
        if levels >= MAX_LEVELS {
            return Err(SelectError::RecursionLimit);
        }
        levels += 1;

        let (lo, hi) = match range {
            Some(r) => r,
            None => {
                let (min_v, max_v) = minmax_kernel(device, cur, cfg, origin);
                if !min_v.lt(max_v) {
                    // All elements are equal.
                    value = min_v;
                    terminated_early = true;
                    break;
                }
                (min_v.to_f64(), max_v.to_f64())
            }
        };
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater)
            || (hi - lo) / cfg.num_buckets as f64 <= 0.0
        {
            // The arithmetic range has collapsed below representable
            // resolution: bucketing can no longer make progress, so fall
            // back to sorting whatever remains.
            value = base_case_select(device, cur, k, cfg, origin);
            break;
        }
        let count = assign_kernel(device, cur, lo, hi, cfg, LaunchOrigin::Device);
        let red = reduce_kernel(device, &count, LaunchOrigin::Device);
        let bucket = red.bucket_for_rank(k as u64);
        let bucket_u32 = bucket as u32;
        let next = filter_kernel(
            device,
            cur,
            &count,
            &red,
            bucket_u32..bucket_u32 + 1,
            cfg,
            LaunchOrigin::Device,
        );
        k -= red.bucket_offsets[bucket] as usize;
        debug_assert!(k < next.len());
        storage = next;
        use_storage = true;
        // Next level's range: this bucket's boundaries.
        let width = (hi - lo) / cfg.num_buckets as f64;
        range = Some((lo + bucket as f64 * width, lo + (bucket + 1) as f64 * width));
    }

    let report = SelectReport::from_records(
        "bucketselect",
        n,
        &device.records()[records_before..],
        levels,
        terminated_early,
    );
    Ok(SelectResult { value, report })
}

/// BucketSelect on a default simulated device (Tesla V100).
pub fn bucket_select<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    bucket_select_on_device(&mut device, data, rank, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_par::ThreadPool;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sampleselect::element::reference_select;

    fn select(data: &[f32], rank: usize) -> SelectResult<f32> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        bucket_select_on_device(&mut device, data, rank, &SampleSelectConfig::default()).unwrap()
    }

    #[test]
    fn matches_reference_on_uniform_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f32> = (0..100_000).map(|_| rng.gen::<f32>()).collect();
        for rank in [0usize, 777, 50_000, 99_999] {
            assert_eq!(
                select(&data, rank).value,
                reference_select(&data, rank).unwrap(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn uniform_data_needs_few_levels() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<f32> = (0..1_000_000).map(|_| rng.gen::<f32>()).collect();
        let res = select(&data, 500_000);
        assert!(res.report.levels <= 3, "levels = {}", res.report.levels);
    }

    #[test]
    fn all_equal_terminates_via_range_collapse() {
        let data = vec![4.25f32; 50_000];
        let res = select(&data, 10_000);
        assert_eq!(res.value, 4.25);
        assert!(res.report.terminated_early);
    }

    #[test]
    fn duplicates_handled_correctly() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f32> = (0..80_000)
            .map(|_| (rng.gen_range(0..16) as f32) * 0.5)
            .collect();
        for rank in [0usize, 40_000, 79_999] {
            assert_eq!(
                select(&data, rank).value,
                reference_select(&data, rank).unwrap()
            );
        }
    }

    #[test]
    fn clustered_outliers_degrade_recursion_depth() {
        // The robustness claim: value-range splitting needs many more
        // levels on clustered data than on uniform data of the same size.
        let mut rng = StdRng::seed_from_u64(4);
        let clustered: Vec<f32> = (0..200_000)
            .map(|_| {
                if rng.gen::<f64>() < 1e-4 {
                    rng.gen::<f32>() * 1e9
                } else {
                    rng.gen::<f32>() * 1e-6
                }
            })
            .collect();
        let uniform: Vec<f32> = (0..200_000).map(|_| rng.gen::<f32>()).collect();
        let res_c = select(&clustered, 100_000);
        let res_u = select(&uniform, 100_000);
        assert_eq!(
            res_c.value,
            reference_select(&clustered, 100_000).unwrap(),
            "still correct, just slow"
        );
        assert!(
            res_c.report.levels >= res_u.report.levels + 2,
            "clustered {} vs uniform {} levels",
            res_c.report.levels,
            res_u.report.levels
        );
    }

    #[test]
    fn negative_values_supported() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f32> = (0..50_000)
            .map(|_| rng.gen::<f32>() * 100.0 - 50.0)
            .collect();
        assert_eq!(
            select(&data, 25_000).value,
            reference_select(&data, 25_000).unwrap()
        );
    }

    #[test]
    fn errors_propagate() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        assert_eq!(
            bucket_select_on_device::<f32>(&mut device, &[], 0, &SampleSelectConfig::default())
                .unwrap_err(),
            SelectError::EmptyInput
        );
    }
}
