//! Sequential host-side selection references.
//!
//! These are the classical algorithms the paper's §II frames SampleSelect
//! against: Hoare's Quickselect \[1\], the deterministic median-of-medians
//! bound \[3\], and Floyd–Rivest (the practical state of the art for
//! sequential selection), plus full-sort selection and the `std`
//! introselect wrapper used as the correctness oracle (the paper
//! validates against C++ `std::nth_element`; Rust's
//! `select_nth_unstable` plays that role here).
//!
//! All functions select the `k`-th smallest element (0-based) and run in
//! place on a mutable slice.

use sampleselect::element::SelectElement;
use sampleselect::rng::SplitMix64;

/// The `std` introselect: the workspace-wide correctness oracle.
pub fn std_select<T: SelectElement>(data: &mut [T], k: usize) -> T {
    assert!(k < data.len());
    let (_, kth, _) = data.select_nth_unstable_by(k, |a, b| a.total_cmp(*b));
    *kth
}

/// Full sort, then index — the O(n log n) strawman.
pub fn sort_select<T: SelectElement>(data: &mut [T], k: usize) -> T {
    assert!(k < data.len());
    data.sort_unstable_by(|a, b| a.total_cmp(*b));
    data[k]
}

/// Hoare's Quickselect \[1\]: random pivot, three-way partition, expected
/// O(n).
pub fn hoare_quickselect<T: SelectElement>(data: &mut [T], k: usize) -> T {
    assert!(k < data.len());
    let mut rng = SplitMix64::new(0x9e3779b9);
    let mut lo = 0usize;
    let mut hi = data.len();
    let mut k = k;
    loop {
        if hi - lo <= 16 {
            data[lo..hi].sort_unstable_by(|a, b| a.total_cmp(*b));
            return data[lo + k];
        }
        let pivot = data[lo + rng.next_below(hi - lo)];
        let (lt, eq) = three_way_partition(&mut data[lo..hi], pivot);
        if k < lt {
            hi = lo + lt;
        } else if k < lt + eq {
            return pivot;
        } else {
            k -= lt + eq;
            lo += lt + eq;
        }
    }
}

/// Dutch-national-flag partition: returns (#less, #equal); the slice is
/// reordered as [less | equal | greater].
fn three_way_partition<T: SelectElement>(data: &mut [T], pivot: T) -> (usize, usize) {
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    while i < gt {
        let x = data[i];
        if x.lt(pivot) {
            data.swap(lt, i);
            lt += 1;
            i += 1;
        } else if pivot.lt(x) {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt - lt)
}

/// Deterministic O(n) selection via median of medians \[3\] (groups of 5).
pub fn median_of_medians_select<T: SelectElement>(data: &mut [T], k: usize) -> T {
    assert!(k < data.len());
    let mut lo = 0usize;
    let mut hi = data.len();
    let mut k = k;
    loop {
        if hi - lo <= 10 {
            data[lo..hi].sort_unstable_by(|a, b| a.total_cmp(*b));
            return data[lo + k];
        }
        let pivot = median_of_medians(&mut data[lo..hi].to_vec()[..]);
        let (lt, eq) = three_way_partition(&mut data[lo..hi], pivot);
        if k < lt {
            hi = lo + lt;
        } else if k < lt + eq {
            return pivot;
        } else {
            k -= lt + eq;
            lo += lt + eq;
        }
    }
}

/// The median-of-medians pivot: exact median of the group-of-5 medians.
fn median_of_medians<T: SelectElement>(data: &mut [T]) -> T {
    if data.len() <= 5 {
        data.sort_unstable_by(|a, b| a.total_cmp(*b));
        return data[data.len() / 2];
    }
    let mut medians: Vec<T> = data
        .chunks_mut(5)
        .map(|chunk| {
            chunk.sort_unstable_by(|a, b| a.total_cmp(*b));
            chunk[chunk.len() / 2]
        })
        .collect();
    let mid = medians.len() / 2;
    median_of_medians_select(&mut medians, mid)
}

/// Floyd–Rivest SELECT: samples a subrange around the expected position
/// of the target and recurses with tight bounds — the fastest known
/// general-purpose sequential selection in practice.
pub fn floyd_rivest_select<T: SelectElement>(data: &mut [T], k: usize) -> T {
    assert!(k < data.len());
    floyd_rivest_rec(data, 0, data.len() - 1, k);
    data[k]
}

fn floyd_rivest_rec<T: SelectElement>(data: &mut [T], mut left: usize, mut right: usize, k: usize) {
    // Faithful transcription of Algorithm 489 (Floyd & Rivest 1975).
    while right > left {
        if right - left > 600 {
            // Narrow the working range by recursing on a sample-derived
            // subinterval expected to contain the answer.
            let n = (right - left + 1) as f64;
            let i = (k - left + 1) as f64;
            let z = n.ln();
            let s = 0.5 * (2.0 * z / 3.0).exp();
            let sign = if i - n / 2.0 < 0.0 { -1.0 } else { 1.0 };
            let sd = 0.5 * (z * s * (n - s) / n).sqrt() * sign;
            let new_left = ((k as f64 - i * s / n + sd).max(left as f64)) as usize;
            let new_right = ((k as f64 + (n - i) * s / n + sd).min(right as f64)) as usize;
            floyd_rivest_rec(data, new_left, new_right, k);
        }
        let t = data[k];
        let mut i = left;
        let mut j = right;
        data.swap(left, k);
        if t.lt(data[right]) {
            // array[right] > t
            data.swap(right, left);
        }
        while i < j {
            data.swap(i, j);
            i += 1;
            j -= 1;
            while data[i].lt(t) {
                i += 1;
            }
            while t.lt(data[j]) {
                // sentinel at `left` (<= t) guarantees j never passes it
                j -= 1;
            }
        }
        let t_at_left = !data[left].lt(t) && !t.lt(data[left]);
        if t_at_left {
            data.swap(left, j);
        } else {
            j += 1;
            data.swap(j, right);
        }
        // Adjust the working range towards k.
        if j <= k {
            left = j + 1;
        }
        if k <= j {
            if j == 0 {
                break;
            }
            right = j - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type Selector = fn(&mut [f64], usize) -> f64;

    const SELECTORS: [(&str, Selector); 5] = [
        ("std", std_select::<f64>),
        ("sort", sort_select::<f64>),
        ("hoare", hoare_quickselect::<f64>),
        ("mom", median_of_medians_select::<f64>),
        ("floyd-rivest", floyd_rivest_select::<f64>),
    ];

    fn check_all(data: &[f64], k: usize) {
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected = sorted[k];
        for (name, f) in SELECTORS {
            let mut copy = data.to_vec();
            let got = f(&mut copy, k);
            assert_eq!(got, expected, "{name} failed at k={k} (n={})", data.len());
        }
    }

    #[test]
    fn agree_on_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 17, 100, 1000, 20_000] {
            let data: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 100.0).collect();
            for k in [0, n / 3, n / 2, n - 1] {
                check_all(&data, k);
            }
        }
    }

    #[test]
    fn agree_on_duplicates() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<f64> = (0..5_000).map(|_| rng.gen_range(0..7) as f64).collect();
        for k in [0usize, 1, 2_500, 4_999] {
            check_all(&data, k);
        }
    }

    #[test]
    fn agree_on_sorted_and_reversed() {
        let asc: Vec<f64> = (0..3_000).map(|i| i as f64).collect();
        let desc: Vec<f64> = (0..3_000).map(|i| (3_000 - i) as f64).collect();
        for k in [0usize, 1_500, 2_999] {
            check_all(&asc, k);
            check_all(&desc, k);
        }
    }

    #[test]
    fn agree_on_all_equal() {
        let data = vec![42.0f64; 2_000];
        check_all(&data, 0);
        check_all(&data, 1_000);
        check_all(&data, 1_999);
    }

    #[test]
    fn three_way_partition_invariants() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut data: Vec<f64> = (0..500).map(|_| rng.gen_range(0..20) as f64).collect();
            let pivot = data[rng.gen_range(0..500)];
            let (lt, eq) = three_way_partition(&mut data, pivot);
            assert!(data[..lt].iter().all(|&x| x < pivot));
            assert!(data[lt..lt + eq].iter().all(|&x| x == pivot));
            assert!(data[lt + eq..].iter().all(|&x| x > pivot));
            assert!(eq >= 1, "pivot from the data must appear");
        }
    }

    #[test]
    fn median_of_medians_pivot_is_balanced() {
        // The MoM pivot guarantees a 30/70 split at worst.
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<f64> = (0..10_000).map(|_| rng.gen()).collect();
        let pivot = median_of_medians(&mut data.clone()[..]);
        let smaller = data.iter().filter(|&&x| x < pivot).count();
        assert!(smaller > 10_000 * 2 / 10, "smaller = {smaller}");
        assert!(smaller < 10_000 * 8 / 10, "smaller = {smaller}");
    }

    #[test]
    fn works_with_integer_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<i32> = (0..5_000).map(|_| rng.gen()).collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for k in [0usize, 2_500, 4_999] {
            let mut copy = data.clone();
            assert_eq!(hoare_quickselect(&mut copy, k), sorted[k]);
            let mut copy = data.clone();
            assert_eq!(floyd_rivest_select(&mut copy, k), sorted[k]);
            let mut copy = data.clone();
            assert_eq!(median_of_medians_select(&mut copy, k), sorted[k]);
        }
    }

    #[test]
    fn floyd_rivest_large_input_exercises_sampling() {
        // > 600 elements triggers the recursive sampling path.
        let mut rng = StdRng::seed_from_u64(6);
        let data: Vec<f64> = (0..100_000).map(|_| rng.gen()).collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for k in [0usize, 123, 50_000, 99_999] {
            let mut copy = data.clone();
            assert_eq!(floyd_rivest_select(&mut copy, k), sorted[k], "k = {k}");
        }
    }
}
