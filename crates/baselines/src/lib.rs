//! # select-baselines
//!
//! The comparison algorithms of the paper's related-work section (§III,
//! §V-D), re-implemented from their published descriptions:
//!
//! * [`bucketselect`] — Alabi et al.'s BucketSelect: recursive bucketing
//!   by *uniformly splitting the input value range*. The fastest
//!   algorithm of \[10\] on uniform data — and the motivating example for
//!   SampleSelect's robustness claim, because its bucket boundaries are
//!   computed from values, not ranks.
//! * [`radixselect`] — Alabi et al.'s RadixSelect: most-significant-digit
//!   radix bucketing over the bit representation. Distribution-
//!   independent recursion depth, but always `key_bits / 8` levels.
//! * [`cpu`] — sequential host-side references: Hoare quickselect,
//!   Floyd–Rivest, median-of-medians (deterministic O(n)), full-sort
//!   selection, and the `std` introselect wrapper the tests validate
//!   against (the paper validates against C++ `std::nth_element`).

pub mod bucketselect;
pub mod cpu;
pub mod radixselect;

pub use bucketselect::{bucket_select, bucket_select_on_device};
pub use cpu::{
    floyd_rivest_select, hoare_quickselect, median_of_medians_select, sort_select, std_select,
};
pub use radixselect::{radix_select, radix_select_on_device};
