//! RadixSelect (Alabi et al. 2012, §III/\[10\]): most-significant-digit
//! radix bucketing over the binary representation.
//!
//! Each level histograms one 8-bit digit of the (order-preserving)
//! sort key, starting from the most significant, and recurses into the
//! digit bucket containing the target rank. The recursion depth is
//! **data-independent** — always `key_bits / 8` levels at most — but
//! never less either: a key insight of the paper's comparison is that
//! SampleSelect reaches the base case in ~2 levels where radix methods
//! burn a fixed number of full passes.

use gpu_sim::arch::v100;
use gpu_sim::warp::{warp_atomic_stats, WARP_SIZE};
use gpu_sim::{Device, KernelCost, LaunchOrigin, ScatterBuffer};
use sampleselect::count::{CountResult, OracleBuf};
use sampleselect::element::SelectElement;
use sampleselect::filter::filter_kernel;
use sampleselect::instrument::SelectReport;
use sampleselect::params::SampleSelectConfig;
use sampleselect::recursion::base_case_select;
use sampleselect::reduce::reduce_kernel;
use sampleselect::{SelectError, SelectResult};

/// Bits per radix digit (256 buckets, one oracle byte).
const DIGIT_BITS: u32 = 8;

/// Effective key width for a type: the number of bits that can differ.
fn key_bits<T: SelectElement>() -> u32 {
    (T::BYTES * 8) as u32
}

/// Histogram one digit of every element's sort key.
fn digit_count_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    shift: u32,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> CountResult {
    let n = data.len();
    let b = 1usize << DIGIT_BITS;
    let launch = cfg.launch_config(n, T::BYTES);
    let blocks = launch.blocks as usize;
    let chunk = launch.block_chunk(n);

    let partials = ScatterBuffer::<u64>::new(b * blocks);
    let oracles = ScatterBuffer::<u8>::new(n);
    let partials_ref = &partials;
    let oracles_ref = &oracles;

    let cost = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        KernelCost::new(),
        |range, mut cost| {
            let mut local = vec![0u64; b];
            let mut scratch = vec![0u32; b];
            let mut warp_buckets = [0u32; WARP_SIZE];
            for block in range {
                let start = block * chunk;
                let end = ((block + 1) * chunk).min(n);
                local.iter_mut().for_each(|c| *c = 0);
                if start < end {
                    let mut idx = start;
                    while idx < end {
                        let wlen = WARP_SIZE.min(end - idx);
                        for lane in 0..wlen {
                            let digit = ((data[idx + lane].to_sort_key() >> shift) & 0xff) as u32;
                            warp_buckets[lane] = digit;
                            local[digit as usize] += 1;
                            // SAFETY: block-disjoint element indexes.
                            unsafe { oracles_ref.write(idx + lane, digit as u8) };
                        }
                        let stats = warp_atomic_stats(&warp_buckets[..wlen], &mut scratch);
                        cost.shared_atomic_warp_ops += 1;
                        if !cfg.warp_aggregation {
                            cost.shared_atomic_replays +=
                                stats.max_multiplicity.saturating_sub(1) as u64;
                        }
                        if cfg.warp_aggregation {
                            cost.warp_intrinsics += DIGIT_BITS as u64;
                        }
                        idx += wlen;
                    }
                    let len = (end - start) as u64;
                    cost.global_read_bytes += len * T::BYTES as u64;
                    cost.int_ops += len * 2; // shift + mask
                    cost.global_write_bytes += len + b as u64 * 4;
                    cost.blocks += 1;
                }
                for (digit, &c) in local.iter().enumerate() {
                    // SAFETY: unique (digit, block) slot.
                    unsafe { partials_ref.write(digit * blocks + block, c) };
                }
            }
            cost
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    );
    device.commit("digit_count", launch, origin, cost);

    // SAFETY: all slots written exactly once.
    let partials = unsafe { partials.into_vec(b * blocks) };
    let oracles = unsafe { oracles.into_vec(n) };
    let mut counts = vec![0u64; b];
    for digit in 0..b {
        counts[digit] = partials[digit * blocks..(digit + 1) * blocks].iter().sum();
    }
    CountResult {
        counts,
        partials,
        blocks,
        oracles: Some(OracleBuf::U8(oracles)),
    }
}

/// RadixSelect on a simulated device.
pub fn radix_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    if data.is_empty() {
        return Err(SelectError::EmptyInput);
    }
    if rank >= data.len() {
        return Err(SelectError::RankOutOfRange {
            rank,
            len: data.len(),
        });
    }
    let n = data.len();
    let records_before = device.records().len();

    let mut storage: Vec<T> = Vec::new();
    let mut use_storage = false;
    let mut k = rank;
    let mut levels = 0u32;
    let mut terminated_early = false;
    let mut shift = key_bits::<T>();
    let value: T;

    loop {
        let cur: &[T] = if use_storage { &storage } else { data };
        let origin = if levels == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };
        if cur.len() <= cfg.base_case_size {
            value = base_case_select(device, cur, k, cfg, origin);
            break;
        }
        if shift == 0 {
            // All key bits consumed: the remaining elements share one
            // key, i.e. they are all equal under the element order.
            value = cur[0];
            terminated_early = true;
            break;
        }
        shift -= DIGIT_BITS;
        levels += 1;

        let count = digit_count_kernel(device, cur, shift, cfg, LaunchOrigin::Device);
        let red = reduce_kernel(device, &count, LaunchOrigin::Device);
        let digit = red.bucket_for_rank(k as u64);
        let digit_u32 = digit as u32;
        let next = filter_kernel(
            device,
            cur,
            &count,
            &red,
            digit_u32..digit_u32 + 1,
            cfg,
            origin,
        );
        k -= red.bucket_offsets[digit] as usize;
        debug_assert!(k < next.len());
        storage = next;
        use_storage = true;
    }

    let report = SelectReport::from_records(
        "radixselect",
        n,
        &device.records()[records_before..],
        levels,
        terminated_early,
    );
    Ok(SelectResult { value, report })
}

/// RadixSelect on a default simulated device (Tesla V100).
pub fn radix_select<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    radix_select_on_device(&mut device, data, rank, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpc_par::ThreadPool;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sampleselect::element::reference_select;

    fn select<T: SelectElement>(data: &[T], rank: usize) -> SelectResult<T> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        radix_select_on_device(&mut device, data, rank, &SampleSelectConfig::default()).unwrap()
    }

    #[test]
    fn matches_reference_on_floats() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f32> = (0..100_000).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
        for rank in [0usize, 1, 50_000, 99_999] {
            assert_eq!(
                select(&data, rank).value,
                reference_select(&data, rank).unwrap(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn matches_reference_on_integers() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<u32> = (0..80_000).map(|_| rng.gen()).collect();
        assert_eq!(
            select(&data, 40_000).value,
            reference_select(&data, 40_000).unwrap()
        );
        let signed: Vec<i32> = (0..80_000).map(|_| rng.gen()).collect();
        assert_eq!(
            select(&signed, 12_345).value,
            reference_select(&signed, 12_345).unwrap()
        );
    }

    #[test]
    fn depth_bounded_by_key_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        let f32s: Vec<f32> = (0..1_000_000).map(|_| rng.gen()).collect();
        let res = select(&f32s, 500_000);
        assert!(res.report.levels <= 4, "f32 levels = {}", res.report.levels);
        let f64s: Vec<f64> = (0..500_000).map(|_| rng.gen()).collect();
        let res = select(&f64s, 250_000);
        assert!(res.report.levels <= 8, "f64 levels = {}", res.report.levels);
    }

    #[test]
    fn all_equal_input() {
        // Identical keys: every digit pass keeps everything; terminates
        // once the key bits are exhausted (or the base case is hit —
        // here n > base_case so bits run out first... n stays constant,
        // so the bit-exhaustion path triggers).
        let data = vec![7.5f32; 20_000];
        let res = select(&data, 10_000);
        assert_eq!(res.value, 7.5);
        assert!(res.report.terminated_early);
        assert_eq!(res.report.levels, 4);
    }

    #[test]
    fn duplicates_and_clustered_data_still_correct() {
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<f32> = (0..60_000)
            .map(|_| {
                if rng.gen::<f64>() < 1e-3 {
                    rng.gen::<f32>() * 1e9
                } else {
                    rng.gen::<f32>() * 1e-6
                }
            })
            .collect();
        let res = select(&data, 30_000);
        assert_eq!(res.value, reference_select(&data, 30_000).unwrap());
        // depth stays bounded regardless of the distribution
        assert!(res.report.levels <= 4);
    }

    #[test]
    fn negative_floats_ordered_correctly() {
        let data = [-3.0f32, -1.0, -2.0, 0.0, 2.0, 1.0, -0.5];
        // small input goes straight to base case; force recursion with
        // a bigger version
        let big: Vec<f32> = (0..50_000)
            .map(|i| data[i % 7] + (i / 7) as f32 * 1e-7)
            .collect();
        assert_eq!(select(&big, 10).value, reference_select(&big, 10).unwrap());
    }

    #[test]
    fn errors_propagate() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        assert_eq!(
            radix_select_on_device::<f32>(&mut device, &[], 0, &SampleSelectConfig::default())
                .unwrap_err(),
            SelectError::EmptyInput
        );
    }
}
