//! Real wall-clock benchmarks of the host-side implementations: the
//! multithreaded CPU SampleSelect backend against the classical
//! sequential selection algorithms. This is the genuinely-measured
//! (non-simulated) half of the benchmark suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpc_par::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sampleselect::cpu::{cpu_approx_select, cpu_sample_select, CpuSelectConfig};
use select_baselines::{floyd_rivest_select, hoare_quickselect, sort_select, std_select};

fn data(n: usize) -> (Vec<f32>, usize) {
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
    let rank = rng.gen_range(0..n);
    (data, rank)
}

fn bench_selection(c: &mut Criterion) {
    let n = 1 << 20;
    let (input, rank) = data(n);
    let pool = ThreadPool::global();
    let cfg = CpuSelectConfig::default();

    let mut group = c.benchmark_group("cpu-selection");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("cpu-sampleselect", n), |b| {
        b.iter(|| cpu_sample_select(pool, &input, rank, &cfg).unwrap().0)
    });
    group.bench_function(BenchmarkId::new("cpu-approx-sampleselect", n), |b| {
        b.iter(|| cpu_approx_select(pool, &input, rank, &cfg).unwrap().0)
    });
    group.bench_function(BenchmarkId::new("std-introselect", n), |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| std_select(&mut v, rank),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("floyd-rivest", n), |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| floyd_rivest_select(&mut v, rank),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("hoare-quickselect", n), |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| hoare_quickselect(&mut v, rank),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("full-sort", n), |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| sort_select(&mut v, rank),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_duplicates(c: &mut Criterion) {
    // Duplicate-heavy input: equality buckets should keep the CPU
    // backend fast.
    let n = 1 << 20;
    let mut rng = StdRng::seed_from_u64(7);
    let input: Vec<f32> = (0..n).map(|_| rng.gen_range(0..16) as f32).collect();
    let rank = n / 2;
    let pool = ThreadPool::global();
    let cfg = CpuSelectConfig::default();

    let mut group = c.benchmark_group("cpu-selection-duplicates");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("cpu-sampleselect-d16", |b| {
        b.iter(|| cpu_sample_select(pool, &input, rank, &cfg).unwrap().0)
    });
    group.bench_function("std-introselect-d16", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| std_select(&mut v, rank),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_duplicates);
criterion_main!(benches);
