//! Criterion benches of the future-work extensions (§VI): multi-rank
//! selection, the sample-sort extension, key-value selection, and the
//! CPU backend's top-k/multiselect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::arch::v100;
use gpu_sim::Device;
use hpc_par::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sampleselect::cpu::{cpu_multi_select, cpu_top_k, CpuSelectConfig};
use sampleselect::kv::Pair;
use sampleselect::multiselect::multi_select_on_device;
use sampleselect::samplesort::sample_sort_on_device;
use sampleselect::topk::top_k_largest_on_device;
use sampleselect::{sample_select_on_device, SampleSelectConfig};

const N: usize = 1 << 18;

fn data(n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n).map(|_| rng.gen()).collect()
}

fn bench_multiselect(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let input = data(N);
    let cfg = SampleSelectConfig::default();
    let mut group = c.benchmark_group("multiselect");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for m in [1usize, 4, 16] {
        let ranks: Vec<usize> = (1..=m).map(|i| i * N / (m + 1)).collect();
        group.bench_function(BenchmarkId::new("batched", m), |b| {
            b.iter(|| {
                let mut device = Device::new(v100(), pool);
                multi_select_on_device(&mut device, &input, &ranks, &cfg).unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("separate", m), |b| {
            b.iter(|| {
                let mut device = Device::new(v100(), pool);
                ranks
                    .iter()
                    .map(|&r| {
                        sample_select_on_device(&mut device, &input, r, &cfg)
                            .unwrap()
                            .value
                    })
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

fn bench_samplesort(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let input = data(N);
    let cfg = SampleSelectConfig::default();
    let mut group = c.benchmark_group("samplesort");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("device-samplesort", |b| {
        b.iter(|| {
            let mut device = Device::new(v100(), pool);
            sample_sort_on_device(&mut device, &input, &cfg).unwrap()
        })
    });
    group.bench_function("std-sort-reference", |b| {
        b.iter_batched(
            || input.clone(),
            |mut v| {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                v
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_kv_topk(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let mut rng = StdRng::seed_from_u64(12);
    let pairs: Vec<Pair<f32, u32>> = (0..N).map(|i| Pair::new(rng.gen(), i as u32)).collect();
    let cfg = SampleSelectConfig::default();
    let mut group = c.benchmark_group("kv-topk");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for k in [10usize, 1000] {
        group.bench_function(BenchmarkId::from_parameter(k), |b| {
            b.iter(|| {
                let mut device = Device::new(v100(), pool);
                top_k_largest_on_device(&mut device, &pairs, k, &cfg).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_cpu_extensions(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let input = data(1 << 20);
    let cfg = CpuSelectConfig::default();
    let mut group = c.benchmark_group("cpu-extensions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(input.len() as u64));
    group.bench_function("cpu-top-100", |b| {
        b.iter(|| cpu_top_k(pool, &input, 100, &cfg).unwrap())
    });
    let ranks: Vec<usize> = (1..10).map(|i| i * input.len() / 10).collect();
    group.bench_function("cpu-deciles", |b| {
        b.iter(|| cpu_multi_select(pool, &input, &ranks, &cfg).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_multiselect,
    bench_samplesort,
    bench_kv_topk,
    bench_cpu_extensions
);
criterion_main!(benches);
