//! Criterion groups mirroring the paper's figures at a benchmark-friendly
//! scale (n = 2^18). These measure the *simulated pipeline end to end* —
//! useful as regression benches for the workspace itself; the figure
//! binaries (`fig7`, `fig8`, `fig9`, `fig10`) regenerate the actual
//! paper data series from the simulated clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::arch::{k20xm, v100};
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::{
    approx_select_on_device, quick_select_on_device, sample_select_on_device, AtomicScope,
    SampleSelectConfig,
};
use select_datagen::WorkloadSpec;

const N: usize = 1 << 18;

fn bench_fig7_tuning(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let w = WorkloadSpec::uniform(N, 1).instantiate::<f32>(0);
    let mut group = c.benchmark_group("fig7-tuning");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for buckets in [64usize, 128, 256] {
        let cfg = SampleSelectConfig::default().with_buckets(buckets);
        group.bench_function(BenchmarkId::new("buckets", buckets), |b| {
            b.iter(|| {
                let mut device = Device::new(v100(), pool);
                sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_fig8_variants(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let w = WorkloadSpec::uniform(N, 2).instantiate::<f32>(0);
    let mut group = c.benchmark_group("fig8-variants");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for (name, scope, quick) in [
        ("sample-s", AtomicScope::Shared, false),
        ("sample-g", AtomicScope::Global, false),
        ("quick-s", AtomicScope::Shared, true),
        ("quick-g", AtomicScope::Global, true),
    ] {
        let cfg = SampleSelectConfig::default().with_atomic_scope(scope);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut device = Device::new(v100(), pool);
                if quick {
                    quick_select_on_device(&mut device, &w.data, w.rank, &cfg)
                        .unwrap()
                        .value
                } else {
                    sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                        .unwrap()
                        .value
                }
            })
        });
    }
    group.finish();
}

fn bench_fig8_architectures(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let w = WorkloadSpec::uniform(N, 3).instantiate::<f32>(0);
    let mut group = c.benchmark_group("fig8-architectures");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for arch in [k20xm(), v100()] {
        let cfg = SampleSelectConfig::tuned_for(&arch);
        group.bench_function(arch.name, |b| {
            b.iter(|| {
                let mut device = Device::new(arch.clone(), pool);
                sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_fig10_approx(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let w = WorkloadSpec::uniform(N, 4).instantiate::<f32>(0);
    let mut group = c.benchmark_group("fig10-approx");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for buckets in [128usize, 1024] {
        let cfg = SampleSelectConfig::default().with_buckets(buckets);
        group.bench_function(BenchmarkId::new("approx", buckets), |b| {
            b.iter(|| {
                let mut device = Device::new(v100(), pool);
                approx_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap()
            })
        });
    }
    let cfg = SampleSelectConfig::default();
    group.bench_function("exact-baseline", |b| {
        b.iter(|| {
            let mut device = Device::new(v100(), pool);
            sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig7_tuning,
    bench_fig8_variants,
    bench_fig8_architectures,
    bench_fig10_approx
);
criterion_main!(benches);
