//! Microbenchmarks of the algorithmic building blocks (real wall-clock):
//! the bitonic sorting network, search-tree construction and traversal,
//! prefix sums, and the parallel histogram.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpc_par::ThreadPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sampleselect::bitonic::bitonic_sort;
use sampleselect::searchtree::SearchTree;

fn bench_bitonic(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitonic-sort");
    group.sample_size(20);
    for n in [256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter_batched(
                || data.clone(),
                |mut v| bitonic_sort(&mut v),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_searchtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("searchtree");
    let mut rng = StdRng::seed_from_u64(2);
    for b_count in [64usize, 256, 1024] {
        let mut splitters: Vec<f32> = (0..b_count - 1).map(|_| rng.gen()).collect();
        splitters.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tree = SearchTree::build(&splitters);
        let queries: Vec<f32> = (0..4096).map(|_| rng.gen()).collect();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_function(BenchmarkId::new("lookup", b_count), |bch| {
            bch.iter(|| {
                let mut acc = 0u32;
                for &q in &queries {
                    acc = acc.wrapping_add(tree.lookup(q));
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("build", b_count), |bch| {
            bch.iter(|| SearchTree::build(&splitters))
        });
    }
    group.finish();
}

fn bench_scan_and_histogram(c: &mut Criterion) {
    let pool = ThreadPool::global();
    let n = 1 << 20;
    let mut rng = StdRng::seed_from_u64(3);
    let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100)).collect();

    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("exclusive-scan-sequential", |b| {
        b.iter_batched(
            || values.clone(),
            |mut v| hpc_par::exclusive_scan(&mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("exclusive-scan-parallel", |b| {
        b.iter_batched(
            || values.clone(),
            |mut v| hpc_par::parallel_exclusive_scan(pool, &mut v),
            criterion::BatchSize::LargeInput,
        )
    });
    let buckets: Vec<usize> = (0..n).map(|_| rng.gen_range(0..256)).collect();
    let buckets_ref = &buckets;
    group.bench_function("parallel-histogram-256", |b| {
        b.iter(|| {
            hpc_par::parallel_histogram(pool, n, 256, |range, local| {
                for i in range {
                    local[buckets_ref[i]] += 1;
                }
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bitonic,
    bench_searchtree,
    bench_scan_and_histogram
);
criterion_main!(benches);
