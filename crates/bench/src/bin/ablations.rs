//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Sample size (oversampling)** vs splitter imbalance and
//!    approximate-selection error — the §II-B trade-off ("we can use the
//!    sample size s to control the imbalance between bucket sizes").
//! 2. **Base-case size** — §IV-H(f) claims the impact is negligible;
//!    verify.
//! 3. **Oracle width**: the paper fixes one byte (≤256 buckets); this
//!    workspace's 2-byte-oracle extension enables 512/1024-bucket
//!    *exact* selection — measure whether the deeper bucketing pays for
//!    the doubled oracle traffic.
//! 4. **Equality buckets**: early-termination statistics across
//!    duplicate densities.
//!
//! ```text
//! cargo run --release --bin ablations [--csv] [--reps N]
//! ```

use gpu_sim::arch::v100;
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::{approx_select_on_device, sample_select_on_device, SampleSelectConfig};
use select_bench::{fmt_throughput, measure, HarnessArgs, Stats, Table};
use select_datagen::WorkloadSpec;

const N: usize = 1 << 22;

fn oversampling_ablation(pool: &ThreadPool, reps: usize, csv: bool) {
    let mut t = Table::new(vec![
        "oversampling",
        "sample-size",
        "max/mean bucket",
        "approx-rel-err(%)",
        "throughput(el/s)",
    ]);
    let arch = v100();
    let spec = WorkloadSpec::uniform(N, 0xab11);
    for oversampling in [1usize, 2, 4, 8, 16, 32] {
        let cfg = SampleSelectConfig::tuned_for(&arch).with_oversampling(oversampling);
        let mut imbalances = Vec::new();
        let mut errors = Vec::new();
        let stats = measure(reps, |rep| {
            let w = spec.instantiate::<f32>(rep);
            let cfg = cfg.clone().with_seed(50 + rep);
            let mut device = Device::new(arch.clone(), pool);
            // measure bucket imbalance through one count pass
            let mut rng = sampleselect::rng::SplitMix64::new(cfg.seed);
            let tree = sampleselect::splitter::sample_kernel(
                &mut device,
                &w.data,
                &cfg,
                &mut rng,
                gpu_sim::LaunchOrigin::Host,
            )
            .unwrap();
            let count = sampleselect::count::count_kernel(
                &mut device,
                &w.data,
                &tree,
                &cfg,
                false,
                gpu_sim::LaunchOrigin::Host,
            );
            let mean = N as f64 / cfg.num_buckets as f64;
            let max = *count.counts.iter().max().unwrap() as f64;
            imbalances.push(max / mean);
            device.reset();
            let approx = approx_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
            errors.push(approx.relative_error * 100.0);
            approx.report.throughput()
        });
        let imb = Stats::from_samples(&imbalances);
        let err = Stats::from_samples(&errors);
        t.row(vec![
            oversampling.to_string(),
            (oversampling * 256).to_string(),
            format!("{:.2}", imb.mean),
            format!("{:.4}", err.mean),
            fmt_throughput(stats.mean),
        ]);
    }
    println!("Ablation 1: oversampling factor (SS II-B: sample size controls imbalance)\n");
    print!("{}", if csv { t.render_csv() } else { t.render() });
    println!();
}

fn base_case_ablation(pool: &ThreadPool, reps: usize, csv: bool) {
    let mut t = Table::new(vec!["base-case", "levels", "throughput(el/s)"]);
    let arch = v100();
    let spec = WorkloadSpec::uniform(N, 0xab12);
    for base in [1024usize, 4096, 16384, 65536] {
        let mut levels = 0;
        let stats = measure(reps, |rep| {
            let w = spec.instantiate::<f32>(rep);
            let cfg = SampleSelectConfig::tuned_for(&arch)
                .with_base_case(base)
                .with_seed(60 + rep);
            let mut device = Device::new(arch.clone(), pool);
            let r = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
            levels = r.report.levels;
            r.report.throughput()
        });
        t.row(vec![
            base.to_string(),
            levels.to_string(),
            fmt_throughput(stats.mean),
        ]);
    }
    println!("Ablation 2: base-case size (SS IV-H(f): impact should be negligible)\n");
    print!("{}", if csv { t.render_csv() } else { t.render() });
    println!();
}

fn oracle_width_ablation(pool: &ThreadPool, reps: usize, csv: bool) {
    let mut t = Table::new(vec![
        "buckets",
        "oracle-bytes",
        "levels",
        "throughput(el/s)",
    ]);
    let arch = v100();
    let spec = WorkloadSpec::uniform(N, 0xab13);
    for buckets in [64usize, 256, 512, 1024] {
        let mut levels = 0;
        let stats = measure(reps, |rep| {
            let w = spec.instantiate::<f32>(rep);
            let cfg = SampleSelectConfig::tuned_for(&arch)
                .with_buckets(buckets)
                .with_wide_oracles(buckets > 256)
                .with_seed(70 + rep);
            let mut device = Device::new(arch.clone(), pool);
            let r = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
            levels = r.report.levels;
            r.report.throughput()
        });
        let cfg = SampleSelectConfig::default().with_buckets(buckets);
        t.row(vec![
            buckets.to_string(),
            cfg.oracle_bytes().to_string(),
            levels.to_string(),
            fmt_throughput(stats.mean),
        ]);
    }
    println!("Ablation 3: exact selection beyond the paper's one-byte oracle limit");
    println!("(wide_oracles extension; the paper caps exact selection at 256 buckets)\n");
    print!("{}", if csv { t.render_csv() } else { t.render() });
    println!();
}

fn equality_bucket_ablation(pool: &ThreadPool, reps: usize, csv: bool) {
    let mut t = Table::new(vec![
        "distinct",
        "early-terminated",
        "levels",
        "throughput(el/s)",
    ]);
    let arch = v100();
    for d in [1usize, 16, 1024, N] {
        let spec = WorkloadSpec::with_distinct(N, d, 0xab14);
        let mut early = 0usize;
        let mut levels = 0;
        let stats = measure(reps, |rep| {
            let w = spec.instantiate::<f32>(rep);
            let cfg = SampleSelectConfig::tuned_for(&arch).with_seed(80 + rep);
            let mut device = Device::new(arch.clone(), pool);
            let r = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
            if r.report.terminated_early {
                early += 1;
            }
            levels = levels.max(r.report.levels);
            r.report.throughput()
        });
        t.row(vec![
            d.to_string(),
            format!("{early}/{reps}"),
            levels.to_string(),
            fmt_throughput(stats.mean),
        ]);
    }
    println!("Ablation 4: equality-bucket early termination (SS IV-C) vs duplicate density\n");
    print!("{}", if csv { t.render_csv() } else { t.render() });
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(3);
    let pool = args.thread_pool();
    oversampling_ablation(pool, reps, args.csv);
    base_case_ablation(pool, reps, args.csv);
    oracle_width_ablation(pool, reps, args.csv);
    equality_bucket_ablation(pool, reps, args.csv);
}
