//! Regenerates the paper's **§V-D cross-paper comparison**: Alabi et
//! al.'s BucketSelect evaluated on the Tesla C2070 against SampleSelect
//! on the Tesla K20Xm, for n = 2^27 uniformly distributed single-
//! precision values.
//!
//! The paper reports 40.16 ms (BucketSelect, C2070, mean over their
//! benchmark) vs 25.6 ms (SampleSelect, K20Xm) and attributes much of
//! the gap to the hardware difference (the K20Xm has ~40% more memory
//! bandwidth and 3.5x the FLOPs). This binary reproduces the comparison
//! on the simulated devices, and also runs both algorithms on *both*
//! GPUs so the hardware and algorithm contributions separate.
//!
//! ```text
//! cargo run --release --bin bucketselect_compare [--full] [--reps N]
//! ```

use gpu_sim::arch::{c2070, k20xm, GpuArchitecture};
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::{sample_select_on_device, SampleSelectConfig};
use select_baselines::bucketselect::bucket_select_on_device;
use select_bench::{measure, HarnessArgs, Table};
use select_datagen::WorkloadSpec;

fn run(
    algo: &str,
    arch: &GpuArchitecture,
    pool: &ThreadPool,
    spec: &WorkloadSpec,
    reps: usize,
    t: &mut Table,
) {
    let stats = measure(reps, |rep| {
        let w = spec.instantiate::<f32>(rep);
        let cfg = SampleSelectConfig::tuned_for(arch).with_seed(777 + rep);
        let mut device = Device::new(arch.clone(), pool);
        let report = match algo {
            "bucketselect" => {
                bucket_select_on_device(&mut device, &w.data, w.rank, &cfg)
                    .unwrap()
                    .report
            }
            _ => {
                sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                    .unwrap()
                    .report
            }
        };
        report.total_time.as_ms()
    });
    t.row(vec![
        algo.to_string(),
        arch.name.to_string(),
        format!("{:.2}", stats.mean),
        format!("{:.1}%", stats.cv() * 100.0),
    ]);
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(3);
    // The paper's point uses n = 2^27; scale down unless --full to keep
    // single-host runtime moderate (times are simulated either way, the
    // scaled run reports the 2^27-equivalent by linear extrapolation).
    let n: usize = if args.full { 1 << 27 } else { 1 << 22 };
    let scale = (1usize << 27) as f64 / n as f64;
    let pool = args.thread_pool();
    let spec = WorkloadSpec::uniform(n, 0xbc5c0);

    let mut t = Table::new(vec!["algorithm", "gpu", "runtime(ms)", "cv"]);
    run("bucketselect", &c2070(), pool, &spec, reps, &mut t);
    run("sampleselect", &k20xm(), pool, &spec, reps, &mut t);
    // Cross runs to separate hardware from algorithm:
    run("bucketselect", &k20xm(), pool, &spec, reps, &mut t);
    run("sampleselect", &c2070(), pool, &spec, reps, &mut t);

    println!("SS V-D comparison: BucketSelect (Tesla C2070) vs SampleSelect (Tesla K20Xm)");
    println!("n = {n} uniformly distributed f32, random rank, {reps} repetitions");
    if !args.full {
        println!(
            "(scaled run; multiply by ~{scale:.0} for the n = 2^27 equivalent, or use --full)"
        );
    }
    println!();
    print!("{}", t.render());
    println!();
    println!("Paper reference points (n = 2^27): BucketSelect/C2070 = 40.16 ms,");
    println!("SampleSelect/K20Xm = 25.6 ms. The paper notes the difference is largely");
    println!("hardware: BucketSelect's value-range splitter choice is cheaper per");
    println!("element but assumes friendly distributions — see `robustness` for the");
    println!("adversarial cases where that assumption fails.");
}
