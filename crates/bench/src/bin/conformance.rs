//! Differential kernel-conformance runner: the CI face of the SIMT
//! sanitizer.
//!
//! Executes every kernel family under the vectorized fast path (device
//! sanitizer armed) and the thread-level `BlockExec` reference under
//! deterministic and seed-shuffled warp schedules, checking bit-identical
//! outputs and zero findings; runs the deliberately-racy mutants to prove
//! each detector class fires; and smoke-checks that arming the sanitizer
//! adds zero simulated time to the fig8/fig9 bench paths.
//!
//! ```text
//! cargo run --release --bin conformance [--csv] [--json PATH]
//! ```
//!
//! Exits nonzero on any violation. `--json PATH` (default
//! `target/sanitizer-report.json`) writes every collected
//! `SanitizerReport` as a JSON artifact for CI upload.

use gpu_sim::arch::v100;
use gpu_sim::sanitizer::{reports_to_json, SanitizerConfig, SanitizerKind, SanitizerReport};
use gpu_sim::{Device, LaunchOrigin, WarpSchedule};
use hpc_par::ThreadPool;
use sampleselect::approx::approx_select_on_device;
use sampleselect::bitonic::{bitonic_sort, bitonic_sort_on_block};
use sampleselect::count::count_kernel;
use sampleselect::filter::filter_kernel;
use sampleselect::reduce::reduce_kernel;
use sampleselect::rng::SplitMix64;
use sampleselect::simt_ref::{self, mutants};
use sampleselect::splitter::sample_kernel;
use sampleselect::{bipartition_on_device, sample_select_on_device, SampleSelectConfig};
use select_bench::Table;

fn schedules() -> [(&'static str, WarpSchedule); 3] {
    [
        ("sequential", WarpSchedule::Sequential),
        ("shuffled:5eed", WarpSchedule::Shuffled { seed: 0x5eed }),
        (
            "shuffled:1234517",
            WarpSchedule::Shuffled { seed: 1_234_517 },
        ),
    ]
}

fn gen_u32(n: usize, seed: u64, modulo: u32) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (rng.next_u64() % modulo as u64) as u32)
        .collect()
}

struct Outcome {
    matched: bool,
    report: Option<SanitizerReport>,
}

/// One family × schedule cell: reference output vs the precomputed
/// vectorized output.
fn check<F>(reference: F) -> Outcome
where
    F: FnOnce() -> (bool, Option<SanitizerReport>),
{
    let (matched, report) = reference();
    Outcome { matched, report }
}

fn main() {
    let mut csv = false;
    let mut json_path = "target/sanitizer-report.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => csv = true,
            "--json" => {
                json_path = args.next().expect("--json needs a path");
            }
            other => panic!("unknown flag {other}; known: --csv --json PATH"),
        }
    }

    let pool = ThreadPool::global();
    let cfg = SampleSelectConfig::default().with_buckets(16);
    let full = SanitizerConfig::full();
    let mut failures = 0usize;
    let mut collected: Vec<(String, SanitizerReport)> = Vec::new();
    let mut table = Table::new(vec!["family", "schedule", "status", "findings"]);

    // ---- vectorized outputs, produced once on an armed device ----
    let data = gen_u32(3000, 0xc0f0, 50_000);
    let mut device = Device::new(v100(), pool);
    device.set_sanitizer(full);
    let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
    let tree = sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host)
        .expect("sampling cannot fail on non-degenerate data");
    let count = count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
    let red = reduce_kernel(&mut device, &count, LaunchOrigin::Device);
    let oracles = count.oracles.as_ref().unwrap();
    let oracle: Vec<u32> = (0..data.len()).map(|i| oracles.get(i)).collect();
    let b = tree.num_buckets() as u32;
    let mid_bucket = red.bucket_for_rank(data.len() as u64 / 2) as u32;
    let topk_bucket = red.bucket_for_rank((data.len() - 400) as u64) as u32;
    let filtered = filter_kernel(
        &mut device,
        &data,
        &count,
        &red,
        mid_bucket..mid_bucket + 1,
        &cfg,
        LaunchOrigin::Device,
    );
    let fused = filter_kernel(
        &mut device,
        &data,
        &count,
        &red,
        topk_bucket..b,
        &cfg,
        LaunchOrigin::Device,
    );
    let pivot = 25_000u32;
    let (bipart, smaller, equal) =
        bipartition_on_device(&mut device, &data, pivot, &cfg, LaunchOrigin::Host);
    let mut sorted_small = gen_u32(97, 0xb170, 1 << 20);
    let bitonic_input = sorted_small.clone();
    bitonic_sort(&mut sorted_small);
    let partials_u32: Vec<u32> = count.partials.iter().map(|&p| p as u32).collect();
    if !device.sanitizer_clean() {
        eprintln!(
            "vectorized pipeline reported findings:\n{}",
            device.sanitizer_json()
        );
        failures += 1;
    }
    for (name, report) in device.sanitizer_findings() {
        collected.push((format!("vectorized:{name}"), report.clone()));
    }

    // ---- family × schedule matrix ----
    for (sched_name, schedule) in schedules() {
        let families: Vec<(&str, Outcome)> = vec![
            (
                "sample/bitonic",
                check(|| {
                    let (got, r) = bitonic_sort_on_block(&bitonic_input, schedule, Some(full));
                    (got == sorted_small, r)
                }),
            ),
            (
                "count/oracle",
                check(|| {
                    let (counts, r) =
                        simt_ref::block_histogram(&oracle, b as usize, schedule, Some(full));
                    (counts == count.counts, r)
                }),
            ),
            (
                "reduce/scan",
                check(|| {
                    let (scan, r) =
                        simt_ref::block_exclusive_scan(&partials_u32, schedule, Some(full));
                    let scan64: Vec<u64> = scan.iter().map(|&x| x as u64).collect();
                    (scan64 == red.offsets, r)
                }),
            ),
            (
                "filter",
                check(|| {
                    let (want, r) = simt_ref::block_bucket_concat(
                        &data,
                        &oracle,
                        mid_bucket,
                        mid_bucket + 1,
                        schedule,
                        Some(full),
                    );
                    (want == filtered, r)
                }),
            ),
            (
                "bipartition",
                check(|| {
                    let (want, s, e, r) =
                        simt_ref::block_bipartition(&data, pivot, schedule, Some(full));
                    (want == bipart && (s, e) == (smaller, equal), r)
                }),
            ),
            (
                "fused-topk",
                check(|| {
                    let (want, r) = simt_ref::block_bucket_concat(
                        &data,
                        &oracle,
                        topk_bucket,
                        b,
                        schedule,
                        Some(full),
                    );
                    (want == fused, r)
                }),
            ),
        ];
        for (family, outcome) in families {
            let report = outcome.report.expect("sanitizer was armed");
            let clean = report.is_clean();
            let ok = outcome.matched && clean;
            if !ok {
                failures += 1;
            }
            let status = match (outcome.matched, clean) {
                (true, true) => "ok",
                (false, _) => "MISMATCH",
                (_, false) => "DIRTY",
            };
            table.row(vec![
                family.to_string(),
                sched_name.to_string(),
                status.to_string(),
                report.findings.len().to_string(),
            ]);
            collected.push((format!("{family}@{sched_name}"), report));
        }
    }

    // ---- mutants: each detector class must fire ----
    let mutant_runs: Vec<(&str, SanitizerKind, SanitizerReport)> = vec![
        (
            "mutant:write-write",
            SanitizerKind::WriteWriteRace,
            mutants::write_write_race(WarpSchedule::Sequential, full),
        ),
        (
            "mutant:read-write",
            SanitizerKind::ReadWriteRace,
            mutants::read_write_race(WarpSchedule::Sequential, full),
        ),
        (
            "mutant:barrier-divergence",
            SanitizerKind::BarrierDivergence,
            mutants::barrier_divergence(WarpSchedule::Sequential, full),
        ),
        (
            "mutant:uninit-read",
            SanitizerKind::UninitRead,
            mutants::uninit_read(WarpSchedule::Sequential, full),
        ),
        (
            "mutant:out-of-bounds",
            SanitizerKind::OutOfBounds,
            mutants::oob_access(WarpSchedule::Sequential, Some(full))
                .expect("armed OOB mutant reports, not errors"),
        ),
        (
            "mutant:mixed-atomic",
            SanitizerKind::MixedAtomic,
            mutants::mixed_atomic(WarpSchedule::Sequential, full),
        ),
    ];
    for (name, kind, report) in mutant_runs {
        let fired = report.count_of(kind) > 0;
        if !fired {
            failures += 1;
        }
        table.row(vec![
            name.to_string(),
            "sequential".to_string(),
            if fired { "fired" } else { "SILENT" }.to_string(),
            report.findings.len().to_string(),
        ]);
        collected.push((name.to_string(), report));
    }

    // ---- zero-overhead smoke on the fig8/fig9 bench paths ----
    let bench_data = gen_u32(50_000, 0x0f8f9, 1 << 20);
    let rank = 12_345usize;
    let bench_cfg = SampleSelectConfig::default();
    let overhead_paths: Vec<(&str, f64, f64)> = vec![
        (
            "fig8:sampleselect",
            {
                let mut plain = Device::new(v100(), pool);
                sample_select_on_device(&mut plain, &bench_data, rank, &bench_cfg).unwrap();
                plain.total_time().as_ns()
            },
            {
                let mut armed = Device::new(v100(), pool);
                armed.set_sanitizer(full);
                sample_select_on_device(&mut armed, &bench_data, rank, &bench_cfg).unwrap();
                armed.total_time().as_ns()
            },
        ),
        (
            "fig9:approx-count",
            {
                let mut plain = Device::new(v100(), pool);
                approx_select_on_device(&mut plain, &bench_data, rank, &bench_cfg).unwrap();
                plain.total_time().as_ns()
            },
            {
                let mut armed = Device::new(v100(), pool);
                armed.set_sanitizer(full);
                approx_select_on_device(&mut armed, &bench_data, rank, &bench_cfg).unwrap();
                armed.total_time().as_ns()
            },
        ),
    ];
    for (path, plain_ns, armed_ns) in overhead_paths {
        let zero = plain_ns == armed_ns;
        if !zero {
            failures += 1;
        }
        table.row(vec![
            path.to_string(),
            "overhead".to_string(),
            if zero { "zero" } else { "NONZERO" }.to_string(),
            format!("{:+.1}ns", armed_ns - plain_ns),
        ]);
    }

    if csv {
        print!("{}", table.render_csv());
    } else {
        print!("{}", table.render());
    }

    if let Some(parent) = std::path::Path::new(&json_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&json_path, reports_to_json(&collected))
        .unwrap_or_else(|e| panic!("cannot write {json_path}: {e}"));
    println!("sanitizer reports written to {json_path}");

    if failures > 0 {
        eprintln!("conformance FAILED: {failures} violation(s)");
        std::process::exit(1);
    }
    println!("conformance OK: every family bit-identical, every detector fired");
}
