//! Regenerates **Figure 10**: the error–throughput trade-off of
//! approximate SampleSelect for bucket counts 128/256/512/1024 against
//! the exact SampleSelect baseline (V100, single precision,
//! n = 2^28 in the paper; 2^22 by default here, `--full` for 2^28).
//!
//! ```text
//! cargo run --release --bin fig10 [--full] [--csv] [--reps N]
//! ```

use gpu_sim::arch::v100;
use gpu_sim::Device;
use sampleselect::{approx_select_on_device, sample_select_on_device, SampleSelectConfig};
use select_bench::{fmt_throughput, HarnessArgs, Stats, Table};
use select_datagen::WorkloadSpec;

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(10);
    let n = if args.full { 1 << 28 } else { 1 << 22 };
    let pool = args.thread_pool();
    let arch = v100();
    let spec = WorkloadSpec::uniform(n, 0xf1610);

    let mut t = Table::new(vec![
        "variant",
        "buckets",
        "throughput(el/s)",
        "rel-error-mean(%)",
        "rel-error-max(%)",
    ]);

    // Exact baseline.
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let exact_samples: Vec<(f64, f64)> = (0..reps as u64)
        .map(|rep| {
            let w = spec.instantiate::<f32>(rep);
            let mut device = Device::new(arch.clone(), pool);
            let r = sample_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
            (r.report.throughput(), 0.0)
        })
        .collect();
    let exact_tp = Stats::from_samples(&exact_samples.iter().map(|s| s.0).collect::<Vec<_>>());
    t.row(vec![
        "exact".to_string(),
        cfg.num_buckets.to_string(),
        fmt_throughput(exact_tp.mean),
        "0.0000".to_string(),
        "0.0000".to_string(),
    ]);

    // Approximate variants for increasing bucket counts.
    for buckets in [128usize, 256, 512, 1024] {
        let cfg = SampleSelectConfig::tuned_for(&arch).with_buckets(buckets);
        let mut tps = Vec::new();
        let mut errs = Vec::new();
        for rep in 0..reps as u64 {
            let w = spec.instantiate::<f32>(rep);
            let mut device = Device::new(arch.clone(), pool);
            let cfg = cfg.clone().with_seed(3000 + rep);
            let r = approx_select_on_device(&mut device, &w.data, w.rank, &cfg).unwrap();
            tps.push(r.report.throughput());
            errs.push(r.relative_error * 100.0);
        }
        let tp = Stats::from_samples(&tps);
        let err = Stats::from_samples(&errs);
        t.row(vec![
            "approximate".to_string(),
            buckets.to_string(),
            fmt_throughput(tp.mean),
            format!("{:.4}", err.mean),
            format!("{:.4}", err.max),
        ]);
    }

    if args.csv {
        print!("{}", t.render_csv());
    } else {
        println!("Figure 10: error-throughput trade-off of approximate selection");
        println!("(Tesla V100, n = {n}, single precision, {reps} repetitions)\n");
        print!("{}", t.render());
        println!();
        println!("Expected shapes (paper SS V-G): the approximate variant runs ~3x faster");
        println!("than exact selection at low bucket counts with up to ~1% rank error;");
        println!("at 1024 buckets ~50% of the runtime is saved at ~0.1% average error,");
        println!("and throughput barely depends on the bucket count, so the maximal");
        println!("bucket count fitting shared memory is always advisable.");
    }
}
