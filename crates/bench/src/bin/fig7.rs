//! Regenerates **Figure 7**: parameter-tuning benchmarks (single
//! precision) — the effect of the number of buckets, threads per block,
//! and loop-unrolling depth on SampleSelect throughput, using global
//! atomics on the K20Xm and shared atomics on the V100 ("the fastest
//! configurations on the respective platform").
//!
//! ```text
//! cargo run --release --bin fig7 [--full] [--csv] [--reps N]
//! ```

use gpu_sim::arch::{k20xm, v100, GpuArchitecture};
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::{sample_select_on_device, SampleSelectConfig};
use select_bench::{fmt_throughput, measure, HarnessArgs, Table};
use select_datagen::{paper_sizes, WorkloadSpec};

/// One tuning panel: vary a single parameter, sweep n.
fn panel(
    arch: &GpuArchitecture,
    pool: &ThreadPool,
    sizes: &[usize],
    reps: usize,
    panel_name: &str,
    configs: &[(String, SampleSelectConfig)],
    table: &mut Table,
) {
    for &n in sizes {
        let spec = WorkloadSpec::uniform(n, 0x7160001);
        for (label, cfg) in configs {
            let stats = measure(reps, |rep| {
                let w = spec.instantiate::<f32>(rep);
                let cfg = cfg.clone().with_seed(100 + rep);
                let mut device = Device::new(arch.clone(), pool);
                sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                    .unwrap()
                    .report
                    .throughput()
            });
            table.row(vec![
                arch.name.to_string(),
                panel_name.to_string(),
                label.clone(),
                n.to_string(),
                fmt_throughput(stats.mean),
                format!("{:.1}%", stats.cv() * 100.0),
            ]);
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(if args.full { 10 } else { 3 });
    let sizes = paper_sizes(args.full);
    let pool = args.thread_pool();

    let mut t = Table::new(vec![
        "gpu",
        "panel",
        "config",
        "n",
        "throughput(el/s)",
        "cv",
    ]);

    for arch in [k20xm(), v100()] {
        // The paper shows the fastest atomic scope per platform.
        let base = SampleSelectConfig::tuned_for(&arch);

        // Panel 1: number of buckets (2^6, 2^7, 2^8; the paper's oracle
        // byte caps exact selection at 256).
        let buckets: Vec<(String, SampleSelectConfig)> = [64usize, 128, 256]
            .iter()
            .map(|&b| {
                (
                    format!("buckets=2^{}", b.trailing_zeros()),
                    base.clone().with_buckets(b),
                )
            })
            .collect();
        panel(&arch, pool, &sizes, reps, "num-buckets", &buckets, &mut t);

        // Panel 2: threads per block (256, 512, 1024).
        let threads: Vec<(String, SampleSelectConfig)> = [256u32, 512, 1024]
            .iter()
            .map(|&th| (format!("threads={th}"), base.clone().with_threads(th)))
            .collect();
        panel(
            &arch,
            pool,
            &sizes,
            reps,
            "threads-per-block",
            &threads,
            &mut t,
        );

        // Panel 3: loop unrolling depth (2, 4, 8 items per thread).
        let unroll: Vec<(String, SampleSelectConfig)> = [2u32, 4, 8]
            .iter()
            .map(|&u| (format!("unroll={u}"), base.clone().with_items_per_thread(u)))
            .collect();
        panel(&arch, pool, &sizes, reps, "unroll-depth", &unroll, &mut t);
    }

    if args.csv {
        print!("{}", t.render_csv());
    } else {
        println!("Figure 7: parameter tuning benchmarks (single precision).");
        println!("K20Xm uses global atomics (+warp aggregation), V100 shared atomics,");
        println!("matching the paper's fastest per-platform configurations.\n");
        print!("{}", t.render());
    }
}
