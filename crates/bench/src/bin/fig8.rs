//! Regenerates **Figure 8**: throughput of the four algorithm variants
//! (sample-s, sample-g, quick-s, quick-g) over input size, for single
//! and double precision, on the K20Xm and V100 — plus the right-hand
//! panels: the element-repetition impact on the count kernel for the
//! four communication strategies (shared/global × warp aggregation).
//!
//! ```text
//! cargo run --release --bin fig8 [--full] [--csv] [--reps N]
//! ```

use gpu_sim::arch::{k20xm, v100, GpuArchitecture};
use gpu_sim::{Device, LaunchOrigin};
use hpc_par::ThreadPool;
use sampleselect::count::count_kernel;
use sampleselect::rng::SplitMix64;
use sampleselect::splitter::sample_kernel;
use sampleselect::{
    quick_select_on_device, sample_select_on_device, AtomicScope, SampleSelectConfig, SelectElement,
};
use select_bench::{fmt_throughput, measure, HarnessArgs, Table};
use select_datagen::{paper_distinct_counts, paper_sizes, WorkloadSpec};

fn variants() -> Vec<(&'static str, AtomicScope, bool)> {
    vec![
        ("sample-s", AtomicScope::Shared, false),
        ("sample-g", AtomicScope::Global, false),
        ("quick-s", AtomicScope::Shared, true),
        ("quick-g", AtomicScope::Global, true),
    ]
}

fn throughput_panel<T: SelectElement>(
    arch: &GpuArchitecture,
    pool: &ThreadPool,
    sizes: &[usize],
    reps: usize,
    table: &mut Table,
) {
    for &n in sizes {
        let spec = WorkloadSpec::uniform(n, 0xf188a5e);
        for (name, scope, is_quick) in variants() {
            let stats = measure(reps, |rep| {
                let w = spec.instantiate::<T>(rep);
                // The left/middle panels isolate the atomic scope; warp
                // aggregation is studied separately in the right panel.
                let cfg = SampleSelectConfig::default()
                    .with_atomic_scope(scope)
                    .with_warp_aggregation(false)
                    .with_seed(500 + rep);
                let mut device = Device::new(arch.clone(), pool);
                let report = if is_quick {
                    quick_select_on_device(&mut device, &w.data, w.rank, &cfg)
                        .unwrap()
                        .report
                } else {
                    sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                        .unwrap()
                        .report
                };
                report.throughput()
            });
            table.row(vec![
                arch.name.to_string(),
                T::NAME.to_string(),
                n.to_string(),
                name.to_string(),
                fmt_throughput(stats.mean),
                format!("{:.1}%", stats.cv() * 100.0),
            ]);
        }
    }
}

/// Right-hand panels: count-kernel throughput vs. number of distinct
/// elements for the four communication strategies.
fn repetition_panel(
    arch: &GpuArchitecture,
    pool: &ThreadPool,
    n: usize,
    reps: usize,
    table: &mut Table,
) {
    let strategies = [
        ("shared w.o. warp-aggr.", AtomicScope::Shared, false),
        ("shared w. warp-aggr.", AtomicScope::Shared, true),
        ("global w.o. warp-aggr.", AtomicScope::Global, false),
        ("global w. warp-aggr.", AtomicScope::Global, true),
    ];
    for d in paper_distinct_counts(n) {
        let spec = WorkloadSpec::with_distinct(n, d, 0xd15713c7);
        for (name, scope, aggr) in strategies {
            let stats = measure(reps, |rep| {
                let w = spec.instantiate::<f32>(rep);
                let cfg = SampleSelectConfig::default()
                    .with_atomic_scope(scope)
                    .with_warp_aggregation(aggr)
                    .with_seed(900 + rep);
                let mut device = Device::new(arch.clone(), pool);
                let mut rng = SplitMix64::new(cfg.seed);
                let tree = sample_kernel(&mut device, &w.data, &cfg, &mut rng, LaunchOrigin::Host)
                    .unwrap();
                let before = device.now();
                count_kernel(&mut device, &w.data, &tree, &cfg, true, LaunchOrigin::Host);
                let count_time = device.now() - before;
                n as f64 / count_time.as_secs()
            });
            table.row(vec![
                arch.name.to_string(),
                "f32".to_string(),
                format!("d={d}"),
                name.to_string(),
                fmt_throughput(stats.mean),
                format!("{:.1}%", stats.cv() * 100.0),
            ]);
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(if args.full { 10 } else { 3 });
    let sizes = paper_sizes(args.full);
    let rep_n = if args.full { 1 << 28 } else { 1 << 22 };
    let pool = args.thread_pool();

    let mut t = Table::new(vec![
        "gpu",
        "type",
        "n",
        "variant",
        "throughput(el/s)",
        "cv",
    ]);
    for arch in [k20xm(), v100()] {
        throughput_panel::<f32>(&arch, pool, &sizes, reps, &mut t);
        throughput_panel::<f64>(&arch, pool, &sizes, reps, &mut t);
    }

    let mut r = Table::new(vec![
        "gpu",
        "type",
        "distinct",
        "strategy",
        "count-throughput(el/s)",
        "cv",
    ]);
    for arch in [k20xm(), v100()] {
        repetition_panel(&arch, pool, rep_n, reps, &mut r);
    }

    if args.csv {
        print!("{}", t.render_csv());
        println!();
        print!("{}", r.render_csv());
    } else {
        println!("Figure 8 (left/middle): selection throughput vs input size");
        println!("(10 uniform datasets per point in the paper; --reps to change)\n");
        print!("{}", t.render());
        println!(
            "\nFigure 8 (right): element repetition impact on the count kernel (n = {rep_n})\n"
        );
        print!("{}", r.render());
    }
}
