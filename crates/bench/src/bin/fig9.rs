//! Regenerates **Figure 9**: per-kernel runtime breakdown (ns per
//! element) of one SampleSelect recursion level and the QuickSelect
//! kernels, using shared-memory atomics on the V100 (n = 2^24, single
//! precision).
//!
//! Three bars as in the paper:
//! * `count w.o. write` — sample + count (no oracle store) + reduce
//!   (the approximate-selection pipeline);
//! * `count w. write`   — sample + count (with oracles) + reduce +
//!   filter (one exact recursion level);
//! * `bipartition`      — QuickSelect's pivot + count + bipartition.
//!
//! ```text
//! cargo run --release --bin fig9 [--csv] [--reps N]
//! ```

use gpu_sim::arch::v100;
use gpu_sim::{Device, LaunchOrigin};
use sampleselect::count::count_kernel;
use sampleselect::quickselect::quick_select_on_device;
use sampleselect::reduce::reduce_totals_kernel;
use sampleselect::rng::SplitMix64;
use sampleselect::splitter::sample_kernel;
use sampleselect::{sample_select_on_device, SampleSelectConfig};
use select_bench::{measure, HarnessArgs, Table};
use select_datagen::WorkloadSpec;

const N: usize = 1 << 24;

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(3);
    let pool = args.thread_pool();
    let arch = v100();
    let cfg = SampleSelectConfig::tuned_for(&arch);
    let spec = WorkloadSpec::uniform(N, 0xf199);

    let mut t = Table::new(vec!["bar", "kernel", "ns-per-element"]);

    // Bar 1: count without oracle writes (approximate pipeline).
    let phases = ["sample", "count_nowrite", "reduce"];
    for phase in phases {
        let stats = measure(reps, |rep| {
            let w = spec.instantiate::<f32>(rep);
            let mut device = Device::new(arch.clone(), pool);
            let mut rng = SplitMix64::new(cfg.seed + rep);
            let tree =
                sample_kernel(&mut device, &w.data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
            let count = count_kernel(&mut device, &w.data, &tree, &cfg, false, LaunchOrigin::Host);
            reduce_totals_kernel(&mut device, &count, LaunchOrigin::Device);
            let phase_time: f64 = device
                .records()
                .iter()
                .filter(|r| r.name == phase)
                .map(|r| r.duration.as_ns())
                .sum();
            phase_time / N as f64
        });
        t.row(vec![
            "count w.o. write".to_string(),
            phase.to_string(),
            format!("{:.4}", stats.mean),
        ]);
    }

    // Bar 2: one full exact recursion level (count with oracle writes).
    for phase in ["sample", "count", "reduce", "filter"] {
        let stats = measure(reps, |rep| {
            let w = spec.instantiate::<f32>(rep);
            let mut device = Device::new(arch.clone(), pool);
            let report = sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                .unwrap()
                .report;
            report.kernel_ns_per_element(phase)
        });
        t.row(vec![
            "count w. write".to_string(),
            phase.to_string(),
            format!("{:.4}", stats.mean),
        ]);
    }

    // Bar 3: QuickSelect's kernels.
    for phase in ["pivot", "quick_count", "bipartition"] {
        let stats = measure(reps, |rep| {
            let w = spec.instantiate::<f32>(rep);
            let mut device = Device::new(arch.clone(), pool);
            let report = quick_select_on_device(&mut device, &w.data, w.rank, &cfg)
                .unwrap()
                .report;
            // The paper shows a single recursion level; normalize the
            // aggregated time by the total elements QuickSelect touched
            // (~2n across its geometric level sizes).
            report.kernel_time(phase).as_ns() / (2 * N) as f64
        });
        t.row(vec![
            "bipartition".to_string(),
            phase.to_string(),
            format!("{:.4}", stats.mean),
        ]);
    }

    if args.csv {
        print!("{}", t.render_csv());
    } else {
        println!("Figure 9: runtime breakdown of the elementary kernels");
        println!("(shared-memory atomics, Tesla V100, n = 2^24, single precision)\n");
        print!("{}", t.render());
        println!();
        println!("Expected shapes (paper, SS V-F): oracle recording is nearly free in the");
        println!("count kernel; the reduce after a recording count is costlier (partial");
        println!("sums); QuickSelect's count is much faster per element but its filter");
        println!("(bipartition) much slower, and it launches far more kernels overall.");
    }
}
