//! `perfsmoke` — the zero-allocation hot-path regression bench.
//!
//! Runs the paper's fig8 (throughput) and fig9 (per-kernel breakdown)
//! shapes plus an out-of-core streaming shape, each in two legs:
//!
//! * **fresh** — the pre-pooling behavior: a new device and fresh
//!   allocations for every query (one `Device` + driver call per rep);
//! * **pooled** — the hot path: one persistent device with the buffer
//!   pool armed and a [`SelectWorkspace`] reused across reps.
//!
//! For every shape it records wall time, simulated time, heap
//! allocation counts (via a counting global allocator), and bytes
//! moved, then writes `BENCH_hotpath.json` for CI to diff against
//! `bench/baselines/hotpath.json` (see `scripts/check_perf.py`). The
//! streaming shape additionally compares `stream_prefetch` on vs off
//! against a chunk source with realistic load latency.
//!
//! ```text
//! cargo run --release --bin perfsmoke [-- --reps N --threads N --full]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use gpu_sim::arch::v100;
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::recursion::sample_select_with_workspace;
use sampleselect::rng::SplitMix64;
use sampleselect::streaming::{streaming_select, ChunkError, ChunkSource};
use sampleselect::{
    sample_select_on_device, ObsSession, SampleSelectConfig, SelectReport, SelectWorkspace,
};
use select_bench::HarnessArgs;
use select_datagen::WorkloadSpec;

// ---------------------------------------------------------------------
// Allocation accounting
// ---------------------------------------------------------------------

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f`, returning its result plus (wall seconds, heap allocations).
fn clocked<R>(f: impl FnOnce() -> R) -> (R, f64, u64) {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let start = Instant::now();
    let out = f();
    let wall = start.elapsed().as_secs_f64();
    ARMED.store(false, Ordering::SeqCst);
    (out, wall, ALLOCS.load(Ordering::SeqCst))
}

// ---------------------------------------------------------------------
// Measurement legs
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct Leg {
    /// Best-of-reps wall seconds for one query (minimum across reps:
    /// the least-noise estimator on a shared machine).
    wall_s: f64,
    /// Mean wall seconds per query.
    wall_mean_s: f64,
    sim_ns: f64,
    allocs: u64,
    bytes_moved: u64,
}

impl Leg {
    fn absorb(&mut self, wall: f64, allocs: u64) {
        self.wall_s = if self.wall_s == 0.0 {
            wall
        } else {
            self.wall_s.min(wall)
        };
        self.wall_mean_s += wall;
        self.allocs += allocs;
    }
}

fn bytes_moved(report: &SelectReport) -> u64 {
    report
        .kernels
        .iter()
        .map(|k| k.cost.global_read_bytes + k.cost.global_write_bytes)
        .sum()
}

/// One fig8/fig9-style selection shape, measured in both legs.
///
/// The legs are interleaved per rep (fresh query, then the same query
/// on the pooled device) so slow drift on a shared machine hits both
/// sides equally, and each leg reports its best-of-reps per-query wall
/// time — the noise-robust estimator.
fn select_shape(name: &str, n: usize, pool: &ThreadPool, reps: usize) -> (String, Leg, Leg) {
    let spec = WorkloadSpec::uniform(n, 0xf188a5e);
    let workloads: Vec<_> = (0..reps as u64)
        .map(|rep| spec.instantiate::<f32>(rep))
        .collect();
    let cfg_for = |rep: u64| SampleSelectConfig::default().with_seed(500 + rep);

    // Persistent pooled device + reusable workspace; one unmeasured
    // query warms the pool and the workspace.
    let mut pooled_dev = Device::new(v100(), pool);
    pooled_dev.enable_buffer_pool();
    let mut ws: SelectWorkspace<f32> = SelectWorkspace::new();
    let _ = sample_select_with_workspace(
        &mut pooled_dev,
        &workloads[0].data,
        workloads[0].rank,
        &cfg_for(0),
        &mut ws,
    )
    .expect("warm-up select");
    pooled_dev.reset();

    let mut fresh = Leg::default();
    let mut pooled = Leg::default();
    for (rep, w) in workloads.iter().enumerate() {
        let cfg = cfg_for(rep as u64);

        // Fresh leg: pre-pooling behavior, a new device + fresh
        // allocations for every query.
        let (rf, wall_f, allocs_f) = clocked(|| {
            let mut device = Device::new(v100(), pool);
            sample_select_on_device(&mut device, &w.data, w.rank, &cfg).expect("fresh select")
        });
        fresh.absorb(wall_f, allocs_f);
        fresh.sim_ns += rf.report.total_time.as_ns();
        fresh.bytes_moved += bytes_moved(&rf.report);

        // Pooled leg: the steady-state hot path.
        let (rp, wall_p, allocs_p) = clocked(|| {
            sample_select_with_workspace(&mut pooled_dev, &w.data, w.rank, &cfg, &mut ws)
                .expect("pooled select")
        });
        pooled_dev.reset();
        pooled.absorb(wall_p, allocs_p);
        pooled.sim_ns += rp.report.total_time.as_ns();
        pooled.bytes_moved += bytes_moved(&rp.report);

        assert_eq!(rf.value, rp.value, "pooled leg must be bit-identical");
        assert_eq!(
            rf.report.total_time, rp.report.total_time,
            "pooled leg must not change the simulated timeline"
        );
    }
    fresh.wall_mean_s /= reps as f64;
    pooled.wall_mean_s /= reps as f64;
    (name.to_string(), fresh, pooled)
}

// ---------------------------------------------------------------------
// Streaming shape: prefetch off vs on
// ---------------------------------------------------------------------

/// A chunk source with realistic load latency: chunk contents are
/// generated deterministically and each load stalls like an I/O read
/// would. With `stream_prefetch` the driver hides this latency behind
/// the count/filter compute of the previous chunk.
struct LatentChunks {
    n: usize,
    chunk_len: usize,
    seed: u64,
    latency: std::time::Duration,
}

impl ChunkSource<f32> for LatentChunks {
    fn num_chunks(&self) -> usize {
        self.n.div_ceil(self.chunk_len).max(1)
    }
    fn load_chunk(&self, idx: usize) -> Result<Vec<f32>, ChunkError> {
        std::thread::sleep(self.latency);
        let start = (idx * self.chunk_len).min(self.n);
        let end = ((idx + 1) * self.chunk_len).min(self.n);
        let mut rng = SplitMix64::new(self.seed.wrapping_add(start as u64));
        Ok((start..end).map(|_| rng.next_f64() as f32).collect())
    }
    fn total_len(&self) -> usize {
        self.n
    }
    fn source_name(&self) -> &str {
        "latent-chunks"
    }
}

fn streaming_shape(n: usize, pool: &ThreadPool, reps: usize) -> (Leg, Leg) {
    let source = LatentChunks {
        n,
        chunk_len: n / 16,
        seed: 0x57e3a,
        latency: std::time::Duration::from_millis(2),
    };
    let rank = n / 2;
    let cfg_off = SampleSelectConfig::default()
        .with_seed(7)
        .with_stream_prefetch(false);
    let cfg_on = SampleSelectConfig::default()
        .with_seed(7)
        .with_stream_prefetch(true);
    let mut dev_off = Device::new(v100(), pool);
    let mut dev_on = Device::new(v100(), pool);
    let mut off = Leg::default();
    let mut on = Leg::default();
    for _ in 0..reps {
        dev_off.reset();
        let (r_off, wall, allocs) = clocked(|| {
            streaming_select(&mut dev_off, &source, rank, &cfg_off).expect("streaming select")
        });
        off.absorb(wall, allocs);
        off.sim_ns += r_off.report.total_time.as_ns();
        off.bytes_moved += bytes_moved(&r_off.report);

        dev_on.reset();
        let (r_on, wall, allocs) = clocked(|| {
            streaming_select(&mut dev_on, &source, rank, &cfg_on).expect("streaming select")
        });
        on.absorb(wall, allocs);
        on.sim_ns += r_on.report.total_time.as_ns();
        on.bytes_moved += bytes_moved(&r_on.report);

        assert_eq!(r_off.value, r_on.value, "prefetch must be bit-identical");
    }
    off.wall_mean_s /= reps as f64;
    on.wall_mean_s /= reps as f64;
    (off, on)
}

// ---------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------

fn leg_json(leg: &Leg) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"wall_mean_s\": {:.6}, \"sim_ns\": {:.1}, \"allocs\": {}, \"bytes_moved\": {}}}",
        leg.wall_s, leg.wall_mean_s, leg.sim_ns, leg.allocs, leg.bytes_moved
    )
}

fn main() {
    let args = HarnessArgs::parse();
    let pool = args.thread_pool();
    let reps = args.reps_or(5);
    let fig8_n: usize = if args.full { 1 << 24 } else { 1 << 22 };
    let fig9_n: usize = 1 << 21;
    let stream_n: usize = 1 << 20;

    eprintln!("perfsmoke: fig8 shape (n=2^{})...", fig8_n.trailing_zeros());
    let (_, fig8_fresh, fig8_pooled) = select_shape("fig8", fig8_n, pool, reps);
    eprintln!("perfsmoke: fig9 shape (n=2^{})...", fig9_n.trailing_zeros());
    let (_, fig9_fresh, fig9_pooled) = select_shape("fig9", fig9_n, pool, reps);
    eprintln!(
        "perfsmoke: streaming shape (n=2^{})...",
        stream_n.trailing_zeros()
    );
    let (stream_off, stream_on) = streaming_shape(stream_n, pool, reps);

    // One extra pooled query under an ObsSession, outside every clocked
    // and allocation-counted leg, so the bench artifact carries a
    // metrics snapshot without perturbing the regression numbers.
    eprintln!("perfsmoke: metrics snapshot query...");
    let metrics_json = {
        let spec = WorkloadSpec::uniform(fig9_n, 0xf188a5e);
        let w = spec.instantiate::<f32>(0);
        let mut device = Device::new(v100(), pool);
        device.enable_buffer_pool();
        let session = ObsSession::start();
        let _ = sample_select_on_device(
            &mut device,
            &w.data,
            w.rank,
            &SampleSelectConfig::default().with_seed(500),
        )
        .expect("metrics query");
        let report = session.finish();
        // Indent the snapshot so it nests cleanly in the artifact.
        report.snapshot.to_json().trim_end().replace('\n', "\n  ")
    };

    let speedup8 = fig8_fresh.wall_mean_s / fig8_pooled.wall_mean_s;
    let speedup9 = fig9_fresh.wall_mean_s / fig9_pooled.wall_mean_s;
    let stream_speedup = stream_off.wall_mean_s / stream_on.wall_mean_s;
    let alloc_ratio8 = fig8_fresh.allocs as f64 / fig8_pooled.allocs.max(1) as f64;

    let json = format!(
        "{{\n  \"schema\": \"perfsmoke-v1\",\n  \"reps\": {reps},\n  \"threads\": {},\n  \
         \"fig8\": {{\"n\": {fig8_n}, \"fresh\": {}, \"pooled\": {}, \"wall_speedup\": {speedup8:.3}, \"alloc_ratio\": {alloc_ratio8:.1}}},\n  \
         \"fig9\": {{\"n\": {fig9_n}, \"fresh\": {}, \"pooled\": {}, \"wall_speedup\": {speedup9:.3}}},\n  \
         \"streaming\": {{\"n\": {stream_n}, \"prefetch_off\": {}, \"prefetch_on\": {}, \"wall_speedup\": {stream_speedup:.3}}},\n  \
         \"metrics\": {metrics_json}\n}}\n",
        pool.num_threads(),
        leg_json(&fig8_fresh),
        leg_json(&fig8_pooled),
        leg_json(&fig9_fresh),
        leg_json(&fig9_pooled),
        leg_json(&stream_off),
        leg_json(&stream_on),
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("{json}");
    eprintln!(
        "fig8 wall speedup {speedup8:.2}x, fig9 {speedup9:.2}x, streaming prefetch {stream_speedup:.2}x, \
         fig8 alloc reduction {alloc_ratio8:.0}x"
    );
}
