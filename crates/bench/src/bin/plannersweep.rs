//! `plannersweep` — the planner-vs-fixed-backend regret sweep.
//!
//! Runs the planner conformance grid ({uniform, duplicate-heavy,
//! sorted, reverse-sorted, low-entropy-key, large-k} x {u32, u64, f32})
//! and, per cell, measures the simulated time of each fixed backend
//! (SampleSelect, QuickSelect, RadixSelect) plus the `--algo auto`
//! planner run on fresh devices. Every cell also cross-checks that the
//! auto answer is bit-identical to every fixed backend's.
//!
//! Writes `BENCH_planner.json` (schema `plannersweep-v1`) for
//! `scripts/check_perf.py --planner`, which fails CI when the planner's
//! pick regresses more than 15% against the best fixed backend in any
//! cell.
//!
//! ```text
//! cargo run --release --bin plannersweep [-- --full --threads N --csv]
//! ```

use gpu_sim::arch::v100;
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::element::SelectElement;
use sampleselect::planner::{run_planned, PlannedBackend};
use sampleselect::rng::SplitMix64;
use sampleselect::{auto_select_on_device, SampleSelectConfig, SelectWorkspace};
use select_bench::{HarnessArgs, Table};

const DISTS: [&str; 6] = [
    "uniform",
    "duplicate-heavy",
    "sorted",
    "reverse-sorted",
    "low-entropy-key",
    "large-k",
];

struct Cell {
    dist: &'static str,
    ty: &'static str,
    chosen: &'static str,
    auto_us: f64,
    fixed_us: Vec<(&'static str, f64)>,
}

fn gen_data<T: SelectElement>(dist: &str, n: usize, seed: u64) -> (Vec<T>, usize) {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<T> = (0..n)
        .map(|i| {
            let v = match dist {
                "uniform" | "large-k" => rng.next_f64() * 1e9,
                "duplicate-heavy" => (rng.next_u64() % 16) as f64,
                "sorted" => i as f64,
                "reverse-sorted" => (n - i) as f64,
                "low-entropy-key" => (rng.next_u64() % 251) as f64,
                other => panic!("unknown distribution {other}"),
            };
            T::from_f64(v)
        })
        .collect();
    let rank = if dist == "large-k" { n - n / 3 } else { n / 2 };
    (data, rank)
}

fn run_cell<T: SelectElement>(
    dist: &'static str,
    ty: &'static str,
    n: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Cell {
    let (data, rank) = gen_data::<T>(dist, n, seed);
    let cfg = SampleSelectConfig::default();
    let arch = v100();

    let mut fixed_us = Vec::new();
    let mut bits: Option<u64> = None;
    for backend in PlannedBackend::RANK_CANDIDATES {
        let mut device = Device::new(arch.clone(), pool);
        let mut ws = SelectWorkspace::new();
        let res = run_planned(&mut device, &data, rank, &cfg, &mut ws, backend)
            .unwrap_or_else(|e| panic!("{dist}/{ty}: fixed {} errored: {e}", backend.name()));
        let b = res.value.to_bits_u64();
        assert_eq!(*bits.get_or_insert(b), b, "{dist}/{ty}: backends disagree");
        fixed_us.push((backend.name(), res.report.total_time.as_us()));
    }

    let mut device = Device::new(arch.clone(), pool);
    let (decision, auto) = auto_select_on_device(&mut device, &data, rank, &cfg)
        .unwrap_or_else(|e| panic!("{dist}/{ty}: auto errored: {e}"));
    assert_eq!(
        auto.value.to_bits_u64(),
        bits.unwrap(),
        "{dist}/{ty}: auto answer diverged from the fixed backends"
    );

    Cell {
        dist,
        ty,
        chosen: decision.backend.name(),
        auto_us: auto.report.total_time.as_us(),
        fixed_us,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let pool = ThreadPool::new(args.threads.unwrap_or(4));
    let n: usize = if args.full { 1 << 20 } else { 1 << 17 };
    let seed = 0x9a71;

    let mut cells = Vec::new();
    for dist in DISTS {
        cells.push(run_cell::<u32>(dist, "u32", n, seed, &pool));
        cells.push(run_cell::<u64>(dist, "u64", n, seed, &pool));
        cells.push(run_cell::<f32>(dist, "f32", n, seed, &pool));
    }

    let mut t = Table::new(vec![
        "dist",
        "type",
        "chosen",
        "auto_us",
        "sample_us",
        "quick_us",
        "radix_us",
        "regret",
    ]);
    let mut rows_json = Vec::new();
    for c in &cells {
        let best = c
            .fixed_us
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let regret = c.auto_us / best;
        let fixed: Vec<String> = c
            .fixed_us
            .iter()
            .map(|&(name, t)| format!("\"{name}_us\": {t:.3}"))
            .collect();
        rows_json.push(format!(
            "{{\"dist\": \"{}\", \"type\": \"{}\", \"chosen\": \"{}\", \
             \"auto_us\": {:.3}, {}, \"best_us\": {best:.3}}}",
            c.dist,
            c.ty,
            c.chosen,
            c.auto_us,
            fixed.join(", ")
        ));
        t.row(vec![
            c.dist.to_string(),
            c.ty.to_string(),
            c.chosen.to_string(),
            format!("{:.1}", c.auto_us),
            format!("{:.1}", c.fixed_us[0].1),
            format!("{:.1}", c.fixed_us[1].1),
            format!("{:.1}", c.fixed_us[2].1),
            format!("{regret:.2}x"),
        ]);
    }

    let json = format!(
        "{{\n  \"schema\": \"plannersweep-v1\",\n  \"n\": {n},\n  \"seed\": {seed},\n  \
         \"cells\": [\n    {}\n  ]\n}}\n",
        rows_json.join(",\n    ")
    );
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");

    println!(
        "Planner regret sweep (Tesla V100, n = 2^{}, rank = n/2 except large-k)\n",
        n.trailing_zeros()
    );
    print!("{}", t.render());
    println!();
    println!("regret = auto sim-time / best fixed backend sim-time per cell.");
    println!("BENCH_planner.json written; gate with scripts/check_perf.py --planner.");
}
