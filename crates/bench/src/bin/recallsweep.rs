//! `recallsweep` — the approximate top-k recall/speed sweep.
//!
//! Runs the approximate top-k workload over a {distribution} x
//! {k fraction} x {recall target} grid. Per cell it asks the planner
//! for a bucket/oversample configuration hitting the target recall
//! (`plan_for_recall`), runs the approximate kernel, measures the
//! recall actually achieved against the exact top-k set, and times the
//! exact fused top-k on a fresh device for comparison.
//!
//! Writes `BENCH_approx_topk.json` (schema `recallsweep-v1`) for
//! `scripts/check_perf.py --approx-topk`, which fails CI when a cell
//! misses its recall target or when the approximation stops beating
//! the exact kernel at large k. The sweep is fully seeded and the
//! simulator is deterministic, so both gates are noise-free.
//!
//! ```text
//! cargo run --release --bin recallsweep [-- --full --threads N --csv]
//! ```

use gpu_sim::arch::v100;
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::rng::SplitMix64;
use sampleselect::topk::top_k_largest_on_device;
use sampleselect::{approx_top_k_on_device, measure_recall, plan_for_recall, SampleSelectConfig};
use select_bench::{HarnessArgs, Table};

const DISTS: [&str; 3] = ["uniform", "exponential", "skewed"];
const K_FRACS: [(&str, f64); 2] = [("small-k", 0.05), ("large-k", 0.25)];
const TARGETS: [f64; 3] = [0.90, 0.95, 0.99];

struct Cell {
    dist: &'static str,
    k_label: &'static str,
    k: usize,
    target: f64,
    buckets: usize,
    oversample: f64,
    expected: f64,
    measured: f64,
    approx_us: f64,
    exact_us: f64,
}

/// Continuous value distributions (essentially tie-free, so measured
/// recall is unambiguous).
fn gen_data(dist: &str, n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let u = rng.next_f64().max(1e-12);
            let v = match dist {
                "uniform" => u * 1e9,
                "exponential" => -u.ln() * 1e6,
                "skewed" => u.powi(4) * 1e9,
                other => panic!("unknown distribution {other}"),
            };
            v as f32
        })
        .collect()
}

fn run_cell(
    dist: &'static str,
    k_label: &'static str,
    k_frac: f64,
    target: f64,
    n: usize,
    seed: u64,
    pool: &ThreadPool,
) -> Cell {
    let data = gen_data(dist, n, seed);
    let k = ((n as f64 * k_frac) as usize).max(1);
    let cfg = SampleSelectConfig::default();
    let arch = v100();

    let (acfg, expected) = plan_for_recall(n, k, target);
    let mut device = Device::new(arch.clone(), pool);
    let mut approx = approx_top_k_on_device(&mut device, &data, k, &acfg, &cfg)
        .unwrap_or_else(|e| panic!("{dist}/{k_label}/{target}: approx errored: {e}"));
    let measured = measure_recall(&data, &mut approx);
    let approx_us = approx.report.total_time.as_us();

    let mut device = Device::new(arch, pool);
    let exact = top_k_largest_on_device(&mut device, &data, k, &cfg)
        .unwrap_or_else(|e| panic!("{dist}/{k_label}/{target}: exact errored: {e}"));
    let exact_us = exact.report.total_time.as_us();

    Cell {
        dist,
        k_label,
        k,
        target,
        buckets: acfg.buckets,
        oversample: acfg.oversample,
        expected,
        measured,
        approx_us,
        exact_us,
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let pool = ThreadPool::new(args.threads.unwrap_or(4));
    let n: usize = if args.full { 1 << 22 } else { 1 << 21 };
    let seed = 0x5eed_cafe;

    let mut cells = Vec::new();
    for dist in DISTS {
        for (k_label, k_frac) in K_FRACS {
            for target in TARGETS {
                cells.push(run_cell(dist, k_label, k_frac, target, n, seed, &pool));
            }
        }
    }

    let mut t = Table::new(vec![
        "dist",
        "k",
        "target",
        "expected",
        "measured",
        "buckets",
        "approx_us",
        "exact_us",
        "speedup",
    ]);
    let mut rows_json = Vec::new();
    for c in &cells {
        let speedup = c.exact_us / c.approx_us;
        rows_json.push(format!(
            "{{\"dist\": \"{}\", \"k_label\": \"{}\", \"k\": {}, \"target\": {}, \
             \"expected_recall\": {:.6}, \"measured_recall\": {:.6}, \
             \"buckets\": {}, \"oversample\": {:.4}, \
             \"approx_us\": {:.3}, \"exact_us\": {:.3}}}",
            c.dist,
            c.k_label,
            c.k,
            c.target,
            c.expected,
            c.measured,
            c.buckets,
            c.oversample,
            c.approx_us,
            c.exact_us
        ));
        t.row(vec![
            c.dist.to_string(),
            format!("{} ({})", c.k, c.k_label),
            format!("{:.2}", c.target),
            format!("{:.4}", c.expected),
            format!("{:.4}", c.measured),
            c.buckets.to_string(),
            format!("{:.1}", c.approx_us),
            format!("{:.1}", c.exact_us),
            format!("{speedup:.2}x"),
        ]);
    }

    let json = format!(
        "{{\n  \"schema\": \"recallsweep-v1\",\n  \"n\": {n},\n  \"seed\": {seed},\n  \
         \"cells\": [\n    {}\n  ]\n}}\n",
        rows_json.join(",\n    ")
    );
    std::fs::write("BENCH_approx_topk.json", &json).expect("write BENCH_approx_topk.json");

    println!(
        "Approximate top-k recall sweep (Tesla V100, n = 2^{})\n",
        n.trailing_zeros()
    );
    if args.csv {
        print!("{}", t.render_csv());
    } else {
        print!("{}", t.render());
    }
    println!();
    println!("speedup = exact fused top-k sim-time / approximate sim-time per cell.");
    println!("BENCH_approx_topk.json written; gate with scripts/check_perf.py --approx-topk.");
}
