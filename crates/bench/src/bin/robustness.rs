//! The paper's **robustness claim** (§I, §V-D): SampleSelect "does not
//! work on the actual values but the ranks of the elements only", so it
//! is immune to adversarial value distributions, while value-based
//! methods (BucketSelect's uniform value-range splitting) degrade.
//!
//! This binary runs SampleSelect, QuickSelect, BucketSelect, and
//! RadixSelect over a battery of distributions on the V100 and reports
//! simulated runtime and recursion depth.
//!
//! ```text
//! cargo run --release --bin robustness [--full] [--csv] [--reps N]
//! ```

use gpu_sim::arch::v100;
use gpu_sim::Device;
use hpc_par::ThreadPool;
use sampleselect::{quick_select_on_device, sample_select_on_device, SampleSelectConfig};
use select_baselines::bucketselect::bucket_select_on_device;
use select_baselines::radixselect::radix_select_on_device;
use select_bench::{measure, HarnessArgs, Table};
use select_datagen::{Distribution, RankChoice, WorkloadSpec};

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(3);
    let n = if args.full { 1 << 26 } else { 1 << 22 };
    let pool = ThreadPool::global();
    let arch = v100();

    let distributions = [
        Distribution::Uniform,
        Distribution::Normal {
            mean: 0.0,
            std_dev: 1.0,
        },
        Distribution::Exponential { lambda: 1.0 },
        Distribution::UniformDistinct { distinct: 16 },
        Distribution::SortedAscending,
        Distribution::ClusteredOutliers,
        Distribution::GeometricCascade,
    ];
    let algorithms = ["sampleselect", "quickselect", "bucketselect", "radixselect"];

    let mut t = Table::new(vec![
        "distribution",
        "algorithm",
        "runtime(ms)",
        "levels",
        "cv",
    ]);

    for dist in distributions {
        let spec = WorkloadSpec {
            n,
            distribution: dist,
            rank: RankChoice::Random,
            seed: 0x0b057,
        };
        for algo in algorithms {
            let mut levels = 0u32;
            let stats = measure(reps, |rep| {
                let w = spec.instantiate::<f32>(rep);
                let cfg = SampleSelectConfig::tuned_for(&arch).with_seed(41 + rep);
                let mut device = Device::new(arch.clone(), pool);
                let report = match algo {
                    "sampleselect" => {
                        sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                    "quickselect" => {
                        quick_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                    "bucketselect" => {
                        bucket_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                    _ => {
                        radix_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                };
                levels = levels.max(report.levels);
                report.total_time.as_ms()
            });
            t.row(vec![
                dist.label(),
                algo.to_string(),
                format!("{:.3}", stats.mean),
                levels.to_string(),
                format!("{:.1}%", stats.cv() * 100.0),
            ]);
        }
    }

    if args.csv {
        print!("{}", t.render_csv());
    } else {
        println!("Distribution robustness (Tesla V100, n = {n}, f32, {reps} reps)\n");
        print!("{}", t.render());
        println!();
        println!("Expected shapes: SampleSelect's runtime and depth are flat across");
        println!("distributions (it only ever looks at ranks); BucketSelect matches it");
        println!("on uniform data but needs many more (full-size!) levels on");
        println!("clustered-outliers and geometric-cascade inputs; RadixSelect is");
        println!("distribution-independent but always pays key-width/8 levels.");
    }
}
