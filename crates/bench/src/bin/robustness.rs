//! The paper's **robustness claim** (§I, §V-D): SampleSelect "does not
//! work on the actual values but the ranks of the elements only", so it
//! is immune to adversarial value distributions, while value-based
//! methods (BucketSelect's uniform value-range splitting) degrade.
//!
//! This binary runs SampleSelect, QuickSelect, BucketSelect, and
//! RadixSelect over a battery of distributions on the V100 and reports
//! simulated runtime and recursion depth. A fifth row per distribution
//! runs the **resilient** driver against a seeded fault plan (injected
//! launch failures) and reports how many retries / fallbacks /
//! degradations the recovery machinery needed; the plain algorithms
//! report zeros in those columns. The full table is also written to
//! `results/robustness.csv`.
//!
//! ```text
//! cargo run --release --bin robustness [--full] [--csv] [--reps N]
//! ```

use gpu_sim::arch::v100;
use gpu_sim::{Device, FaultPlan};
use sampleselect::{
    quick_select_on_device, resilient_select_on_device, sample_select_on_device, ResilienceConfig,
    SampleSelectConfig, VerifyPolicy,
};
use select_baselines::bucketselect::bucket_select_on_device;
use select_baselines::radixselect::radix_select_on_device;
use select_bench::{measure, HarnessArgs, Table};
use select_datagen::{Distribution, RankChoice, WorkloadSpec};

/// Launch-failure probability for the fault plan fed to the resilient rows.
const FAULT_RATE: f64 = 0.15;

/// Bit-flip probability per buffer exposure for the resilient rows; the
/// paranoid `VerifyPolicy` must detect every consequential corruption.
const BITFLIP_RATE: f64 = 0.25;

/// Column schema, emitted as `#`-comment lines ahead of the CSV header
/// so downstream plotting scripts can check it before parsing (and keep
/// working when columns are appended at the end).
const CSV_SCHEMA: &str = "\
# robustness.csv column schema v2
#   distribution   input value distribution (see select-datagen)
#   algorithm      selection driver; `resilient` runs under an injected
#                  fault plan (launch failures + bit flips), the others fault-free
#   runtime(ms)    mean simulated runtime over the reps
#   levels         max recursion depth observed
#   cv             coefficient of variation of the runtime across reps
#   retries        re-seeded retry attempts summed over the reps
#   fallbacks      backend hand-offs summed over the reps
#   degradations   exact->approximate downgrades summed over the reps
#   corruptions    data-plane corruptions detected by ABFT checks (summed)
#   certified      results proven exact by the O(n) rank certificate (summed)
#   resumed        checkpoint resumes (streaming only; 0 for in-memory rows)
";

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(3);
    let n = if args.full { 1 << 26 } else { 1 << 22 };
    let pool = args.thread_pool();
    let arch = v100();

    let distributions = [
        Distribution::Uniform,
        Distribution::Normal {
            mean: 0.0,
            std_dev: 1.0,
        },
        Distribution::Exponential { lambda: 1.0 },
        Distribution::UniformDistinct { distinct: 16 },
        Distribution::SortedAscending,
        Distribution::ClusteredOutliers,
        Distribution::GeometricCascade,
    ];
    let algorithms = [
        "sampleselect",
        "quickselect",
        "bucketselect",
        "radixselect",
        "resilient",
    ];

    let mut t = Table::new(vec![
        "distribution",
        "algorithm",
        "runtime(ms)",
        "levels",
        "cv",
        "retries",
        "fallbacks",
        "degradations",
        "corruptions",
        "certified",
        "resumed",
    ]);

    for dist in distributions {
        let spec = WorkloadSpec {
            n,
            distribution: dist,
            rank: RankChoice::Random,
            seed: 0x0b057,
        };
        for algo in algorithms {
            let mut levels = 0u32;
            let mut retries = 0u32;
            let mut fallbacks = 0u32;
            let mut degradations = 0u32;
            let mut corruptions = 0u32;
            let mut certified = 0u32;
            let mut resumed = 0u32;
            let stats = measure(reps, |rep| {
                let w = spec.instantiate::<f32>(rep);
                let cfg = SampleSelectConfig::tuned_for(&arch).with_seed(41 + rep);
                let mut device = Device::new(arch.clone(), pool);
                let report = match algo {
                    "sampleselect" => {
                        sample_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                    "quickselect" => {
                        quick_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                    "bucketselect" => {
                        bucket_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                    "radixselect" => {
                        radix_select_on_device(&mut device, &w.data, w.rank, &cfg)
                            .unwrap()
                            .report
                    }
                    _ => {
                        // Resilient driver under injected launch failures
                        // plus silent bit flips: same fault seed per rep
                        // across distributions so the recovery columns are
                        // reproducible run-to-run. Paranoid verification
                        // detects the flips and certifies the result.
                        let plan = FaultPlan::new(0xFA117 + rep)
                            .launch_failures(FAULT_RATE)
                            .max_launch_failures(4)
                            .bitflips(BITFLIP_RATE)
                            .max_corruptions(6);
                        device.set_fault_plan(plan);
                        let cfg = cfg.with_verify(VerifyPolicy::Paranoid);
                        let rcfg = ResilienceConfig::default();
                        resilient_select_on_device(&mut device, &w.data, w.rank, &cfg, &rcfg)
                            .unwrap()
                            .report
                    }
                };
                levels = levels.max(report.levels);
                retries += report.resilience.retries;
                fallbacks += report.resilience.fallbacks;
                degradations += report.resilience.degradations;
                corruptions += report.resilience.corruptions_detected;
                certified += report.resilience.certified;
                resumed += report.resilience.resumed;
                report.total_time.as_ms()
            });
            t.row(vec![
                dist.label(),
                algo.to_string(),
                format!("{:.3}", stats.mean),
                levels.to_string(),
                format!("{:.1}%", stats.cv() * 100.0),
                retries.to_string(),
                fallbacks.to_string(),
                degradations.to_string(),
                corruptions.to_string(),
                certified.to_string(),
                resumed.to_string(),
            ]);
        }
    }

    // The schema comment is prepended at the write site only: the
    // in-memory `render_csv()` output stays a plain header + rows table.
    let csv = format!("{CSV_SCHEMA}{}", t.render_csv());
    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write("results/robustness.csv", &csv) {
            Ok(()) => eprintln!("wrote results/robustness.csv"),
            Err(e) => eprintln!("could not write results/robustness.csv: {e}"),
        }
    }

    if args.csv {
        print!("{csv}");
    } else {
        println!("Distribution robustness (Tesla V100, n = {n}, f32, {reps} reps)\n");
        print!("{}", t.render());
        println!();
        println!("Expected shapes: SampleSelect's runtime and depth are flat across");
        println!("distributions (it only ever looks at ranks); BucketSelect matches it");
        println!("on uniform data but needs many more (full-size!) levels on");
        println!("clustered-outliers and geometric-cascade inputs; RadixSelect is");
        println!("distribution-independent but always pays key-width/8 levels.");
        let pct = FAULT_RATE * 100.0;
        let bits = BITFLIP_RATE * 100.0;
        println!("The resilient rows run under a seeded fault plan ({pct:.0}%");
        println!("launch-failure rate capped at 4, plus {bits:.0}% bit-flip rate capped");
        println!("at 6 corruptions) with paranoid verification: retries/fallbacks/");
        println!("degradations/corruptions/certified show what the recovery and");
        println!("ABFT machinery spent to still return the exact k-th element.");
    }
}
