//! `shardsweep` — the sharded multi-device scaling and robustness bench.
//!
//! Sweeps the sharded selection driver over K ∈ {1, 2, 4, 8} simulated
//! V100s joined by the architecture's interconnect model, on one
//! selection shape, and reports simulated critical-path time, link
//! traffic, and parallel efficiency against the smallest feasible K.
//! A final **faulted** leg kills one shard mid-recursion and measures
//! what replay recovery costs on top of the clean K=4 run.
//!
//! The headline claim needs `--full`: at n = 2^28 an f32 problem is
//! 1 GiB of device-resident data plus the oracle buffer — more than a
//! single simulated device's memory budget — so the K=1 leg is reported
//! as *infeasible* and the sweep demonstrates a problem only the
//! sharded driver can run, with near-linear sim-time scaling from K=2
//! to K=8. The quick (default) shape fits everywhere and exercises the
//! same code paths in CI.
//!
//! Writes `results/shard.csv` and `BENCH_shard.json`.
//!
//! ```text
//! cargo run --release --bin shardsweep [-- --full --reps N --threads N]
//! ```

use gpu_sim::arch::v100;
use sampleselect::{
    sharded_select, sharded_select_clean, Outcome, SampleSelectConfig, ShardConfig, ShardFaults,
};
use select_bench::{measure, HarnessArgs, Table};
use select_datagen::WorkloadSpec;

/// Per-device memory budget the sweep enforces, mirroring a 16 GiB V100
/// scaled to the simulator's reduced problem sizes: a shard must hold
/// its data slice plus the per-element bucket oracle (1 byte/elem) and
/// a same-size filter output buffer within this budget.
const DEVICE_CAPACITY_BYTES: u64 = 768 << 20;

/// Working-set bytes one shard of `elems` f32 elements needs resident.
fn shard_working_set(elems: u64) -> u64 {
    // data slice + filter double-buffer + bucket oracles
    elems * 4 * 2 + elems
}

const CSV_SCHEMA: &str = "\
# shard.csv column schema v1
#   shards        number of simulated devices (K); `leg` = clean | faulted
#   leg           clean runs are fault-free; faulted kills shard 1 at level 1
#                 and recovers it by fingerprint-verified replay
#   feasible      whether each shard's working set fits the per-device budget
#   sim_ms        mean simulated critical-path time over the reps (- if infeasible)
#   cv            coefficient of variation of sim_ms across reps
#   link_ms       simulated time on the interconnect (all-reduce/broadcast/gather)
#   link_mb       megabytes moved across the interconnect
#   speedup       sim-time speedup vs the smallest feasible clean K
#   efficiency    speedup normalized by the device ratio (1.0 = linear)
#   recovered     shards recovered by replay (faulted leg only)
";

struct Leg {
    k: usize,
    label: &'static str,
    feasible: bool,
    sim_ms: f64,
    cv: f64,
    link_ms: f64,
    link_mb: f64,
    recovered: u32,
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(3);
    let n: usize = if args.full { 1 << 28 } else { 1 << 22 };
    let rank = n / 2;
    let pool = args.thread_pool();
    let arch = v100();

    eprintln!(
        "shardsweep: n = 2^{} ({} MiB of f32), {reps} reps",
        n.trailing_zeros(),
        (n * 4) >> 20
    );
    let spec = WorkloadSpec::uniform(n, 0x5a4d);
    let w = spec.instantiate::<f32>(0);

    let mut legs: Vec<Leg> = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let per_shard = shard_working_set(n.div_ceil(k) as u64);
        if per_shard > DEVICE_CAPACITY_BYTES {
            eprintln!(
                "shardsweep: K={k} infeasible ({} MiB/shard > {} MiB budget)",
                per_shard >> 20,
                DEVICE_CAPACITY_BYTES >> 20
            );
            legs.push(Leg {
                k,
                label: "clean",
                feasible: false,
                sim_ms: f64::NAN,
                cv: 0.0,
                link_ms: 0.0,
                link_mb: 0.0,
                recovered: 0,
            });
            continue;
        }
        let mut link_ms = 0.0;
        let mut link_bytes = 0u64;
        let stats = measure(reps, |rep| {
            let cfg = SampleSelectConfig::tuned_for(&arch).with_seed(1000 + rep);
            let res = sharded_select_clean(
                &arch,
                pool,
                &w.data,
                rank,
                &cfg,
                &ShardConfig::default().with_shards(k),
            )
            .expect("clean sharded select");
            assert!(res.outcome.is_exact(), "clean K={k} leg must stay exact");
            link_ms += res.report.link_time.as_ms();
            link_bytes += res.report.link_bytes;
            res.report.sim_time.as_ms()
        });
        eprintln!("shardsweep: K={k} clean {:.3} ms", stats.mean);
        legs.push(Leg {
            k,
            label: "clean",
            feasible: true,
            sim_ms: stats.mean,
            cv: stats.cv(),
            link_ms: link_ms / reps as f64,
            link_mb: link_bytes as f64 / reps as f64 / (1 << 20) as f64,
            recovered: 0,
        });
    }

    // Faulted leg: kill shard 1 at level 1 under K=4, recover by replay.
    let faulted = {
        let mut link_ms = 0.0;
        let mut link_bytes = 0u64;
        let mut recovered = 0u32;
        let stats = measure(reps, |rep| {
            let cfg = SampleSelectConfig::tuned_for(&arch).with_seed(1000 + rep);
            let res = sharded_select(
                &arch,
                pool,
                &w.data,
                rank,
                &cfg,
                &ShardConfig::default()
                    .with_shards(4)
                    .with_recovery_budget(1),
                &ShardFaults::default().kill_shard(1, 1),
            )
            .expect("faulted sharded select");
            assert!(
                matches!(res.outcome, Outcome::Exact(_)),
                "killed shard must be recovered to an exact result"
            );
            recovered += res.report.shards_recovered;
            link_ms += res.report.link_time.as_ms();
            link_bytes += res.report.link_bytes;
            res.report.sim_time.as_ms()
        });
        eprintln!("shardsweep: K=4 faulted {:.3} ms", stats.mean);
        Leg {
            k: 4,
            label: "faulted",
            feasible: true,
            sim_ms: stats.mean,
            cv: stats.cv(),
            link_ms: link_ms / reps as f64,
            link_mb: link_bytes as f64 / reps as f64 / (1 << 20) as f64,
            recovered,
        }
    };

    let baseline = legs
        .iter()
        .find(|l| l.feasible)
        .expect("at least one feasible K");
    let (base_k, base_ms) = (baseline.k, baseline.sim_ms);

    let mut t = Table::new(vec![
        "shards",
        "leg",
        "feasible",
        "sim_ms",
        "cv",
        "link_ms",
        "link_mb",
        "speedup",
        "efficiency",
        "recovered",
    ]);
    let mut rows_json = Vec::new();
    for leg in legs.iter().chain(std::iter::once(&faulted)) {
        let (speedup, efficiency) = if leg.feasible {
            let s = base_ms / leg.sim_ms;
            (s, s * base_k as f64 / leg.k as f64)
        } else {
            (f64::NAN, f64::NAN)
        };
        let fmt = |v: f64, p: usize| {
            if v.is_nan() {
                "-".to_string()
            } else {
                format!("{v:.p$}")
            }
        };
        t.row(vec![
            leg.k.to_string(),
            leg.label.to_string(),
            leg.feasible.to_string(),
            fmt(leg.sim_ms, 3),
            format!("{:.1}%", leg.cv * 100.0),
            fmt(leg.link_ms, 3),
            fmt(leg.link_mb, 2),
            fmt(speedup, 2),
            fmt(efficiency, 2),
            leg.recovered.to_string(),
        ]);
        let num = |v: f64| {
            if v.is_nan() {
                "null".to_string()
            } else {
                format!("{v:.4}")
            }
        };
        rows_json.push(format!(
            "{{\"shards\": {}, \"leg\": \"{}\", \"feasible\": {}, \"sim_ms\": {}, \
             \"link_ms\": {}, \"link_mb\": {}, \"speedup\": {}, \"efficiency\": {}, \
             \"recovered\": {}}}",
            leg.k,
            leg.label,
            leg.feasible,
            num(leg.sim_ms),
            num(leg.link_ms),
            num(leg.link_mb),
            num(speedup),
            num(efficiency),
            leg.recovered
        ));
    }

    let csv = format!("{CSV_SCHEMA}{}", t.render_csv());
    if std::fs::create_dir_all("results").is_ok() {
        match std::fs::write("results/shard.csv", &csv) {
            Ok(()) => eprintln!("wrote results/shard.csv"),
            Err(e) => eprintln!("could not write results/shard.csv: {e}"),
        }
    }

    let json = format!(
        "{{\n  \"schema\": \"shardsweep-v1\",\n  \"n\": {n},\n  \"rank\": {rank},\n  \
         \"reps\": {reps},\n  \"threads\": {},\n  \"device_capacity_bytes\": {DEVICE_CAPACITY_BYTES},\n  \
         \"baseline_k\": {base_k},\n  \"legs\": [\n    {}\n  ]\n}}\n",
        pool.num_threads(),
        rows_json.join(",\n    "),
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");

    if args.csv {
        print!("{csv}");
    } else {
        println!(
            "Sharded scaling sweep (Tesla V100 x K, n = 2^{}, f32, {reps} reps)\n",
            n.trailing_zeros()
        );
        print!("{}", t.render());
        println!();
        if args.full {
            println!("K=1 cannot hold the working set within the per-device budget —");
            println!("this problem size only runs sharded. Efficiency close to 1.0 from");
            println!("the smallest feasible K (the baseline) upward is the near-linear");
            println!("scaling claim.");
        } else {
            println!("Quick shape (fits on one device). Run with --full for the 2^28");
            println!("sweep where K=1 is infeasible and only the sharded driver runs.");
        }
        println!("The faulted leg kills shard 1 at level 1; `recovered` counts the");
        println!("fingerprint-verified replays that kept the result exact.");
    }
}
