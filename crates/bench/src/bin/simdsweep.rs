//! `simdsweep` — scalar-vs-SIMD microbench for the vectorized host
//! kernels behind `SELECT_SIMD`.
//!
//! Measures four hot-loop shapes at every dispatch level the machine
//! supports, interleaved per rep so machine drift hits all levels
//! equally:
//!
//! * **count** — batched search-tree descent (`lookup_batch`)
//!   feeding a 256-bucket histogram;
//! * **filter** — oracle-byte compare-mask + stable compress of
//!   the matching lanes (the single-bucket filter fast path);
//! * **bipartition** — three-way pivot masks + masked compress into
//!   smaller/equal/larger outputs;
//! * **digitcount** — float→sort-key conversion + radix digit
//!   histogram.
//!
//! Levels: `off` (the original scalar code shape), `scalar` (the
//! portable unrolled fallback primitives) and `avx2` (when the CPU has
//! it). Every rep checksums each level's full output; any divergence
//! marks the leg non-identical — the deterministic signal
//! `scripts/check_perf.py --simd` hard-fails on. A final pipeline leg
//! runs one complete SampleSelect query at `off` and at the widest
//! level and requires bit-identical answers *and* identical simulated
//! time: SIMD may only change wall clock, never the modeled cost.
//!
//! Writes `BENCH_simd.json`.
//!
//! ```text
//! cargo run --release --bin simdsweep [-- --reps N --full]
//! ```

use std::time::Instant;

use gpu_sim::arch::v100;
use gpu_sim::Device;
use hpc_par::simd::{self, SimdLevel};
use sampleselect::element::{fill_sort_keys32, SelectElement};
use sampleselect::rng::SplitMix64;
use sampleselect::searchtree::SearchTree;
use sampleselect::{sample_select_on_device, SampleSelectConfig};
use select_bench::HarnessArgs;

const BUCKETS: usize = 256;
const GROUP: usize = 32;

fn fnv(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x100_0000_01b3)
}

#[derive(Debug, Clone, Copy, Default)]
struct LegStats {
    wall_s: f64,
    wall_mean_s: f64,
}

impl LegStats {
    fn absorb(&mut self, wall: f64) {
        self.wall_s = if self.wall_s == 0.0 {
            wall
        } else {
            self.wall_s.min(wall)
        };
        self.wall_mean_s += wall;
    }
}

/// Run one leg at every level, interleaved per rep. Returns per-level
/// stats plus whether every level produced the same output checksum.
fn run_leg(
    levels: &[SimdLevel],
    reps: usize,
    mut work: impl FnMut(SimdLevel) -> u64,
) -> (Vec<LegStats>, bool) {
    let mut stats = vec![LegStats::default(); levels.len()];
    let mut identical = true;
    for _ in 0..reps {
        let mut reference: Option<u64> = None;
        for (li, &level) in levels.iter().enumerate() {
            let start = Instant::now();
            let cs = work(level);
            stats[li].absorb(start.elapsed().as_secs_f64());
            match reference {
                None => reference = Some(cs),
                Some(r) => identical &= r == cs,
            }
        }
    }
    for s in &mut stats {
        s.wall_mean_s /= reps as f64;
    }
    (stats, identical)
}

/// Batched tree descent into a bucket histogram (the count hot loop).
fn count_leg(data: &[f32], tree: &SearchTree<f32>, level: SimdLevel) -> u64 {
    simd::force_level(Some(level));
    let mut hist = [0u64; BUCKETS];
    let mut buckets = [0u32; 128];
    let mut i = 0;
    while i < data.len() {
        let len = (data.len() - i).min(128);
        tree.lookup_batch(&data[i..i + len], &mut buckets[..len]);
        for &b in &buckets[..len] {
            hist[b as usize] += 1;
        }
        i += len;
    }
    simd::force_level(None);
    hist.iter().fold(0xcbf2_9ce4_8422_2325, |a, &c| fnv(a, c))
}

/// Oracle compare-mask + stable compress (the filter fast path).
fn filter_leg(bits: &[u32], oracle: &[u8], out: &mut [u32], level: SimdLevel) -> u64 {
    let mut cursor = 0usize;
    if level == SimdLevel::Off {
        for (i, &o) in oracle.iter().enumerate() {
            if o == 1 {
                out[cursor] = bits[i];
                cursor += 1;
            }
        }
    } else {
        let mut staging = [0u32; GROUP];
        let mut i = 0;
        while i < bits.len() {
            let len = (bits.len() - i).min(GROUP);
            let mask = simd::eq_mask_u8(&oracle[i..i + len], 1, level);
            let cnt = simd::compress_u32(&bits[i..i + len], mask, &mut staging, level);
            out[cursor..cursor + cnt].copy_from_slice(&staging[..cnt]);
            cursor += cnt;
            i += len;
        }
    }
    out[..cursor]
        .iter()
        .fold(fnv(0xcbf2_9ce4_8422_2325, cursor as u64), |a, &v| {
            fnv(a, v as u64)
        })
}

/// Three-way pivot masks + masked compress (the bipartition hot loop).
fn bipartition_leg(bits: &[u32], pivot: u32, outs: &mut [Vec<u32>; 3], level: SimdLevel) -> u64 {
    let mut cursors = [0usize; 3];
    if level == SimdLevel::Off {
        for &k in bits {
            let lane = if k < pivot {
                0
            } else if k == pivot {
                1
            } else {
                2
            };
            outs[lane][cursors[lane]] = k;
            cursors[lane] += 1;
        }
    } else {
        let mut staging = [0u32; GROUP];
        let mut i = 0;
        while i < bits.len() {
            let len = (bits.len() - i).min(GROUP);
            let group = &bits[i..i + len];
            let (lt, eq) = simd::pivot_masks_u32(group, pivot, level);
            let gt = !(lt | eq) & simd::mask_for_len(len);
            for (lane, mask) in [(0usize, lt), (1, eq), (2, gt)] {
                let cnt = simd::compress_u32(group, mask, &mut staging, level);
                outs[lane][cursors[lane]..cursors[lane] + cnt].copy_from_slice(&staging[..cnt]);
                cursors[lane] += cnt;
            }
            i += len;
        }
    }
    let mut cs = 0xcbf2_9ce4_8422_2325u64;
    for (lane, out) in outs.iter().enumerate() {
        cs = fnv(cs, cursors[lane] as u64);
        for &v in &out[..cursors[lane]] {
            cs = fnv(cs, v as u64);
        }
    }
    cs
}

/// Float→sort-key conversion + radix digit histogram (digit count).
fn digitcount_leg(data: &[f32], shift: u32, level: SimdLevel) -> u64 {
    let mut hist = [0u64; 256];
    if level == SimdLevel::Off {
        for &x in data {
            hist[((x.to_sort_key() >> shift) & 0xff) as usize] += 1;
        }
    } else {
        let mut keys = [0u32; GROUP];
        let mut i = 0;
        while i < data.len() {
            let len = (data.len() - i).min(GROUP);
            fill_sort_keys32(&data[i..i + len], &mut keys[..len], level);
            for &k in &keys[..len] {
                hist[((k >> shift) & 0xff) as usize] += 1;
            }
            i += len;
        }
    }
    hist.iter().fold(0xcbf2_9ce4_8422_2325, |a, &c| fnv(a, c))
}

fn stats_json(s: &LegStats) -> String {
    format!(
        "{{\"wall_s\": {:.6}, \"wall_mean_s\": {:.6}}}",
        s.wall_s, s.wall_mean_s
    )
}

fn leg_json(n: usize, levels: &[SimdLevel], stats: &[LegStats], identical: bool) -> String {
    let mut body = format!("{{\"n\": {n}, \"identical\": {identical}");
    for (li, &level) in levels.iter().enumerate() {
        body += &format!(", \"{}\": {}", level.name(), stats_json(&stats[li]));
    }
    // Speedup of the widest level over the original scalar code shape.
    let speedup = stats[0].wall_s / stats[levels.len() - 1].wall_s.max(1e-12);
    body += &format!(", \"speedup\": {speedup:.3}}}");
    body
}

fn main() {
    let args = HarnessArgs::parse();
    let reps = args.reps_or(7);
    let n: usize = if args.full { 1 << 22 } else { 1 << 20 };
    let avx2 = simd::avx2_available();
    let mut levels = vec![SimdLevel::Off, SimdLevel::Scalar];
    if avx2 {
        levels.push(SimdLevel::Avx2);
    }
    let widest = *levels.last().expect("at least one level");

    // Deterministic inputs shared by every level and rep.
    let mut rng = SplitMix64::new(0x51d5_0eeb);
    let data: Vec<f32> = (0..n).map(|_| rng.next_f64() as f32 * 2.0 - 1.0).collect();
    let bits: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
    let oracle: Vec<u8> = (0..n).map(|_| (rng.next_u64() % 4) as u8).collect();
    let mut splitters: Vec<f32> = (0..BUCKETS - 1)
        .map(|i| (i as f32 + 0.5) / BUCKETS as f32 * 2.0 - 1.0)
        .collect();
    splitters.sort_unstable_by(|a, b| a.total_cmp(b));
    let tree = SearchTree::build(&splitters);
    let pivot = bits[n / 2];

    eprintln!(
        "simdsweep: n=2^{}, reps={reps}, levels={:?}",
        n.trailing_zeros(),
        levels.iter().map(|l| l.name()).collect::<Vec<_>>()
    );

    let (count_stats, count_ok) = run_leg(&levels, reps, |lvl| count_leg(&data, &tree, lvl));

    let mut filter_out = vec![0u32; n];
    let (filter_stats, filter_ok) = run_leg(&levels, reps, |lvl| {
        filter_leg(&bits, &oracle, &mut filter_out, lvl)
    });

    let mut part_outs = [vec![0u32; n], vec![0u32; n], vec![0u32; n]];
    let (part_stats, part_ok) = run_leg(&levels, reps, |lvl| {
        bipartition_leg(&bits, pivot, &mut part_outs, lvl)
    });

    let (digit_stats, digit_ok) = run_leg(&levels, reps, |lvl| digitcount_leg(&data, 16, lvl));

    // Pipeline identity: one full SampleSelect query at off vs the
    // widest level. The answer must be bit-identical and the simulated
    // timeline unchanged — SIMD is a wall-clock optimization only.
    eprintln!("simdsweep: pipeline identity check...");
    let pool = args.thread_pool();
    let cfg = SampleSelectConfig::default().with_seed(41);
    let run_at = |level: SimdLevel| {
        simd::force_level(Some(level));
        let mut device = Device::new(v100(), pool);
        let r = sample_select_on_device(&mut device, &data, n / 2, &cfg).expect("pipeline select");
        simd::force_level(None);
        (r.value.to_bits(), r.report.total_time.as_ns())
    };
    let (val_off, sim_off) = run_at(SimdLevel::Off);
    let (val_simd, sim_simd) = run_at(widest);
    let pipeline_ok = val_off == val_simd && sim_off == sim_simd;

    let json = format!(
        "{{\n  \"schema\": \"simdsweep-v1\",\n  \"reps\": {reps},\n  \
         \"avx2_available\": {avx2},\n  \"widest\": \"{}\",\n  \"legs\": {{\n    \
         \"count\": {},\n    \"filter\": {},\n    \"bipartition\": {},\n    \
         \"digitcount\": {}\n  }},\n  \
         \"pipeline\": {{\"n\": {n}, \"identical\": {pipeline_ok}, \
         \"sim_ns_off\": {sim_off:.1}, \"sim_ns_simd\": {sim_simd:.1}}}\n}}\n",
        widest.name(),
        leg_json(n, &levels, &count_stats, count_ok),
        leg_json(n, &levels, &filter_stats, filter_ok),
        leg_json(n, &levels, &part_stats, part_ok),
        leg_json(n, &levels, &digit_stats, digit_ok),
    );
    std::fs::write("BENCH_simd.json", &json).expect("write BENCH_simd.json");
    println!("{json}");

    let speedup = |s: &[LegStats]| s[0].wall_s / s[levels.len() - 1].wall_s.max(1e-12);
    eprintln!(
        "count {:.2}x, filter {:.2}x, bipartition {:.2}x, digitcount {:.2}x ({} vs off)",
        speedup(&count_stats),
        speedup(&filter_stats),
        speedup(&part_stats),
        speedup(&digit_stats),
        widest.name(),
    );
}
