//! Regenerates **Table I**: key characteristics of the GPUs the paper
//! evaluates on (plus the Tesla C2070 used in the §V-D comparison).
//!
//! ```text
//! cargo run --release --bin table1
//! ```

use gpu_sim::arch::{all_architectures, GpuArchitecture};
use select_bench::Table;

fn row(
    label: &str,
    f: impl Fn(&GpuArchitecture) -> String,
    archs: &[GpuArchitecture],
    t: &mut Table,
) {
    let mut cells = vec![label.to_string()];
    cells.extend(archs.iter().map(&f));
    t.row(cells);
}

fn main() {
    let archs = all_architectures();
    let mut headers = vec!["characteristic".to_string()];
    headers.extend(archs.iter().map(|a| a.name.to_string()));
    let mut t = Table::new(headers);

    row(
        "Architecture",
        |a| format!("{:?}", a.generation),
        &archs,
        &mut t,
    );
    row(
        "DP Performance",
        |a| format!("{} TFLOPs", a.dp_tflops),
        &archs,
        &mut t,
    );
    row(
        "SP Performance",
        |a| format!("{} TFLOPs", a.sp_tflops),
        &archs,
        &mut t,
    );
    row("SMs", |a| a.num_sms.to_string(), &archs, &mut t);
    row(
        "Operating Freq.",
        |a| format!("{} GHz", a.clock_ghz),
        &archs,
        &mut t,
    );
    row(
        "Mem. Capacity",
        |a| format!("{} GB", a.mem_capacity_gib),
        &archs,
        &mut t,
    );
    row(
        "Mem. Bandwidth",
        |a| format!("{} GB/s", a.peak_bw_gbs),
        &archs,
        &mut t,
    );
    row(
        "Sustained BW",
        |a| format!("{} GB/s", a.sustained_bw_gbs),
        &archs,
        &mut t,
    );
    row(
        "L2 Cache Size",
        |a| format!("{} MB", a.l2_cache_mib),
        &archs,
        &mut t,
    );
    row(
        "L1 Cache Size",
        |a| format!("{} KB", a.l1_kib),
        &archs,
        &mut t,
    );
    row(
        "Native shared atomics",
        |a| a.generation.has_native_shared_atomics().to_string(),
        &archs,
        &mut t,
    );
    row(
        "Dynamic parallelism",
        |a| a.generation.has_dynamic_parallelism().to_string(),
        &archs,
        &mut t,
    );

    println!("Table I: key characteristics of the simulated NVIDIA GPUs");
    println!("(paper values for K20Xm / V100; C2070 added for the SS V-D comparison)\n");
    print!("{}", t.render());
}
