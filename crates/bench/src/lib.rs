//! # select-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation (§V). Each figure has a dedicated binary
//! (`fig7`, `fig8`, `fig9`, `fig10`, `table1`, `bucketselect_compare`,
//! `robustness`) that prints the corresponding rows/series, plus
//! Criterion wall-clock benches of the real CPU backend.
//!
//! This library holds the shared pieces: repetition statistics matching
//! the paper's measurement protocol (10 runs, average + variation,
//! §V-B) and plain-text/CSV table output.

use std::fmt::Write as _;

/// Summary statistics over repeated measurements (the paper reports
/// "the average results along with the variation", §V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub reps: usize,
}

impl Stats {
    /// Compute statistics from raw samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Stats {
            mean,
            std_dev: var.sqrt(),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            reps: samples.len(),
        }
    }

    /// Coefficient of variation (std/mean), the "variation" of §V-B.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Run `f` for `reps` repetitions and summarize the returned samples.
pub fn measure<F: FnMut(u64) -> f64>(reps: usize, mut f: F) -> Stats {
    let samples: Vec<f64> = (0..reps as u64).map(&mut f).collect();
    Stats::from_samples(&samples)
}

/// A column-aligned plain-text table writer for harness output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
                if i == ncols - 1 {
                    out.push('\n');
                }
            }
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (for plotting scripts).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a throughput in elements/second the way the paper's y-axes
/// do (engineering notation, e.g. `3.2e9`).
pub fn fmt_throughput(elems_per_sec: f64) -> String {
    format!("{elems_per_sec:.3e}")
}

/// Parse harness CLI flags of the form `--full` / `--csv` /
/// `--arch <name>` from `std::env::args` (tiny helper shared by the
/// figure binaries; a full CLI parser dependency is not justified).
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Run the paper-scale sweep up to 2^28 (default stops at 2^24).
    pub full: bool,
    /// Emit CSV instead of the aligned table.
    pub csv: bool,
    /// Repetitions per data point (default 10 as in the paper; figure
    /// binaries may reduce it for the quick mode).
    pub reps: Option<usize>,
    /// Size of the process-global thread pool (default: one worker per
    /// hardware thread). Chunk granularity of the parallel primitives
    /// is tuned separately via the `HPC_PAR_MIN_CHUNK` env variable.
    pub threads: Option<usize>,
}

impl HarnessArgs {
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => out.full = true,
                "--csv" => out.csv = true,
                "--reps" => {
                    out.reps = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .or_else(|| panic!("--reps needs a number"));
                }
                "--threads" => {
                    out.threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .or_else(|| panic!("--threads needs a number"));
                }
                other => panic!("unknown flag {other}; known: --full --csv --reps N --threads N"),
            }
        }
        out
    }

    /// Repetition count: explicit `--reps`, else `dflt`.
    pub fn reps_or(&self, dflt: usize) -> usize {
        self.reps.unwrap_or(dflt)
    }

    /// The process-global thread pool, sized by `--threads` when given.
    /// Must be called before anything else touches the global pool; a
    /// losing race (pool already initialized) is reported on stderr.
    pub fn thread_pool(&self) -> &'static hpc_par::ThreadPool {
        if let Some(n) = self.threads {
            if !hpc_par::ThreadPool::init_global(n) {
                eprintln!(
                    "--threads {n} ignored: global pool already initialized with {} workers",
                    hpc_par::ThreadPool::global().num_threads()
                );
            }
        }
        hpc_par::ThreadPool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = Stats::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.reps, 3);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_single_sample() {
        let s = Stats::from_samples(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn measure_runs_reps() {
        let s = measure(4, |rep| rep as f64);
        assert_eq!(s.reps, 4);
        assert!((s.mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(vec!["n", "throughput"]);
        t.row(vec!["65536", "1.0e9"]);
        t.row(vec!["1048576", "2.5e9"]);
        let text = t.render();
        assert!(text.contains("n"));
        assert!(text.lines().count() == 4);
        let csv = t.render_csv();
        assert_eq!(csv.lines().next().unwrap(), "n,throughput");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_throughput(3.2e9), "3.200e9");
    }
}
