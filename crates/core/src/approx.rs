//! Approximate SampleSelect (§II-C, §V-G): one recursion level, no
//! oracles, no filter — return the splitter whose rank is closest to
//! the target.
//!
//! After the count kernel, the splitter ranks `r_i` are available for
//! free as the prefix sums of the bucket counts. The approximate variant
//! "computes only the bucket counts, and selects the splitter that is
//! closest to the target rank": the rank error is at worst half the
//! maximum bucket size, controllable through the bucket count and sample
//! size — which is why the paper recommends the maximal bucket count
//! that still fits shared memory (b ≤ 1024).

use crate::count::count_kernel;
use crate::element::SelectElement;
use crate::instrument::SelectReport;
use crate::params::SampleSelectConfig;
use crate::recursion::validate_input;
use crate::reduce::reduce_totals_kernel;
use crate::rng::SplitMix64;
use crate::splitter::sample_kernel;
use crate::SelectError;
use gpu_sim::arch::v100;
use gpu_sim::{Device, LaunchOrigin};

/// Result of an approximate selection.
#[derive(Debug, Clone)]
pub struct ApproxResult<T> {
    /// The chosen splitter: an element whose rank approximates `rank`.
    pub value: T,
    /// The exact rank of `value` in the input (the splitter's prefix
    /// sum `r_i` — known exactly, for free).
    pub achieved_rank: u64,
    /// `|achieved_rank - rank|`.
    pub rank_error: u64,
    /// `rank_error / n` — the paper's Fig. 10 x-axis ("relative
    /// approximation error in terms of the element rank").
    pub relative_error: f64,
    /// Measurement report.
    pub report: SelectReport,
}

/// Approximate selection on a simulated device.
///
/// Uses [`SampleSelectConfig::validate_count_only`]: since no oracles
/// are written, bucket counts up to 1024 are allowed regardless of the
/// oracle width.
pub fn approx_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<ApproxResult<T>, SelectError> {
    cfg.validate_count_only()
        .map_err(SelectError::InvalidConfig)?;
    validate_input(data, rank, cfg)?;

    let n = data.len();
    let records_before = device.records().len();
    let mut rng = SplitMix64::new(cfg.seed);

    let tree = sample_kernel(device, data, cfg, &mut rng, LaunchOrigin::Host)?;
    let count = count_kernel(device, data, &tree, cfg, false, LaunchOrigin::Host);
    let red = reduce_totals_kernel(device, &count, LaunchOrigin::Device);

    // The splitter bounding bucket i from below has rank
    // `bucket_offsets[i]`; splitters exist for i = 1..b. Pick the one
    // whose rank is closest to the target.
    let b = tree.num_buckets();
    let target = rank as u64;
    let mut best_bucket = 1usize;
    let mut best_err = u64::MAX;
    for i in 1..b {
        let r = red.bucket_offsets[i];
        let err = r.abs_diff(target);
        if err < best_err {
            best_err = err;
            best_bucket = i;
        }
    }
    let value = tree
        .bucket_lower(best_bucket)
        .expect("buckets 1..b always have a lower-bound splitter");
    let achieved_rank = red.bucket_offsets[best_bucket];

    let report = SelectReport::from_records(
        "approx-sampleselect",
        n,
        &device.records()[records_before..],
        1,
        true,
    );
    Ok(ApproxResult {
        value,
        achieved_rank,
        rank_error: best_err,
        relative_error: best_err as f64 / n as f64,
        report,
    })
}

/// Approximate selection on a default simulated device (Tesla V100).
pub fn approx_select<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<ApproxResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    approx_select_on_device(&mut device, data, rank, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn run(data: &[f32], rank: usize, cfg: &SampleSelectConfig) -> ApproxResult<f32> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        approx_select_on_device(&mut device, data, rank, cfg).unwrap()
    }

    #[test]
    fn achieved_rank_is_exact() {
        // The reported rank of the returned splitter must equal its true
        // rank in the input (the paper's point: splitter ranks are free).
        let data = uniform(50_000, 1);
        let res = run(&data, 25_000, &SampleSelectConfig::default());
        let true_rank = data.iter().filter(|&&x| x < res.value).count() as u64;
        assert_eq!(res.achieved_rank, true_rank);
        assert_eq!(res.rank_error, true_rank.abs_diff(25_000));
    }

    #[test]
    fn error_bounded_by_max_bucket_size() {
        let data = uniform(100_000, 2);
        let cfg = SampleSelectConfig::default();
        let res = run(&data, 50_000, &cfg);
        // expected bucket size n/b = 390; even with sampling variance
        // the nearest splitter is well within a few bucket widths.
        let bound = 8 * data.len() / cfg.num_buckets;
        assert!(
            (res.rank_error as usize) < bound,
            "error {} exceeds {bound}",
            res.rank_error
        );
        assert!(res.relative_error < 0.05);
    }

    #[test]
    fn more_buckets_reduce_error_on_average() {
        let data = uniform(1 << 18, 3);
        let rank = 1 << 17;
        let avg_err = |buckets: usize| -> f64 {
            (0..5)
                .map(|rep| {
                    let cfg = SampleSelectConfig::default()
                        .with_buckets(buckets)
                        .with_seed(1000 + rep);
                    run(&data, rank, &cfg).relative_error
                })
                .sum::<f64>()
                / 5.0
        };
        let few = avg_err(64);
        let many = avg_err(1024);
        assert!(
            many < few,
            "1024 buckets (err {many}) must beat 64 buckets (err {few})"
        );
    }

    #[test]
    fn approximate_is_faster_than_exact() {
        let data = uniform(1 << 20, 4);
        let rank = 1 << 19;
        let cfg = SampleSelectConfig::default();
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let approx = approx_select_on_device(&mut device, &data, rank, &cfg).unwrap();
        device.reset();
        let exact =
            crate::recursion::sample_select_on_device(&mut device, &data, rank, &cfg).unwrap();
        assert!(
            approx.report.total_time.as_ns() < exact.report.total_time.as_ns(),
            "approx {} vs exact {}",
            approx.report.total_time,
            exact.report.total_time
        );
    }

    #[test]
    fn value_close_to_exact_for_smooth_distribution() {
        let data = uniform(1 << 18, 5);
        let rank = 100_000;
        let res = run(
            &data,
            rank,
            &SampleSelectConfig::default().with_buckets(1024),
        );
        let exact = reference_select(&data, rank).unwrap();
        // uniform data: rank error translates into value error linearly
        assert!(
            (res.value - exact).abs() < 0.05,
            "value {} vs {exact}",
            res.value
        );
    }

    #[test]
    fn up_to_1024_buckets_allowed_without_wide_oracles() {
        let data = uniform(1 << 16, 6);
        let cfg = SampleSelectConfig::default().with_buckets(1024);
        // exact mode would reject this
        assert!(cfg.validate().is_err());
        let res = run(&data, 1000, &cfg);
        assert!(res.relative_error < 0.05);
    }

    #[test]
    fn no_filter_or_oracle_kernels_run() {
        let data = uniform(1 << 16, 7);
        let res = run(&data, 1000, &SampleSelectConfig::default());
        assert_eq!(res.report.kernel_launches("filter"), 0);
        assert_eq!(
            res.report.kernel_launches("count"),
            0,
            "count with write must not run"
        );
        assert_eq!(res.report.kernel_launches("count_nowrite"), 1);
    }

    #[test]
    fn propagates_input_errors() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let err =
            approx_select_on_device::<f32>(&mut device, &[], 0, &SampleSelectConfig::default())
                .unwrap_err();
        assert_eq!(err, SelectError::EmptyInput);
    }
}
