//! Bucketed approximate top-k ("Approximate Top-k for Increased
//! Parallelism", PAPERS.md).
//!
//! The exact fused top-k recursion ([`crate::topk`]) synchronizes
//! globally at every level: one splitter sample, one count, one filter
//! over the whole input. The approximate variant trades a bounded
//! recall loss for bucket-level parallelism:
//!
//! 1. partition the input into `b` disjoint buckets (contiguous,
//!    zero-copy slices);
//! 2. run the *local* fused top-`k'` recursion independently per bucket
//!    — no cross-bucket synchronization, so the buckets execute
//!    concurrently and the local phase's critical path is the slowest
//!    bucket, not the sum;
//! 3. union the `b · k'` candidates and finish with **one** exact
//!    fused top-k pass over the (much smaller) union.
//!
//! Recall loss happens exactly when some bucket holds more than `k'` of
//! the true top-k: the surplus never reaches the union. For an input in
//! exchangeable order the count of true top-k elements landing in one
//! bucket is `X ~ Binomial(k, 1/b)`, and the expected recall is
//!
//! ```text
//!   E[recall] = (b / k) · E[min(X, k')] = 1 − (b / k) · E[(X − k')⁺]
//! ```
//!
//! — the paper's binomial model, computed exactly (in log space) by
//! [`expected_recall`]. The `k'/k` **oversampling factor** is the
//! recall-vs-speed knob: `k' = k/b` is the fastest (and loses the most),
//! `k' = k` per bucket can never lose an element. [`plan_for_recall`]
//! inverts the model: given a recall target it returns the smallest
//! `k'` that meets it.
//!
//! The model assumes the input order carries no rank information
//! (exchangeability). Adversarially sorted inputs concentrate the top-k
//! in one bucket and the analytic estimate does not apply — which is
//! why [`measure_recall`] exists and the `recallsweep` bench reports
//! measured recall next to the analytic estimate for every grid point.
//!
//! Exact mode (`b = 1`, `k' ≥ k`) skips the finish pass and is
//! bit-identical to [`crate::topk::top_k_largest`] — pinned by a
//! property test.

use crate::element::SelectElement;
use crate::instrument::SelectReport;
use crate::obs::{self, Counter};
use crate::params::SampleSelectConfig;
use crate::topk::{top_k_largest_with_workspace, TopKResult};
use crate::workspace::SelectWorkspace;
use crate::SelectError;
use gpu_sim::arch::v100;
use gpu_sim::{Device, SimTime};

/// Shape of one approximate top-k run: how many buckets, and how many
/// candidates each contributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxTopKConfig {
    /// Disjoint buckets the input is partitioned into. `1` disables the
    /// approximation (single bucket, exact recursion).
    pub buckets: usize,
    /// The `k'/(k/b)` oversampling factor: each bucket keeps
    /// `k' = ceil(oversample · k / b)` local winners. `1.0` is the
    /// fastest setting; larger values trade speed for recall.
    pub oversample: f64,
}

impl Default for ApproxTopKConfig {
    fn default() -> Self {
        Self {
            buckets: 16,
            oversample: 1.25,
        }
    }
}

impl ApproxTopKConfig {
    /// The per-bucket candidate count `k'` this config implies for a
    /// `k`-element query (before the union-coverage adjustment).
    pub fn k_prime(&self, k: usize) -> usize {
        let per = (self.oversample * k as f64 / self.buckets as f64).ceil();
        (per as usize).max(1)
    }

    /// Validate the knobs: at least one bucket, oversample ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        if self.buckets == 0 {
            return Err("approx top-k needs at least one bucket".to_string());
        }
        if self.oversample.is_nan() || self.oversample < 1.0 {
            return Err(format!(
                "oversample factor {} must be >= 1 (k' may not undercut k/b)",
                self.oversample
            ));
        }
        Ok(())
    }
}

/// Result of one approximate top-k extraction.
#[derive(Debug, Clone)]
pub struct ApproxTopKResult<T> {
    /// `k` candidate elements, in no particular order. A subset of the
    /// true top-k with probability given by the binomial model; exact
    /// when `buckets == 1` or `k' ≥ k`.
    pub elements: Vec<T>,
    /// The smallest element of the returned set (the *approximate*
    /// top-k threshold).
    pub threshold: T,
    /// Buckets the input was partitioned into.
    pub buckets: usize,
    /// Per-bucket candidate count actually used (after the
    /// union-coverage adjustment that guarantees `Σ min(k', mⱼ) ≥ k`).
    pub k_prime: usize,
    /// Analytic expected recall from the binomial model, for the shape
    /// that actually ran.
    pub expected_recall: f64,
    /// Measured recall against the exact top-k, when the caller asked
    /// for verification ([`measure_recall`] fills it in).
    pub measured_recall: Option<f64>,
    /// Critical-path time of the local phase: the *slowest* bucket's
    /// recursion (buckets run concurrently).
    pub local_time: SimTime,
    /// Time of the exact finish pass over the candidate union.
    pub finish_time: SimTime,
    /// Combined report. `total_time` is the critical path
    /// (`local_time + finish_time`), not the serial sum of bucket work.
    pub report: SelectReport,
}

// ---------------------------------------------------------------------
// Binomial recall model
// ---------------------------------------------------------------------

/// Expected recall of bucketed approximate top-k under the binomial
/// model: `k` true winners thrown independently into `b` equal buckets,
/// each bucket keeping at most `k_prime` of them.
///
/// Computed as `1 − (b/k) · E[(X − k')⁺]` with `X ~ Binomial(k, 1/b)`,
/// exactly, by accumulating the probability mass in log space (the
/// usual `(1−p)^k` starting point underflows long before the k ~ 10⁶
/// sizes the benches run).
pub fn expected_recall(k: usize, buckets: usize, k_prime: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if buckets <= 1 || k_prime >= k {
        // One bucket keeps min(k', k) winners; k' >= k keeps them all.
        return (k_prime.min(k) as f64) / k as f64;
    }
    let p = 1.0 / buckets as f64;
    let log_ratio = (p / (1.0 - p)).ln();
    let mut log_pmf = k as f64 * (1.0 - p).ln(); // ln P(X = 0)
    let mut excess = 0.0f64; // E[(X - k')^+]
    for i in 1..=k {
        log_pmf += ((k - i + 1) as f64 / i as f64).ln() + log_ratio;
        if i > k_prime {
            let term = (i - k_prime) as f64 * log_pmf.exp();
            excess += term;
            // The pmf is unimodal: once past the mean and contributing
            // nothing at double precision, later terms never will.
            if i as f64 > k as f64 * p && term < excess * 1e-16 + f64::MIN_POSITIVE {
                break;
            }
        }
    }
    (1.0 - (buckets as f64 / k as f64) * excess).clamp(0.0, 1.0)
}

/// Invert the binomial model: the smallest `k'` whose expected recall
/// meets `target` for a `k`-element query over `buckets` buckets.
pub fn k_prime_for_recall(k: usize, buckets: usize, target: f64) -> usize {
    let floor = k.div_ceil(buckets.max(1));
    if buckets <= 1 {
        return k;
    }
    let target = target.clamp(0.0, 1.0);
    // Expected recall is monotone in k': binary search [ceil(k/b), k].
    let (mut lo, mut hi) = (floor, k);
    if expected_recall(k, buckets, lo) >= target {
        return lo;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if expected_recall(k, buckets, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Plan a config for a recall target: pick a bucket count from the
/// input size (each bucket should stay recursion-worthy), then the
/// smallest `k'` meeting the target. Returns the config and its
/// analytic expected recall.
pub fn plan_for_recall(n: usize, k: usize, target: f64) -> (ApproxTopKConfig, f64) {
    // Buckets of ~64Ki elements keep the local recursions non-trivial;
    // never more buckets than elements, never fewer than one.
    let buckets = (n / (64 * 1024)).clamp(1, 64).min(n.max(1));
    let k_prime = k_prime_for_recall(k, buckets, target);
    let per_bucket = (k as f64 / buckets as f64).max(f64::MIN_POSITIVE);
    let cfg = ApproxTopKConfig {
        buckets,
        oversample: (k_prime as f64 / per_bucket).max(1.0),
    };
    (cfg, expected_recall(k, buckets, k_prime))
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Bucket boundary `i` of `b` even contiguous buckets over `n`
/// elements (same arithmetic as `ShardTopology::even`).
fn bucket_bound(n: usize, b: usize, i: usize) -> usize {
    ((i as u64 * n as u64) / b as u64) as usize
}

/// Approximate top-k extraction on a simulated device.
///
/// The `b` local recursions are independent (no shared state, no
/// cross-bucket barrier), so each runs on its own device timeline and
/// the coordinator clock advances by the *maximum* bucket time — the
/// paper's parallelism argument, made explicit in simulated time. The
/// exact finish pass then runs on `device` itself.
pub fn approx_top_k_with_workspace<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    k: usize,
    acfg: &ApproxTopKConfig,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
) -> Result<ApproxTopKResult<T>, SelectError> {
    acfg.validate()
        .map_err(|what| SelectError::InvalidArgument { what })?;
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    let n = data.len();
    if k == 0 || k > n {
        return Err(SelectError::RankOutOfRange { rank: k, len: n });
    }
    obs::counter_add(Counter::ApproxTopkQueries, 1);

    // Never more buckets than elements; a bucket must be non-empty.
    let b = acfg.buckets.min(n);
    let mut k_prime = acfg.k_prime(k).min(n);

    // Union coverage: the candidate union must hold at least k
    // elements. Σ min(k', m_j) is monotone in k' and reaches n ≥ k at
    // k' = max m_j, so the smallest sufficient k' exists.
    let bucket_len = |j: usize| bucket_bound(n, b, j + 1) - bucket_bound(n, b, j);
    let union_size = |kp: usize| -> usize { (0..b).map(|j| bucket_len(j).min(kp)).sum() };
    while union_size(k_prime) < k {
        k_prime += 1;
    }

    let exact_mode = b == 1 || k_prime >= k;

    // Local phase: one independent device per bucket (they share no
    // state, model them as concurrent). The workspace is reused
    // sequentially — element buffers carry no device affinity.
    let mut union: Vec<T> = Vec::with_capacity(union_size(k_prime));
    let mut local_time = SimTime::ZERO;
    let mut local_levels = 0u32;
    let mut local_report: Option<SelectReport> = None;
    for j in 0..b {
        let slice = &data[bucket_bound(n, b, j)..bucket_bound(n, b, j + 1)];
        let kj = k_prime.min(slice.len());
        if kj == 0 {
            continue;
        }
        let mut bucket_device = Device::on_global_pool(device.arch().clone());
        let TopKResult {
            elements, report, ..
        } = top_k_largest_with_workspace(&mut bucket_device, slice, kj, cfg, ws)?;
        local_time = local_time.max(report.total_time);
        local_levels = local_levels.max(report.levels);
        union.extend_from_slice(&elements);
        local_report = Some(report);
    }
    debug_assert!(union.len() >= k);

    // The coordinator waited for the slowest bucket.
    device.advance_time(local_time);

    if exact_mode {
        // b = 1 (or k' ≥ k over one bucket): the single local pass IS
        // the exact answer — bit-identical to `top_k_largest`, no
        // finish pass to reorder or recompute anything.
        let report = local_report.expect("at least one non-empty bucket");
        let threshold = min_element(&union);
        return Ok(ApproxTopKResult {
            elements: union,
            threshold,
            buckets: b,
            k_prime,
            expected_recall: 1.0,
            measured_recall: None,
            local_time,
            finish_time: SimTime::ZERO,
            report,
        });
    }

    // Finish: one exact fused top-k over the candidate union.
    let TopKResult {
        elements,
        threshold,
        report: finish_report,
    } = top_k_largest_with_workspace(device, &union, k, cfg, ws)?;
    let finish_time = finish_report.total_time;

    let mut report = finish_report;
    report.algorithm = "approx-topk";
    report.n = n;
    report.levels += local_levels;
    report.total_time += local_time;

    Ok(ApproxTopKResult {
        elements,
        threshold,
        buckets: b,
        k_prime,
        expected_recall: expected_recall(k, b, k_prime),
        measured_recall: None,
        local_time,
        finish_time,
        report,
    })
}

/// [`approx_top_k_with_workspace`] on a fresh workspace.
pub fn approx_top_k_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    k: usize,
    acfg: &ApproxTopKConfig,
    cfg: &SampleSelectConfig,
) -> Result<ApproxTopKResult<T>, SelectError> {
    approx_top_k_with_workspace(device, data, k, acfg, cfg, &mut SelectWorkspace::new())
}

/// [`approx_top_k_on_device`] on a default simulated device.
pub fn approx_top_k<T: SelectElement>(
    data: &[T],
    k: usize,
    acfg: &ApproxTopKConfig,
    cfg: &SampleSelectConfig,
) -> Result<ApproxTopKResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    approx_top_k_on_device(&mut device, data, k, acfg, cfg)
}

fn min_element<T: SelectElement>(xs: &[T]) -> T {
    let mut it = xs.iter().copied();
    let first = it.next().expect("non-empty candidate set");
    it.fold(first, |m, x| if x.lt(m) { x } else { m })
}

/// Measure the recall of an approximate result against the exact top-k
/// of `data`: the multiset-intersection size (on sort keys) divided by
/// `k`. Fills `measured_recall` in and also returns it.
///
/// Host-side and O(n log n) — verification, not the serving path.
pub fn measure_recall<T: SelectElement>(data: &[T], result: &mut ApproxTopKResult<T>) -> f64 {
    let k = result.elements.len();
    if k == 0 {
        result.measured_recall = Some(1.0);
        return 1.0;
    }
    let mut keys: Vec<u64> = data.iter().map(|x| x.to_sort_key()).collect();
    keys.sort_unstable();
    let mut truth = keys.split_off(keys.len() - k);
    let mut got: Vec<u64> = result.elements.iter().map(|x| x.to_sort_key()).collect();
    got.sort_unstable();
    truth.sort_unstable();
    // Two-pointer multiset intersection.
    let (mut i, mut j, mut hits) = (0usize, 0usize, 0usize);
    while i < truth.len() && j < got.len() {
        match truth[i].cmp(&got[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                hits += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let recall = hits as f64 / k as f64;
    result.measured_recall = Some(recall);
    recall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::sort_elements;
    use crate::rng::SplitMix64;
    use crate::topk::top_k_largest_on_device;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    #[test]
    fn binomial_model_boundary_values() {
        // k' = k loses nothing; k' = 0 loses everything (up to float
        // rounding in the excess accumulation).
        assert_eq!(expected_recall(100, 8, 100), 1.0);
        assert!(expected_recall(100, 8, 0) < 1e-9);
        // One bucket keeping k' of k winners: recall = k'/k exactly.
        assert!((expected_recall(100, 1, 60) - 0.6).abs() < 1e-12);
        // k = 0 is vacuously perfect.
        assert_eq!(expected_recall(0, 8, 1), 1.0);
    }

    #[test]
    fn binomial_model_matches_direct_summation() {
        // Small case checked against a direct f64 binomial sum.
        let (k, b, kp) = (20usize, 4usize, 7usize);
        let p = 1.0 / b as f64;
        let mut direct = 0.0;
        for i in 0..=k {
            let mut choose = 1.0f64;
            for t in 0..i {
                choose *= (k - t) as f64 / (t + 1) as f64;
            }
            let pmf = choose * p.powi(i as i32) * (1.0 - p).powi((k - i) as i32);
            direct += (i.min(kp)) as f64 * pmf;
        }
        direct *= b as f64 / k as f64;
        assert!((expected_recall(k, b, kp) - direct).abs() < 1e-9);
    }

    #[test]
    fn binomial_model_survives_large_k_without_underflow() {
        // (1-p)^k underflows at this size; the log-space walk must not.
        let r = expected_recall(1_000_000, 16, 80_000);
        assert!(r > 0.9 && r <= 1.0, "recall {r} out of range");
        // More oversampling never hurts.
        let r2 = expected_recall(1_000_000, 16, 100_000);
        assert!(r2 >= r);
    }

    #[test]
    fn recall_inversion_is_minimal() {
        for &(k, b, target) in &[(1000usize, 8usize, 0.95f64), (5000, 16, 0.99), (64, 4, 0.9)] {
            let kp = k_prime_for_recall(k, b, target);
            assert!(expected_recall(k, b, kp) >= target);
            if kp > k.div_ceil(b) {
                assert!(
                    expected_recall(k, b, kp - 1) < target,
                    "k'={kp} not minimal for k={k} b={b} target={target}"
                );
            }
        }
    }

    #[test]
    fn approx_topk_meets_its_analytic_recall_on_random_data() {
        let pool = ThreadPool::new(4);
        let data = uniform(400_000, 11);
        let cfg = SampleSelectConfig::default();
        for (buckets, oversample) in [(8usize, 2.0f64), (16, 2.0), (8, 3.0)] {
            let acfg = ApproxTopKConfig {
                buckets,
                oversample,
            };
            let mut device = Device::new(v100(), &pool);
            let mut res = approx_top_k_on_device(&mut device, &data, 10_000, &acfg, &cfg).unwrap();
            assert_eq!(res.elements.len(), 10_000);
            let measured = measure_recall(&data, &mut res);
            // A single deterministic draw sits near the analytic mean;
            // allow a small concentration band below it.
            assert!(
                measured >= res.expected_recall - 0.02,
                "b={buckets} os={oversample}: measured {measured} vs expected {}",
                res.expected_recall
            );
        }
    }

    #[test]
    fn exact_mode_is_bit_identical_to_top_k_largest() {
        let pool = ThreadPool::new(2);
        let data = uniform(120_000, 5);
        let cfg = SampleSelectConfig::default();
        let acfg = ApproxTopKConfig {
            buckets: 1,
            oversample: 1.0,
        };
        for k in [1usize, 777, 60_000] {
            let mut d1 = Device::new(v100(), &pool);
            let exact = top_k_largest_on_device(&mut d1, &data, k, &cfg).unwrap();
            let mut d2 = Device::new(v100(), &pool);
            let approx = approx_top_k_on_device(&mut d2, &data, k, &acfg, &cfg).unwrap();
            let a: Vec<u32> = exact.elements.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = approx.elements.iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "k={k}: exact mode must be bit-identical");
            assert_eq!(exact.threshold.to_bits(), approx.threshold.to_bits());
            assert_eq!(approx.expected_recall, 1.0);
        }
    }

    #[test]
    fn approximate_run_beats_exact_at_large_k() {
        // The per-recursion fixed cost (launch overheads + splitter
        // sample) means the two-phase approximate run only wins once
        // the linear term dominates — i.e. at the multi-million-element
        // large-k shapes the workload targets.
        let pool = ThreadPool::new(4);
        let data = uniform(2_400_000, 3);
        let cfg = SampleSelectConfig::default();
        let k = 600_000;
        let mut d1 = Device::new(v100(), &pool);
        let exact = top_k_largest_on_device(&mut d1, &data, k, &cfg).unwrap();
        let mut d2 = Device::new(v100(), &pool);
        // Binomial concentration at this k: a bucket's true-winner
        // count has σ/mean ≈ 0.5%, so 5% oversampling already puts k'
        // ten σ above the mean — recall ≈ 1 at a fraction of the
        // candidate-union (and finish-pass) cost.
        let acfg = ApproxTopKConfig {
            buckets: 16,
            oversample: 1.05,
        };
        let mut approx = approx_top_k_on_device(&mut d2, &data, k, &acfg, &cfg).unwrap();
        assert!(
            approx.report.total_time < exact.report.total_time,
            "approx {:?} must beat exact {:?} at k = {k}",
            approx.report.total_time,
            exact.report.total_time
        );
        assert_eq!(approx.elements.len(), k);
        assert!(approx.expected_recall > 0.999);
        assert!(measure_recall(&data, &mut approx) > 0.999);
    }

    #[test]
    fn tiny_inputs_and_degenerate_shapes() {
        let cfg = SampleSelectConfig::default();
        // More buckets than elements: clamped, still exact coverage.
        let data = vec![3.0f32, 1.0, 2.0];
        let acfg = ApproxTopKConfig {
            buckets: 64,
            oversample: 1.0,
        };
        let mut res = approx_top_k(&data, 2, &acfg, &cfg).unwrap();
        let mut got: Vec<f32> = res.elements.clone();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, vec![2.0, 3.0]);
        assert_eq!(measure_recall(&data, &mut res), 1.0);
        // k = n returns everything.
        let mut res = approx_top_k(&data, 3, &acfg, &cfg).unwrap();
        let mut sorted = data.clone();
        sort_elements(&mut sorted);
        let mut got = res.elements.clone();
        sort_elements(&mut got);
        assert_eq!(got, sorted);
        assert_eq!(measure_recall(&data, &mut res), 1.0);
        // Invalid k.
        assert!(matches!(
            approx_top_k(&data, 0, &acfg, &cfg),
            Err(SelectError::RankOutOfRange { .. })
        ));
        assert!(matches!(
            approx_top_k(&data, 4, &acfg, &cfg),
            Err(SelectError::RankOutOfRange { .. })
        ));
        // Invalid knobs.
        let bad = ApproxTopKConfig {
            buckets: 0,
            oversample: 1.0,
        };
        assert!(matches!(
            approx_top_k(&data, 1, &bad, &cfg),
            Err(SelectError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn planned_config_meets_target_end_to_end() {
        let pool = ThreadPool::new(4);
        let data = uniform(300_000, 21);
        let cfg = SampleSelectConfig::default();
        let (acfg, expected) = plan_for_recall(data.len(), 20_000, 0.98);
        assert!(expected >= 0.98);
        let mut device = Device::new(v100(), &pool);
        let mut res = approx_top_k_on_device(&mut device, &data, 20_000, &acfg, &cfg).unwrap();
        let measured = measure_recall(&data, &mut res);
        assert!(
            measured >= 0.96,
            "planned shape {acfg:?} measured recall {measured}"
        );
    }
}
