//! The bitonic sorting network (§IV-D, Batcher 1968).
//!
//! The paper implements "a simple bitonic sorting kernel operating in
//! shared memory" and uses it for (1) splitter selection in
//! SampleSelect, (2) pivot selection in QuickSelect, and (3) the
//! recursion base case of both algorithms. Bitonic sorting is chosen
//! because the compare-exchange schedule is data-independent — a perfect
//! fit for lockstep warps — at the price of `O(n log² n)` comparisons
//! and one block-wide barrier per stage.
//!
//! This implementation executes the exact network (same stages, same
//! compare-exchange pairs) sequentially per simulated block and reports
//! the resource usage the block would generate: compare-exchanges,
//! barrier count (one per `j`-stage), and shared-memory traffic.

use crate::element::SelectElement;
use gpu_sim::sanitizer::{SanitizerConfig, SanitizerReport};
use gpu_sim::warp::WARP_SIZE;
use gpu_sim::{BlockExec, KernelCost, WarpSchedule};

/// Resource usage of one bitonic sort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitonicStats {
    /// Compare-exchange operations executed (padded network).
    pub compare_exchanges: u64,
    /// Compare-exchanges whose partner distance is a multiple of the
    /// 32-bank shared-memory width (j >= 32; every such stride maps both
    /// operands of neighbouring threads into the same bank — a 2-way
    /// bank conflict that doubles the shared-memory transaction count).
    pub conflicted_exchanges: u64,
    /// Block-wide barriers (`__syncthreads`) — one per inner stage.
    pub barriers: u64,
    /// Network size after padding to a power of two.
    pub padded_len: usize,
}

impl BitonicStats {
    /// Charge this sort's work to a kernel cost record.
    ///
    /// Each compare-exchange is two shared-memory reads plus up to two
    /// writes and a comparison; barriers are charged as warp intrinsics
    /// (a `__syncthreads` costs on the order of a ballot).
    pub fn charge<T: SelectElement>(&self, cost: &mut KernelCost) {
        cost.smem_bytes += self.compare_exchanges * 4 * T::BYTES as u64;
        // bank-conflicted exchanges replay their transactions once more
        cost.smem_bytes += self.conflicted_exchanges * 4 * T::BYTES as u64;
        cost.int_ops += self.compare_exchanges;
        cost.warp_intrinsics += self.barriers;
    }
}

/// Sort `data` ascending with the bitonic network, returning the
/// network statistics.
///
/// Arbitrary lengths are supported by padding (conceptually) with
/// `T::max_value()` to the next power of two; the padded lanes
/// participate in the network like real GPU threads whose elements are
/// sentinel-initialized shared-memory slots.
pub fn bitonic_sort<T: SelectElement>(data: &mut [T]) -> BitonicStats {
    bitonic_sort_with_scratch(data, &mut Vec::new())
}

/// [`bitonic_sort`] with a caller-provided padded buffer, so repeated
/// sorts (one per recursion level / query) reuse one allocation. The
/// buffer is cleared and regrown to the padded length; contents after
/// the call are unspecified.
pub fn bitonic_sort_with_scratch<T: SelectElement>(
    data: &mut [T],
    buf: &mut Vec<T>,
) -> BitonicStats {
    let n = data.len();
    if n <= 1 {
        return BitonicStats {
            compare_exchanges: 0,
            conflicted_exchanges: 0,
            barriers: 0,
            padded_len: n,
        };
    }
    let padded = n.next_power_of_two();
    buf.clear();
    buf.extend_from_slice(data);
    buf.resize(padded, T::max_value());

    let mut stats = BitonicStats {
        compare_exchanges: 0,
        conflicted_exchanges: 0,
        barriers: 0,
        padded_len: padded,
    };

    // Standard bitonic network: k = size of the bitonic sequences being
    // merged, j = compare-exchange distance within a merge step.
    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j >= 1 {
            let conflicted = j >= 32;
            for i in 0..padded {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    let a = buf[i];
                    let b = buf[partner];
                    stats.compare_exchanges += 1;
                    if conflicted {
                        stats.conflicted_exchanges += 1;
                    }
                    if b.lt(a) == ascending {
                        buf.swap(i, partner);
                    }
                }
            }
            stats.barriers += 1;
            j /= 2;
        }
        k *= 2;
    }

    data.copy_from_slice(&buf[..n]);
    stats
}

/// The same bitonic network executed thread-level on a [`BlockExec`]:
/// the conformance reference for the vectorized [`bitonic_sort`].
///
/// Each `j`-stage is one BSP phase. The pair `(i, i ^ j)` is owned by
/// the lower-indexed thread, which reads and (conditionally) writes
/// both words — every shared word has exactly one accessor per phase,
/// so the kernel is race-free under any [`WarpSchedule`] and clean
/// under the sanitizer; both properties are what the conformance suite
/// asserts.
///
/// Returns the sorted keys plus the sanitizer report when `sanitize`
/// is set.
pub fn bitonic_sort_on_block(
    values: &[u32],
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u32>, Option<SanitizerReport>) {
    let n = values.len();
    if n <= 1 {
        return (
            values.to_vec(),
            sanitize.map(|_| SanitizerReport::default()),
        );
    }
    let padded = n.next_power_of_two();
    let threads = padded.max(WARP_SIZE);
    let mut block = match sanitize {
        Some(cfg) => BlockExec::with_sanitizer(threads, padded, cfg),
        None => BlockExec::new(threads, padded),
    };
    block.set_schedule(schedule);

    // load phase: lane i owns word i (padding lanes store the sentinel)
    block.phase(|tid, b| {
        if tid < padded {
            let v = values.get(tid).copied().unwrap_or(u32::MAX);
            b.smem_write(tid, v);
        }
    });

    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j >= 1 {
            block.phase(|tid, b| {
                let partner = tid ^ j;
                if tid < padded && partner > tid {
                    let ascending = tid & k == 0;
                    let a = b.smem_read(tid);
                    let v = b.smem_read(partner);
                    if (v < a) == ascending {
                        b.smem_write(tid, v);
                        b.smem_write(partner, a);
                    }
                }
            });
            j /= 2;
        }
        k *= 2;
    }

    let sorted = block.shared()[..n].to_vec();
    let report = block.take_sanitizer_report();
    (sorted, report)
}

/// Sorting-network-based selection: sort and pick rank `k`. This is the
/// base case of both SampleSelect and QuickSelect (§IV-D).
pub fn bitonic_select<T: SelectElement>(data: &mut [T], k: usize) -> (T, BitonicStats) {
    bitonic_select_with_scratch(data, k, &mut Vec::new())
}

/// [`bitonic_select`] with a caller-provided padded sorting buffer.
pub fn bitonic_select_with_scratch<T: SelectElement>(
    data: &mut [T],
    k: usize,
    buf: &mut Vec<T>,
) -> (T, BitonicStats) {
    debug_assert!(k < data.len());
    let stats = bitonic_sort_with_scratch(data, buf);
    (data[k], stats)
}

/// Theoretical compare-exchange count of the padded network:
/// `p/2 * s * (s+1) / 2` for `p = 2^s`. Used to cross-check the
/// implementation in tests and to size cost estimates without running.
pub fn network_compare_exchanges(padded_len: usize) -> u64 {
    if padded_len <= 1 {
        return 0;
    }
    debug_assert!(padded_len.is_power_of_two());
    let s = padded_len.trailing_zeros() as u64;
    (padded_len as u64 / 2) * s * (s + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::sort_elements;
    use crate::rng::SplitMix64;

    fn is_sorted<T: SelectElement>(data: &[T]) -> bool {
        data.windows(2).all(|w| !w[1].lt(w[0]))
    }

    #[test]
    fn sorts_empty_and_singleton() {
        let mut empty: Vec<f32> = vec![];
        let stats = bitonic_sort(&mut empty);
        assert_eq!(stats.compare_exchanges, 0);
        let mut one = vec![3.0f32];
        bitonic_sort(&mut one);
        assert_eq!(one, vec![3.0]);
    }

    #[test]
    fn sorts_power_of_two_sizes() {
        let mut rng = SplitMix64::new(5);
        for exp in 1..=10 {
            let n = 1usize << exp;
            let mut data: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
            let mut expected = data.clone();
            sort_elements(&mut expected);
            bitonic_sort(&mut data);
            assert_eq!(data, expected, "n = {n}");
        }
    }

    #[test]
    fn sorts_non_power_of_two_sizes() {
        let mut rng = SplitMix64::new(17);
        for n in [3usize, 5, 7, 100, 1000, 1023] {
            let mut data: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0 - 50.0).collect();
            let mut expected = data.clone();
            sort_elements(&mut expected);
            bitonic_sort(&mut data);
            assert_eq!(data, expected, "n = {n}");
        }
    }

    #[test]
    fn sorts_with_duplicates_and_max_values() {
        // max_value() padding must not corrupt real MAX elements.
        let mut data = vec![f32::MAX, 1.0, f32::MAX, -2.0, 1.0];
        bitonic_sort(&mut data);
        assert_eq!(data, vec![-2.0, 1.0, 1.0, f32::MAX, f32::MAX]);
    }

    #[test]
    fn zero_one_principle_spot_check() {
        // The 0-1 principle: a network sorting all 0/1 sequences sorts
        // everything. Exhaustively verify all 2^10 binary inputs for
        // n = 10 (padded to 16).
        for bits in 0u32..(1 << 10) {
            let mut data: Vec<u32> = (0..10).map(|i| (bits >> i) & 1).collect();
            bitonic_sort(&mut data);
            assert!(is_sorted(&data), "failed for pattern {bits:#b}");
        }
    }

    #[test]
    fn compare_exchange_count_matches_formula() {
        for exp in 1..=8 {
            let n = 1usize << exp;
            let mut data: Vec<u32> = (0..n as u32).rev().collect();
            let stats = bitonic_sort(&mut data);
            assert_eq!(
                stats.compare_exchanges,
                network_compare_exchanges(n),
                "n = {n}"
            );
            // barriers = s*(s+1)/2 stages
            let s = exp as u64;
            assert_eq!(stats.barriers, s * (s + 1) / 2);
        }
    }

    #[test]
    fn select_returns_kth_smallest() {
        let mut rng = SplitMix64::new(23);
        let data: Vec<i32> = (0..200).map(|_| rng.next_u64() as i32 % 50).collect();
        let mut sorted = data.clone();
        sort_elements(&mut sorted);
        for k in [0usize, 1, 42, 99, 199] {
            let mut copy = data.clone();
            let (v, _) = bitonic_select(&mut copy, k);
            assert_eq!(v, sorted[k], "k = {k}");
        }
    }

    #[test]
    fn stats_charge_accumulates_cost() {
        let mut data: Vec<f32> = (0..64).map(|i| (64 - i) as f32).collect();
        let stats = bitonic_sort(&mut data);
        let mut cost = KernelCost::new();
        stats.charge::<f32>(&mut cost);
        assert_eq!(
            cost.smem_bytes,
            (stats.compare_exchanges + stats.conflicted_exchanges) * 16
        );
        assert_eq!(cost.int_ops, stats.compare_exchanges);
        assert_eq!(cost.warp_intrinsics, stats.barriers);
        // n = 64: stages with j = 32 exist, so some conflicts occur...
        assert!(stats.conflicted_exchanges > 0);
        // ...but most strides are sub-warp
        assert!(stats.conflicted_exchanges < stats.compare_exchanges / 2);
    }

    #[test]
    fn block_reference_matches_vectorized_network() {
        let mut rng = SplitMix64::new(31);
        for n in [1usize, 2, 7, 32, 100, 256] {
            let data: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
            let mut expected = data.clone();
            bitonic_sort(&mut expected);
            for schedule in [WarpSchedule::Sequential, WarpSchedule::Shuffled { seed: 3 }] {
                let (sorted, report) =
                    bitonic_sort_on_block(&data, schedule, Some(SanitizerConfig::full()));
                assert_eq!(sorted, expected, "n = {n}, schedule {schedule:?}");
                assert!(report.unwrap().is_clean());
            }
        }
    }

    #[test]
    fn small_networks_have_no_bank_conflicts() {
        // j < 32 throughout: all accesses land in distinct banks.
        let mut data: Vec<u32> = (0..32).rev().collect();
        let stats = bitonic_sort(&mut data);
        assert_eq!(stats.conflicted_exchanges, 0);
    }
}
