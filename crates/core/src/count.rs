//! The `count` kernel (§IV-B.b): classify every element into its bucket
//! via the implicit search tree, increment the bucket counter, and
//! memoize the bucket index as a one-byte *oracle*.
//!
//! Four variants are modelled, matching the paper's §IV-G / Fig. 8
//! (right): {shared, global} atomic counters × {with, without} warp
//! aggregation. The functional result (bucket counts, oracles) is
//! identical in all four; what differs is the resource usage — and with
//! it the simulated time.

use crate::element::SelectElement;
use crate::params::{AtomicScope, SampleSelectConfig};
use crate::searchtree::SearchTree;
use crate::workspace::KernelScratch;
use gpu_sim::warp::{warp_atomic_stats, WARP_SIZE};
use gpu_sim::{Device, KernelCost, LaunchOrigin};

/// Per-element bucket indexes, stored as narrowly as possible
/// ("we use a single byte to store each oracle", §IV-B; two bytes is
/// this workspace's `wide_oracles` ablation for b > 256).
#[derive(Debug, Clone)]
pub enum OracleBuf {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

impl OracleBuf {
    /// Bucket index of element `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        match self {
            OracleBuf::U8(v) => v[idx] as u32,
            OracleBuf::U16(v) => v[idx] as u32,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            OracleBuf::U8(v) => v.len(),
            OracleBuf::U16(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes one oracle occupies.
    pub fn entry_bytes(&self) -> usize {
        match self {
            OracleBuf::U8(_) => 1,
            OracleBuf::U16(_) => 2,
        }
    }

    /// The raw one-byte oracle array, when this buffer is the narrow
    /// variant (the SIMD filter path compares 32 oracle bytes per
    /// vector instruction).
    pub fn as_u8_slice(&self) -> Option<&[u8]> {
        match self {
            OracleBuf::U8(v) => Some(v),
            OracleBuf::U16(_) => None,
        }
    }
}

/// Output of one count-kernel launch.
#[derive(Debug)]
pub struct CountResult {
    /// Total elements per bucket (`n_i` of §II-A).
    pub counts: Vec<u64>,
    /// Block-local partial counts in *bucket-major* layout:
    /// `partials[bucket * blocks + block]`. The exclusive scan of this
    /// array is exactly what the `reduce` kernel produces and the
    /// `filter` kernel consumes (§IV-G: "the prefix sums from one kernel
    /// can be used in the other one").
    pub partials: Vec<u64>,
    /// Grid size that produced the partials.
    pub blocks: usize,
    /// Per-element oracles (absent in count-only / approximate mode).
    pub oracles: Option<OracleBuf>,
}

impl CountResult {
    /// Number of elements counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Run the count kernel over `data` on `device`.
///
/// `write_oracles = false` is the count-only mode used by approximate
/// selection (§V-G) — it skips the oracle store entirely ("count w.o.
/// write" in Fig. 9).
pub fn count_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    tree: &SearchTree<T>,
    cfg: &SampleSelectConfig,
    write_oracles: bool,
    origin: LaunchOrigin,
) -> CountResult {
    count_kernel_scoped(
        device,
        data,
        tree,
        cfg,
        write_oracles,
        origin,
        &KernelScratch::new(),
    )
}

/// [`count_kernel`] with caller-provided closure scratch: the per-worker
/// bucket counters and warp-collision arrays are leased from `scratch`
/// instead of freshly allocated, and the partials/oracle buffers come
/// from the device [`gpu_sim::BufferPool`] when it is armed. With a warm
/// pool + scratch, the kernel is allocation-free.
pub fn count_kernel_scoped<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    tree: &SearchTree<T>,
    cfg: &SampleSelectConfig,
    write_oracles: bool,
    origin: LaunchOrigin,
    scratch: &KernelScratch,
) -> CountResult {
    let n = data.len();
    let b = tree.num_buckets();
    let launch = cfg.launch_config(n, T::BYTES);
    let blocks = launch.blocks as usize;
    let chunk = launch.block_chunk(n);
    let height = tree.height() as u64;
    let oracle_bytes = cfg.oracle_bytes();

    let partials = device.pooled_scatter::<u64>(b * blocks, "count-partials");
    let oracle_u8 = if write_oracles && oracle_bytes == 1 {
        Some(device.pooled_scatter::<u8>(n, "count-oracles"))
    } else {
        None
    };
    let oracle_u16 = if write_oracles && oracle_bytes == 2 {
        Some(device.pooled_scatter::<u16>(n, "count-oracles"))
    } else {
        None
    };

    // One parallel pass over the grid: each simulated block classifies
    // its chunk warp by warp, with exact per-warp collision analysis.
    let partials_ref = &partials;
    let oracle_u8_ref = &oracle_u8;
    let oracle_u16_ref = &oracle_u16;
    let (mut cost, _lanes_total, distinct_total) = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        (KernelCost::new(), 0u64, 0u64),
        |range, acc| {
            let (mut cost, mut lanes_total, mut distinct_total) = acc;
            let mut local = scratch.lease_u64(b);
            let mut warp_scratch = scratch.lease_u32(b);
            let mut warp_buckets = [0u32; WARP_SIZE];
            for block in range {
                let start = block * chunk;
                let end = ((block + 1) * chunk).min(n);
                local.iter_mut().for_each(|c| *c = 0);
                if start < end {
                    let mut idx = start;
                    while idx < end {
                        let wlen = WARP_SIZE.min(end - idx);
                        // Lane-parallel descent for the whole warp (the
                        // SIMD analogue of all 32 threads walking the
                        // tree in lock-step); scalar per-element lookup
                        // when SELECT_SIMD=off.
                        tree.lookup_batch(&data[idx..idx + wlen], &mut warp_buckets[..wlen]);
                        for (lane, &bucket) in warp_buckets[..wlen].iter().enumerate() {
                            local[bucket as usize] += 1;
                            // SAFETY: each element index is owned by
                            // exactly one block chunk.
                            unsafe {
                                if let Some(o) = oracle_u8_ref {
                                    o.write(idx + lane, bucket as u8);
                                } else if let Some(o) = oracle_u16_ref {
                                    o.write(idx + lane, bucket as u16);
                                }
                            }
                        }
                        let stats = warp_atomic_stats(&warp_buckets[..wlen], &mut warp_scratch);
                        lanes_total += stats.lanes as u64;
                        distinct_total += stats.distinct as u64;
                        match cfg.atomic_scope {
                            AtomicScope::Shared => {
                                // One warp-wide atomic instruction; extra
                                // same-address replays unless aggregated.
                                cost.shared_atomic_warp_ops += 1;
                                if !cfg.warp_aggregation {
                                    cost.shared_atomic_replays +=
                                        stats.max_multiplicity.saturating_sub(1) as u64;
                                }
                            }
                            AtomicScope::Global => {
                                cost.global_atomic_ops += if cfg.warp_aggregation {
                                    stats.distinct as u64
                                } else {
                                    stats.lanes as u64
                                };
                            }
                        }
                        if cfg.warp_aggregation {
                            // Fig. 6: tree_height ballots per warp.
                            cost.warp_intrinsics += height;
                        }
                        idx += wlen;
                    }
                    let len = (end - start) as u64;
                    cost.global_read_bytes += len * T::BYTES as u64;
                    // Tree traversal: one shared-memory node read and a
                    // couple of integer ops per level per element.
                    cost.smem_bytes += len * height * T::BYTES as u64;
                    cost.int_ops += len * (2 * height + 1);
                    if write_oracles {
                        cost.global_write_bytes += len * oracle_bytes as u64;
                    }
                }
                // Store this block's partial counts (bucket-major slot).
                for (bucket, &c) in local.iter().enumerate() {
                    // SAFETY: (bucket, block) pairs are unique per block.
                    unsafe { partials_ref.write(bucket * blocks + block, c) };
                }
                if start >= end {
                    // empty tail block: zero partials already written
                    continue;
                }
                match cfg.atomic_scope {
                    AtomicScope::Shared => {
                        // Block writes its b partial counters to global
                        // memory for the reduce kernel.
                        cost.global_write_bytes += b as u64 * 4;
                    }
                    AtomicScope::Global => {
                        // Counters live in global memory already; no
                        // partial store needed.
                    }
                }
                cost.blocks += 1;
            }
            scratch.give_u64(local);
            scratch.give_u32(warp_scratch);
            (cost, lanes_total, distinct_total)
        },
        |mut a, b| {
            a.0.merge(&b.0);
            (a.0, a.1 + b.1, a.2 + b.2)
        },
    );

    // SAFETY: every (bucket, block) slot was written exactly once above.
    let partials = unsafe { partials.into_vec(b * blocks) };
    let mut counts = device.lease_vec::<u64>(b, "counts");
    counts.resize(b, 0);
    for bucket in 0..b {
        counts[bucket] = partials[bucket * blocks..(bucket + 1) * blocks]
            .iter()
            .sum();
    }

    // Same-address serialization for the global-counter variant: the
    // hottest address receives `max(counts)` increments device-wide;
    // warp aggregation reduces per-address traffic by the measured
    // dedup factor.
    if cfg.atomic_scope == AtomicScope::Global {
        let hot = counts.iter().copied().max().unwrap_or(0);
        cost.global_atomic_hot_ops = if cfg.warp_aggregation && n > 0 {
            let factor = distinct_total as f64 / n.max(1) as f64;
            (hot as f64 * factor).ceil() as u64
        } else {
            hot
        };
    }

    let name = if write_oracles {
        "count"
    } else {
        "count_nowrite"
    };
    device.commit(name, launch, origin, cost);

    let mut oracles = match (oracle_u8, oracle_u16) {
        // SAFETY: all n element slots were written exactly once.
        (Some(o), None) => Some(OracleBuf::U8(unsafe { o.into_vec(n) })),
        (None, Some(o)) => Some(OracleBuf::U16(unsafe { o.into_vec(n) })),
        _ => None,
    };

    // Give the fault injector its shot at the freshly materialized
    // buffers: the bucket histogram and the oracle array are exactly the
    // device-memory regions a real upset would hit between kernels.
    // Corruption is silent — the ABFT checks in `verify` (histogram sum,
    // filter size, rank certificate) are what catch it downstream.
    device.corrupt_region("counts", counts.as_mut_slice());
    match &mut oracles {
        Some(OracleBuf::U8(v)) => {
            device.corrupt_region("oracles", v.as_mut_slice());
        }
        Some(OracleBuf::U16(v)) => {
            device.corrupt_region("oracles", v.as_mut_slice());
        }
        None => {}
    }

    CountResult {
        counts,
        partials,
        blocks,
        oracles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use gpu_sim::arch::{k20xm, v100};
    use hpc_par::ThreadPool;

    fn tree4() -> SearchTree<f32> {
        // buckets: (-inf,10) [10,20) [20,30) [30,inf)
        SearchTree::build(&[10.0, 20.0, 30.0])
    }

    fn cfg4() -> SampleSelectConfig {
        SampleSelectConfig::default().with_buckets(4)
    }

    fn run(
        data: &[f32],
        cfg: &SampleSelectConfig,
        write_oracles: bool,
    ) -> (CountResult, gpu_sim::KernelCost) {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let res = count_kernel(
            &mut device,
            data,
            &tree4(),
            cfg,
            write_oracles,
            LaunchOrigin::Host,
        );
        let cost = device.records()[0].cost;
        (res, cost)
    }

    #[test]
    fn counts_match_reference() {
        let data = vec![5.0f32, 15.0, 25.0, 35.0, 10.0, 20.0, 30.0, 9.99];
        let (res, _) = run(&data, &cfg4(), true);
        assert_eq!(res.counts, vec![2, 2, 2, 2]);
        assert_eq!(res.total(), 8);
    }

    #[test]
    fn oracles_record_bucket_of_every_element() {
        let data = vec![5.0f32, 15.0, 25.0, 35.0];
        let (res, _) = run(&data, &cfg4(), true);
        let oracles = res.oracles.unwrap();
        assert_eq!(oracles.entry_bytes(), 1);
        assert_eq!(
            (0..4).map(|i| oracles.get(i)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn count_only_mode_skips_oracles() {
        let data = vec![5.0f32, 15.0];
        let (res, cost) = run(&data, &cfg4(), false);
        assert!(res.oracles.is_none());
        // Only the per-block partial-count store remains (b counters x
        // 4 bytes x 1 block) — no per-element oracle bytes.
        assert_eq!(cost.global_write_bytes, 4 * 4);
    }

    #[test]
    fn partials_sum_to_counts_across_blocks() {
        let mut rng = SplitMix64::new(5);
        let data: Vec<f32> = (0..100_000).map(|_| rng.next_f64() as f32 * 40.0).collect();
        let cfg = cfg4();
        let (res, _) = run(&data, &cfg, true);
        assert!(res.blocks > 1, "need a multi-block grid for this test");
        for bucket in 0..4 {
            let sum: u64 = res.partials[bucket * res.blocks..(bucket + 1) * res.blocks]
                .iter()
                .sum();
            assert_eq!(sum, res.counts[bucket]);
        }
        // reference counts
        let mut expected = vec![0u64; 4];
        for &x in &data {
            expected[tree4().lookup(x) as usize] += 1;
        }
        assert_eq!(res.counts, expected);
    }

    #[test]
    fn shared_scope_charges_shared_atomics_only() {
        let data: Vec<f32> = (0..10_000).map(|i| (i % 40) as f32).collect();
        let cfg = cfg4().with_atomic_scope(AtomicScope::Shared);
        let (_, cost) = run(&data, &cfg, true);
        assert!(cost.shared_atomic_warp_ops > 0);
        assert_eq!(cost.global_atomic_ops, 0);
        assert_eq!(cost.global_atomic_hot_ops, 0);
    }

    #[test]
    fn global_scope_charges_global_atomics_only() {
        let data: Vec<f32> = (0..10_000).map(|i| (i % 40) as f32).collect();
        let cfg = cfg4().with_atomic_scope(AtomicScope::Global);
        let (res, cost) = run(&data, &cfg, true);
        assert_eq!(cost.shared_atomic_warp_ops, 0);
        assert_eq!(
            cost.global_atomic_ops, 10_000,
            "one op per element without aggregation"
        );
        assert_eq!(
            cost.global_atomic_hot_ops,
            *res.counts.iter().max().unwrap()
        );
    }

    #[test]
    fn duplicate_heavy_input_collides_without_aggregation() {
        // d = 1: every element hits the same counter.
        let data = vec![5.0f32; 32 * 100];
        let no_agg = cfg4().with_warp_aggregation(false);
        let agg = cfg4().with_warp_aggregation(true);
        let (_, cost_no) = run(&data, &no_agg, true);
        let (_, cost_agg) = run(&data, &agg, true);
        // Without aggregation each full warp pays 31 extra same-address
        // replays; with aggregation none.
        assert_eq!(cost_no.shared_atomic_warp_ops, 100);
        assert_eq!(cost_no.shared_atomic_replays, 31 * 100);
        assert_eq!(cost_agg.shared_atomic_warp_ops, 100);
        assert_eq!(cost_agg.shared_atomic_replays, 0);
        // Aggregation pays ballots instead.
        assert_eq!(cost_no.warp_intrinsics, 0);
        assert_eq!(cost_agg.warp_intrinsics, 100 * 2); // height = log2(4) = 2
    }

    #[test]
    fn aggregation_reduces_global_hot_ops_for_duplicates() {
        let data = vec![5.0f32; 3200];
        let base = cfg4().with_atomic_scope(AtomicScope::Global);
        let (_, cost_no) = run(&data, &base.clone().with_warp_aggregation(false), true);
        let (_, cost_agg) = run(&data, &base.with_warp_aggregation(true), true);
        assert_eq!(cost_no.global_atomic_hot_ops, 3200);
        assert!(cost_agg.global_atomic_hot_ops <= 3200 / 16);
    }

    #[test]
    fn memory_traffic_accounts_reads_and_oracle_writes() {
        let data: Vec<f32> = (0..50_000).map(|i| (i % 40) as f32).collect();
        let (_, cost) = run(&data, &cfg4(), true);
        assert!(cost.global_read_bytes >= 50_000 * 4);
        // oracle store: 1 byte per element; plus per-block partial store
        assert!(cost.global_write_bytes >= 50_000);
    }

    #[test]
    fn kepler_vs_volta_shared_atomic_times_differ() {
        // The same workload on the two architectures: identical
        // functional result, very different simulated cost.
        let pool = ThreadPool::new(4);
        let mut rng = SplitMix64::new(9);
        let data: Vec<f32> = (0..200_000).map(|_| rng.next_f64() as f32 * 40.0).collect();
        let cfg = cfg4();
        let mut dk = Device::new(k20xm(), &pool);
        let mut dv = Device::new(v100(), &pool);
        let rk = count_kernel(&mut dk, &data, &tree4(), &cfg, true, LaunchOrigin::Host);
        let rv = count_kernel(&mut dv, &data, &tree4(), &cfg, true, LaunchOrigin::Host);
        assert_eq!(
            rk.counts, rv.counts,
            "functional result is arch-independent"
        );
        let tk = dk.records()[0].duration;
        let tv = dv.records()[0].duration;
        assert!(tk.as_ns() > tv.as_ns(), "K20Xm must be slower overall");
    }

    #[test]
    fn empty_tail_blocks_are_harmless() {
        // n much smaller than one block's capacity: grid has one block.
        let data = vec![1.0f32, 11.0, 21.0, 31.0];
        let (res, _) = run(&data, &cfg4(), true);
        assert_eq!(res.blocks, 1);
        assert_eq!(res.total(), 4);
    }

    #[test]
    fn wide_oracles_for_512_buckets() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let splitters: Vec<f32> = (1..512).map(|i| i as f32).collect();
        let tree = SearchTree::build(&splitters);
        let cfg = SampleSelectConfig::default()
            .with_buckets(512)
            .with_wide_oracles(true);
        let data: Vec<f32> = (0..2048).map(|i| (i % 600) as f32).collect();
        let res = count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
        let oracles = res.oracles.unwrap();
        assert_eq!(oracles.entry_bytes(), 2);
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(oracles.get(i), tree.lookup(x));
        }
    }
}
