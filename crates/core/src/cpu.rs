//! The real multithreaded CPU backend.
//!
//! Same algorithm as the simulated SampleSelect — sampled splitters,
//! implicit search tree, histogram, bucket filter, recursion with
//! equality buckets — executed for genuine wall-clock speed on host
//! threads. Per-thread local histograms play the role of shared-memory
//! counters, and the merge step plays the role of the `reduce` kernel.
//! Criterion benchmarks in the `select-bench` crate measure this
//! backend; it is also a practically useful parallel `nth_element`.

use crate::element::SelectElement;
use crate::rng::SplitMix64;
use crate::searchtree::SearchTree;
use crate::SelectError;
use gpu_sim::ScatterBuffer;
use hpc_par::ThreadPool;

/// Accumulate a slice into per-thread histogram bins via lane-parallel
/// tree descent. Chunks through a stack buffer so the warm path stays
/// allocation-free regardless of slice length.
fn histogram_slice<T: SelectElement>(tree: &SearchTree<T>, data: &[T], local: &mut [u64]) {
    const BATCH: usize = 128;
    let mut buckets = [0u32; BATCH];
    let mut i = 0;
    while i < data.len() {
        let len = (data.len() - i).min(BATCH);
        tree.lookup_batch(&data[i..i + len], &mut buckets[..len]);
        for &b in &buckets[..len] {
            local[b as usize] += 1;
        }
        i += len;
    }
}

/// Tuning knobs of the CPU backend.
#[derive(Debug, Clone)]
pub struct CpuSelectConfig {
    /// Buckets per recursion level.
    pub num_buckets: usize,
    /// Sample size = `oversampling * num_buckets`.
    pub oversampling: usize,
    /// Below this size, sort sequentially and return directly.
    pub base_case_size: usize,
    /// RNG seed for splitter sampling.
    pub seed: u64,
}

impl Default for CpuSelectConfig {
    fn default() -> Self {
        Self {
            num_buckets: 256,
            oversampling: 4,
            base_case_size: 8192,
            seed: 0xc0ffee,
        }
    }
}

/// Statistics of one CPU selection run.
#[derive(Debug, Clone, Default)]
pub struct CpuSelectStats {
    /// Recursion levels executed.
    pub levels: u32,
    /// Total elements touched across all levels (the `(1+ε)n` of §IV-A).
    pub elements_scanned: u64,
    /// Whether an equality bucket terminated the run early.
    pub terminated_early: bool,
}

/// Parallel exact selection on the host: the `rank`-th smallest element.
pub fn cpu_sample_select<T: SelectElement>(
    pool: &ThreadPool,
    data: &[T],
    rank: usize,
    cfg: &CpuSelectConfig,
) -> Result<(T, CpuSelectStats), SelectError> {
    if data.is_empty() {
        return Err(SelectError::EmptyInput);
    }
    if rank >= data.len() {
        return Err(SelectError::RankOutOfRange {
            rank,
            len: data.len(),
        });
    }
    assert!(
        cfg.num_buckets.is_power_of_two() && cfg.num_buckets >= 4,
        "bucket count must be a power of two >= 4"
    );

    let mut rng = SplitMix64::new(cfg.seed);
    let mut stats = CpuSelectStats::default();
    let mut storage: Vec<T> = Vec::new();
    let mut use_storage = false;
    let mut k = rank;

    loop {
        let cur: &[T] = if use_storage { &storage } else { data };
        let n = cur.len();
        if n <= cfg.base_case_size.max(cfg.num_buckets * cfg.oversampling) {
            let mut buf = cur.to_vec();
            let (_, kth, _) = buf.select_nth_unstable_by(k, |a, b| a.total_cmp(*b));
            return Ok((*kth, stats));
        }
        stats.levels += 1;
        stats.elements_scanned += n as u64;

        // Sample and build the splitter tree.
        let s = cfg.num_buckets * cfg.oversampling;
        let mut sample: Vec<T> = (0..s).map(|_| cur[rng.next_below(n)]).collect();
        sample.sort_unstable_by(|a, b| a.total_cmp(*b));
        let splitters: Vec<T> = (1..cfg.num_buckets)
            .map(|i| sample[i * s / cfg.num_buckets])
            .collect();
        let tree = SearchTree::build(&splitters);
        let tree_ref = &tree;

        // Pass 1: parallel histogram over per-thread local bins.
        let counts = hpc_par::parallel_histogram(pool, n, cfg.num_buckets, |range, local| {
            histogram_slice(tree_ref, &cur[range], local);
        });

        // Prefix sums -> bucket offsets; pick the bucket containing k.
        let mut offsets = counts.clone();
        let total = hpc_par::exclusive_scan(&mut offsets);
        debug_assert_eq!(total, n as u64);
        let bucket = hpc_par::scan::bucket_for_rank(&offsets, k as u64);

        if tree.is_equality_bucket(bucket) {
            stats.terminated_early = true;
            return Ok((tree.equality_value(bucket), stats));
        }

        // Pass 2: extract the target bucket with a chunked two-phase
        // write (count-per-chunk, scan, place) — same structure as the
        // GPU filter kernel. Bucket membership needs only the two
        // boundary splitters, not a full tree walk.
        let lower = tree.bucket_lower(bucket);
        let upper = tree.bucket_lower(bucket + 1);
        let in_bucket = move |x: T| -> bool {
            let above = match lower {
                Some(lo) => !x.lt(lo),
                None => true,
            };
            let below = match upper {
                Some(hi) => x.lt(hi),
                None => true,
            };
            above && below
        };

        let chunk = n.div_ceil(pool.num_threads() * 8).max(4096);
        let num_chunks = n.div_ceil(chunk);
        let mut chunk_counts = hpc_par::parallel_map_collect(pool, num_chunks, |c| {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            cur[start..end].iter().filter(|&&x| in_bucket(x)).count() as u64
        });
        let matched = hpc_par::exclusive_scan(&mut chunk_counts) as usize;
        debug_assert_eq!(matched as u64, counts[bucket]);

        let out = ScatterBuffer::<T>::new(matched);
        let out_ref = &out;
        let chunk_counts_ref = &chunk_counts;
        hpc_par::parallel_for_chunks(pool, num_chunks, 1, |chunk_range| {
            for c in chunk_range {
                let start = c * chunk;
                let end = (start + chunk).min(n);
                let mut pos = chunk_counts_ref[c];
                for &x in &cur[start..end] {
                    if in_bucket(x) {
                        // SAFETY: chunk scans assign disjoint ranges.
                        unsafe { out_ref.write(pos as usize, x) };
                        pos += 1;
                    }
                }
            }
        });
        // SAFETY: all `matched` slots written exactly once.
        let next = unsafe { out.into_vec(matched) };

        k -= offsets[bucket] as usize;
        debug_assert!(k < next.len());
        storage = next;
        use_storage = true;

        if stats.levels > 64 {
            return Err(SelectError::RecursionLimit);
        }
    }
}

/// Parallel approximate selection on the host: one histogram level,
/// returning `(value, achieved_rank)` for the splitter nearest `rank`.
pub fn cpu_approx_select<T: SelectElement>(
    pool: &ThreadPool,
    data: &[T],
    rank: usize,
    cfg: &CpuSelectConfig,
) -> Result<(T, u64), SelectError> {
    if data.is_empty() {
        return Err(SelectError::EmptyInput);
    }
    if rank >= data.len() {
        return Err(SelectError::RankOutOfRange {
            rank,
            len: data.len(),
        });
    }
    let n = data.len();
    let mut rng = SplitMix64::new(cfg.seed);
    let s = cfg.num_buckets * cfg.oversampling;
    let mut sample: Vec<T> = (0..s).map(|_| data[rng.next_below(n)]).collect();
    sample.sort_unstable_by(|a, b| a.total_cmp(*b));
    let splitters: Vec<T> = (1..cfg.num_buckets)
        .map(|i| sample[i * s / cfg.num_buckets])
        .collect();
    let tree = SearchTree::build(&splitters);
    let tree_ref = &tree;
    let counts = hpc_par::parallel_histogram(pool, n, cfg.num_buckets, |range, local| {
        histogram_slice(tree_ref, &data[range], local);
    });
    let mut offsets = counts;
    hpc_par::exclusive_scan(&mut offsets);
    let target = rank as u64;
    let (best_bucket, _) = (1..cfg.num_buckets)
        .map(|i| (i, offsets[i].abs_diff(target)))
        .min_by_key(|&(_, e)| e)
        .expect("at least one splitter");
    Ok((
        tree.bucket_lower(best_bucket).expect("splitter exists"),
        offsets[best_bucket],
    ))
}

/// Parallel top-k on the host: the `k` largest elements (unordered)
/// and the threshold value.
pub fn cpu_top_k<T: SelectElement>(
    pool: &ThreadPool,
    data: &[T],
    k: usize,
    cfg: &CpuSelectConfig,
) -> Result<(Vec<T>, T), SelectError> {
    if k == 0 || k > data.len() {
        return Err(SelectError::RankOutOfRange {
            rank: k,
            len: data.len(),
        });
    }
    let rank = data.len() - k;
    let (threshold, _) = cpu_sample_select(pool, data, rank, cfg)?;

    // Gather everything strictly above the threshold in parallel, then
    // pad with threshold-equal elements to exactly k (ties at the
    // boundary are broken arbitrarily, as in the device top-k).
    let n = data.len();
    let chunk = n.div_ceil(pool.num_threads() * 8).max(4096);
    let num_chunks = n.div_ceil(chunk);
    let mut above_counts = hpc_par::parallel_map_collect(pool, num_chunks, |c| {
        let start = c * chunk;
        let end = (start + chunk).min(n);
        data[start..end]
            .iter()
            .filter(|&&x| threshold.lt(x))
            .count() as u64
    });
    let above = hpc_par::exclusive_scan(&mut above_counts) as usize;
    debug_assert!(above <= k);

    let out = ScatterBuffer::<T>::new(above);
    let out_ref = &out;
    let above_counts_ref = &above_counts;
    hpc_par::parallel_for_chunks(pool, num_chunks, 1, |range| {
        for c in range {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            let mut pos = above_counts_ref[c];
            for &x in &data[start..end] {
                if threshold.lt(x) {
                    // SAFETY: chunk scans assign disjoint output ranges.
                    unsafe { out_ref.write(pos as usize, x) };
                    pos += 1;
                }
            }
        }
    });
    // SAFETY: all `above` slots written exactly once.
    let mut result = unsafe { out.into_vec(above) };
    result.extend(std::iter::repeat_n(threshold, k - above));
    Ok((result, threshold))
}

/// Parallel multi-rank selection on the host: values for several ranks
/// sharing one histogram pass per level (the future-work extension of
/// SS VI, host edition).
pub fn cpu_multi_select<T: SelectElement>(
    pool: &ThreadPool,
    data: &[T],
    ranks: &[usize],
    cfg: &CpuSelectConfig,
) -> Result<Vec<T>, SelectError> {
    if data.is_empty() && !ranks.is_empty() {
        return Err(SelectError::EmptyInput);
    }
    for &r in ranks {
        if r >= data.len() {
            return Err(SelectError::RankOutOfRange {
                rank: r,
                len: data.len(),
            });
        }
    }
    // Small rank sets: resolve recursively; each level's histogram is
    // shared by every rank that still maps into this segment.
    let mut results = vec![None; ranks.len()];
    let queries: Vec<(usize, usize)> = ranks.iter().copied().enumerate().collect();
    cpu_multi_rec(pool, data, queries, cfg, 0, &mut results)?;
    Ok(results.into_iter().map(|v| v.expect("resolved")).collect())
}

fn cpu_multi_rec<T: SelectElement>(
    pool: &ThreadPool,
    data: &[T],
    queries: Vec<(usize, usize)>,
    cfg: &CpuSelectConfig,
    depth: u32,
    results: &mut [Option<T>],
) -> Result<(), SelectError> {
    if queries.is_empty() {
        return Ok(());
    }
    if depth > 64 {
        return Err(SelectError::RecursionLimit);
    }
    if data.len() <= cfg.base_case_size.max(cfg.num_buckets * cfg.oversampling) {
        let mut buf = data.to_vec();
        buf.sort_unstable_by(|a, b| a.total_cmp(*b));
        for (qi, rank) in queries {
            results[qi] = Some(buf[rank]);
        }
        return Ok(());
    }
    let mut rng = SplitMix64::new(cfg.seed ^ (depth as u64) << 32);
    let s = cfg.num_buckets * cfg.oversampling;
    let mut sample: Vec<T> = (0..s).map(|_| data[rng.next_below(data.len())]).collect();
    sample.sort_unstable_by(|a, b| a.total_cmp(*b));
    let splitters: Vec<T> = (1..cfg.num_buckets)
        .map(|i| sample[i * s / cfg.num_buckets])
        .collect();
    let tree = SearchTree::build(&splitters);
    let tree_ref = &tree;
    let counts = hpc_par::parallel_histogram(pool, data.len(), cfg.num_buckets, |range, local| {
        histogram_slice(tree_ref, &data[range], local);
    });
    let mut offsets = counts;
    hpc_par::exclusive_scan(&mut offsets);

    // Group queries by bucket.
    let mut by_bucket: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
    for (qi, rank) in queries {
        let bucket = hpc_par::scan::bucket_for_rank(&offsets, rank as u64);
        match by_bucket.iter_mut().find(|(b, _)| *b == bucket) {
            Some((_, qs)) => qs.push((qi, rank)),
            None => by_bucket.push((bucket, vec![(qi, rank)])),
        }
    }
    for (bucket, qs) in by_bucket {
        if tree.is_equality_bucket(bucket) {
            let v = tree.equality_value(bucket);
            for (qi, _) in qs {
                results[qi] = Some(v);
            }
            continue;
        }
        let lower = tree.bucket_lower(bucket);
        let upper = tree.bucket_lower(bucket + 1);
        let sub: Vec<T> = data
            .iter()
            .copied()
            .filter(|&x| {
                let above = lower.is_none_or(|lo| !x.lt(lo));
                let below = upper.is_none_or(|hi| x.lt(hi));
                above && below
            })
            .collect();
        let offset = offsets[bucket] as usize;
        let qs: Vec<(usize, usize)> = qs.into_iter().map(|(qi, r)| (qi, r - offset)).collect();
        cpu_multi_rec(pool, &sub, qs, cfg, depth + 1, results)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    #[test]
    fn matches_reference_on_random_data() {
        let p = pool();
        let data = uniform(300_000, 1);
        let cfg = CpuSelectConfig::default();
        for rank in [0usize, 1, 150_000, 299_999] {
            let (v, _) = cpu_sample_select(&p, &data, rank, &cfg).unwrap();
            assert_eq!(v, reference_select(&data, rank).unwrap(), "rank {rank}");
        }
    }

    #[test]
    fn handles_duplicates_with_early_termination() {
        let p = pool();
        let mut rng = SplitMix64::new(2);
        let data: Vec<f32> = (0..200_000)
            .map(|_| (rng.next_below(4) as f32) * 3.0)
            .collect();
        let cfg = CpuSelectConfig::default();
        let (v, stats) = cpu_sample_select(&p, &data, 100_000, &cfg).unwrap();
        assert_eq!(v, reference_select(&data, 100_000).unwrap());
        assert!(stats.terminated_early);
    }

    #[test]
    fn all_equal_input() {
        let p = pool();
        let data = vec![9.5f32; 100_000];
        let (v, stats) = cpu_sample_select(&p, &data, 50_000, &CpuSelectConfig::default()).unwrap();
        assert_eq!(v, 9.5);
        assert!(stats.terminated_early);
    }

    #[test]
    fn scans_close_to_n_elements() {
        // The (1+eps)n property of §IV-A: total scanned work across all
        // levels is barely more than n.
        let p = pool();
        let data = uniform(1 << 20, 3);
        let (_, stats) =
            cpu_sample_select(&p, &data, 1 << 19, &CpuSelectConfig::default()).unwrap();
        let scanned = stats.elements_scanned as f64;
        let n = data.len() as f64;
        assert!(scanned < 1.1 * n, "scanned {scanned} vs n {n}");
    }

    #[test]
    fn integer_and_double_types() {
        let p = pool();
        let mut rng = SplitMix64::new(4);
        let ints: Vec<i64> = (0..100_000).map(|_| rng.next_u64() as i64).collect();
        let (v, _) = cpu_sample_select(&p, &ints, 70_000, &CpuSelectConfig::default()).unwrap();
        assert_eq!(v, reference_select(&ints, 70_000).unwrap());
        let doubles: Vec<f64> = (0..100_000).map(|_| rng.next_f64() - 0.5).collect();
        let (v, _) = cpu_sample_select(&p, &doubles, 99_999, &CpuSelectConfig::default()).unwrap();
        assert_eq!(v, reference_select(&doubles, 99_999).unwrap());
    }

    #[test]
    fn small_inputs_use_base_case() {
        let p = pool();
        let data = vec![3.0f32, 1.0, 2.0];
        let (v, stats) = cpu_sample_select(&p, &data, 1, &CpuSelectConfig::default()).unwrap();
        assert_eq!(v, 2.0);
        assert_eq!(stats.levels, 0);
    }

    #[test]
    fn errors() {
        let p = pool();
        let cfg = CpuSelectConfig::default();
        assert_eq!(
            cpu_sample_select::<f32>(&p, &[], 0, &cfg).unwrap_err(),
            SelectError::EmptyInput
        );
        assert!(matches!(
            cpu_sample_select(&p, &[1.0f32], 5, &cfg).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
    }

    #[test]
    fn approx_rank_is_exact_rank_of_value() {
        let p = pool();
        let data = uniform(200_000, 5);
        let (v, achieved) =
            cpu_approx_select(&p, &data, 100_000, &CpuSelectConfig::default()).unwrap();
        let true_rank = data.iter().filter(|&&x| x < v).count() as u64;
        assert_eq!(achieved, true_rank);
        assert!(achieved.abs_diff(100_000) < 20_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = pool();
        let data = uniform(150_000, 6);
        let cfg = CpuSelectConfig::default();
        let (v1, s1) = cpu_sample_select(&p, &data, 42, &cfg).unwrap();
        let (v2, s2) = cpu_sample_select(&p, &data, 42, &cfg).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(s1.levels, s2.levels);
    }

    #[test]
    fn cpu_top_k_matches_sorted_suffix() {
        let p = pool();
        let data = uniform(100_000, 10);
        for k in [1usize, 100, 50_000] {
            let (top, threshold) = cpu_top_k(&p, &data, k, &CpuSelectConfig::default()).unwrap();
            assert_eq!(top.len(), k);
            let mut sorted = data.clone();
            crate::element::sort_elements(&mut sorted);
            assert_eq!(threshold, sorted[data.len() - k]);
            let mut got: Vec<u32> = top.iter().map(|x| x.to_bits()).collect();
            let mut expected: Vec<u32> = sorted[data.len() - k..]
                .iter()
                .map(|x| x.to_bits())
                .collect();
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "k = {k}");
        }
    }

    #[test]
    fn cpu_top_k_with_boundary_ties() {
        let p = pool();
        let data = vec![1.0f32, 2.0, 2.0, 2.0, 3.0];
        let (top, threshold) = cpu_top_k(&p, &data, 3, &CpuSelectConfig::default()).unwrap();
        assert_eq!(threshold, 2.0);
        assert_eq!(top.len(), 3);
        assert!(top.contains(&3.0));
        assert_eq!(top.iter().filter(|&&x| x == 2.0).count(), 2);
    }

    #[test]
    fn cpu_multi_select_matches_reference() {
        let p = pool();
        let data = uniform(150_000, 11);
        let ranks = [0usize, 42, 75_000, 149_999];
        let values = cpu_multi_select(&p, &data, &ranks, &CpuSelectConfig::default()).unwrap();
        for (i, &r) in ranks.iter().enumerate() {
            assert_eq!(values[i], reference_select(&data, r).unwrap(), "rank {r}");
        }
    }

    #[test]
    fn cpu_multi_select_duplicate_heavy() {
        let p = pool();
        let mut rng = SplitMix64::new(12);
        let data: Vec<f32> = (0..80_000)
            .map(|_| (rng.next_below(4) as f32) * 2.0)
            .collect();
        let ranks = [0usize, 40_000, 79_999];
        let values = cpu_multi_select(&p, &data, &ranks, &CpuSelectConfig::default()).unwrap();
        for (i, &r) in ranks.iter().enumerate() {
            assert_eq!(values[i], reference_select(&data, r).unwrap());
        }
    }

    #[test]
    fn cpu_top_k_errors() {
        let p = pool();
        let data = vec![1.0f32];
        assert!(cpu_top_k(&p, &data, 0, &CpuSelectConfig::default()).is_err());
        assert!(cpu_top_k(&p, &data, 2, &CpuSelectConfig::default()).is_err());
    }
}
