//! The element trait all selection algorithms are generic over.
//!
//! The paper's SampleSelect is *purely comparison-based* (§III): kernels
//! only use the relative order of elements, never their numeric
//! magnitude. [`SelectElement`] captures exactly what the kernels need:
//! a strict weak order ([`SelectElement::lt`]), the successor operation
//! used by the equality-bucket trick (§IV-C replaces a duplicated
//! splitter `s_e` by `s_e + ε`; the tightest such ε is "next
//! representable value"), and a monotone mapping to unsigned bits that
//! the RadixSelect baseline and robustness tests use.
//!
//! # Floating-point caveats
//!
//! `f32`/`f64` implementations use a single total-order path: every NaN
//! (positive or negative, any payload) orders *above* every number, in
//! both [`SelectElement::lt`] and [`SelectElement::to_sort_key`] — the
//! two must agree or the bucket invariants break mid-recursion. Non-NaN
//! values follow the IEEE order, with `-0.0` and `0.0` comparing equal
//! under `lt` (distinct adjacent sort keys, so sorting remains
//! deterministic). Selecting from NaN-containing data is therefore
//! well-defined: NaNs occupy the top ranks. Callers who consider NaN an
//! input error instead enable [`crate::SampleSelectConfig::check_input`]
//! and get [`crate::SelectError::NanInput`] up front.

use std::fmt::Debug;

/// Element type usable by every selection algorithm in this workspace.
pub trait SelectElement: Copy + Send + Sync + Debug + 'static {
    /// Size in bytes as stored in device memory (drives the traffic and
    /// bandwidth accounting; the paper evaluates 4-byte single and
    /// 8-byte double precision).
    const BYTES: usize;
    /// Short type name used in benchmark output rows.
    const NAME: &'static str;

    /// Strict "less than" — the only comparison the kernels perform
    /// (Fig. 4, line 5: `element < tree[i]`).
    fn lt(self, other: Self) -> bool;

    /// The smallest representable value strictly greater than `self`
    /// (saturating at the maximum). This is the `+ ε` of the paper's
    /// equality-bucket construction (§IV-C).
    fn next_up(self) -> Self;

    /// The type's minimum value (used as the conceptual `s_0 = -∞`).
    fn min_value() -> Self;

    /// The type's maximum value (used as bitonic padding and `s_b = ∞`).
    fn max_value() -> Self;

    /// Monotone mapping into `u64`: `a.lt(b)` iff
    /// `a.to_sort_key() < b.to_sort_key()` for all ordered values.
    /// NaN maps above every number.
    fn to_sort_key(self) -> u64;

    /// Comparison key: like [`SelectElement::to_sort_key`] but with
    /// *exact* `lt` equivalence — `a.lt(b)` iff
    /// `a.to_lt_key() < b.to_lt_key()` with **no exceptions**. For
    /// floats this collapses `-0.0` onto `0.0` (they tie under `lt`
    /// but keep distinct adjacent sort keys), so the SIMD key-based
    /// tree descent lands in exactly the bucket the scalar
    /// `lt`-based descent would. Integer types share one key for both.
    #[inline]
    fn to_lt_key(self) -> u64 {
        self.to_sort_key()
    }

    /// Construct from an `f64` (workload generation); lossy for integer
    /// types (truncation) and out-of-range values (saturation).
    fn from_f64(v: f64) -> Self;

    /// Convert to `f64` for reporting (lossy for large 64-bit ints).
    fn to_f64(self) -> f64;

    /// Whether the value is unordered (floating-point NaN).
    fn is_nan(self) -> bool {
        false
    }

    /// Lossless bit image of the value, for serialization (checkpoint
    /// files). Unlike [`SelectElement::to_sort_key`] — which collapses
    /// all NaNs to one key — this round-trips exactly through
    /// [`SelectElement::from_bits_u64`].
    fn to_bits_u64(self) -> u64;

    /// Reconstruct a value from its [`SelectElement::to_bits_u64`]
    /// image. Bits beyond the type's width are ignored.
    fn from_bits_u64(bits: u64) -> Self;

    /// Total-order comparison derived from the sort key.
    fn total_cmp(self, other: Self) -> std::cmp::Ordering {
        self.to_sort_key().cmp(&other.to_sort_key())
    }
}

/// Map an `f32` to a `u64` key preserving the IEEE total order
/// (sign-magnitude to two's-complement-style flip). All NaNs collapse to
/// the maximum key so the key order agrees with `lt` — without the
/// normalization, a *negative* NaN's flipped bits would sort below
/// every number.
#[inline]
fn f32_key(v: f32) -> u64 {
    if v.is_nan() {
        return u32::MAX as u64;
    }
    let bits = v.to_bits();
    let flipped = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000
    };
    flipped as u64
}

#[inline]
fn f64_key(v: f64) -> u64 {
    if v.is_nan() {
        return u64::MAX;
    }
    let bits = v.to_bits();
    if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000_0000_0000
    }
}

impl SelectElement for f32 {
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    #[inline]
    fn lt(self, other: Self) -> bool {
        // NaN orders above every number (and equal to other NaNs), so
        // `lt` and the sort key induce the same total order.
        if self.is_nan() {
            false
        } else if other.is_nan() {
            true
        } else {
            self < other
        }
    }

    fn next_up(self) -> Self {
        if self == f32::MAX || self.is_nan() {
            self
        } else {
            f32::next_up(self)
        }
    }

    fn min_value() -> Self {
        f32::MIN
    }

    fn max_value() -> Self {
        f32::MAX
    }

    #[inline]
    fn to_sort_key(self) -> u64 {
        f32_key(self)
    }

    #[inline]
    fn to_lt_key(self) -> u64 {
        hpc_par::simd::lt_key_f32(self) as u64
    }

    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn is_nan(self) -> bool {
        f32::is_nan(self)
    }

    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }

    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

impl SelectElement for f64 {
    const BYTES: usize = 8;
    const NAME: &'static str = "f64";

    #[inline]
    fn lt(self, other: Self) -> bool {
        if self.is_nan() {
            false
        } else if other.is_nan() {
            true
        } else {
            self < other
        }
    }

    fn next_up(self) -> Self {
        if self == f64::MAX || self.is_nan() {
            self
        } else {
            f64::next_up(self)
        }
    }

    fn min_value() -> Self {
        f64::MIN
    }

    fn max_value() -> Self {
        f64::MAX
    }

    #[inline]
    fn to_sort_key(self) -> u64 {
        f64_key(self)
    }

    #[inline]
    fn to_lt_key(self) -> u64 {
        hpc_par::simd::lt_key_f64(self)
    }

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }

    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }

    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

macro_rules! impl_unsigned {
    ($t:ty, $name:literal) => {
        impl SelectElement for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            #[inline]
            fn lt(self, other: Self) -> bool {
                self < other
            }

            fn next_up(self) -> Self {
                self.saturating_add(1)
            }

            fn min_value() -> Self {
                <$t>::MIN
            }

            fn max_value() -> Self {
                <$t>::MAX
            }

            #[inline]
            fn to_sort_key(self) -> u64 {
                self as u64
            }

            fn from_f64(v: f64) -> Self {
                if v <= 0.0 {
                    0
                } else if v >= <$t>::MAX as f64 {
                    <$t>::MAX
                } else {
                    v as $t
                }
            }

            fn to_f64(self) -> f64 {
                self as f64
            }

            fn to_bits_u64(self) -> u64 {
                self as u64
            }

            fn from_bits_u64(bits: u64) -> Self {
                bits as $t
            }
        }
    };
}

impl_unsigned!(u32, "u32");
impl_unsigned!(u64, "u64");

macro_rules! impl_signed {
    ($t:ty, $u:ty, $name:literal) => {
        impl SelectElement for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            #[inline]
            fn lt(self, other: Self) -> bool {
                self < other
            }

            fn next_up(self) -> Self {
                self.saturating_add(1)
            }

            fn min_value() -> Self {
                <$t>::MIN
            }

            fn max_value() -> Self {
                <$t>::MAX
            }

            #[inline]
            fn to_sort_key(self) -> u64 {
                // Flip the sign bit so the unsigned order matches.
                ((self as $u) ^ (1 << (<$t>::BITS - 1))) as u64
            }

            fn from_f64(v: f64) -> Self {
                if v <= <$t>::MIN as f64 {
                    <$t>::MIN
                } else if v >= <$t>::MAX as f64 {
                    <$t>::MAX
                } else {
                    v as $t
                }
            }

            fn to_f64(self) -> f64 {
                self as f64
            }

            fn to_bits_u64(self) -> u64 {
                self as $u as u64
            }

            fn from_bits_u64(bits: u64) -> Self {
                bits as $u as $t
            }
        }
    };
}

impl_signed!(i32, u32, "i32");
impl_signed!(i64, u64, "i64");

// ---------------------------------------------------------------------
// Batched key conversion (SIMD support)
// ---------------------------------------------------------------------
//
// The lane-parallel kernels in `hpc_par::simd` operate on unsigned
// keys, so the per-warp hot loops first map a small run of elements
// into a stack buffer of keys. The fills below dispatch on the concrete
// element type: floats take the explicit-SIMD converters (their key
// transform carries NaN/sign branches), while integer key transforms
// are a copy or sign-bit XOR that LLVM autovectorizes on its own.

use hpc_par::simd::SimdLevel;
use std::any::TypeId;

fn is_type<T: 'static, U: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<U>()
}

/// Reinterpret a 4-byte element slice as its raw `u32` bit images.
/// Panics (debug) if `T::BYTES != 4`.
#[inline]
pub fn as_bits32<T: SelectElement>(src: &[T]) -> &[u32] {
    debug_assert_eq!(std::mem::size_of::<T>(), 4);
    // SAFETY: T is Copy with size 4 and alignment <= 4 for every
    // SelectElement impl in this workspace (f32/u32/i32); u32 has no
    // invalid bit patterns.
    unsafe { std::slice::from_raw_parts(src.as_ptr() as *const u32, src.len()) }
}

/// Reinterpret an 8-byte element slice as its raw `u64` bit images.
#[inline]
pub fn as_bits64<T: SelectElement>(src: &[T]) -> &[u64] {
    debug_assert_eq!(std::mem::size_of::<T>(), 8);
    // SAFETY: as `as_bits32`, for the 8-byte impls (f64/u64/i64).
    unsafe { std::slice::from_raw_parts(src.as_ptr() as *const u64, src.len()) }
}

/// Inverse of [`as_bits32`]: view raw `u32` bit images as elements.
#[inline]
pub fn elems_from_bits32<T: SelectElement>(bits: &[u32]) -> &[T] {
    debug_assert_eq!(std::mem::size_of::<T>(), 4);
    // SAFETY: every 4-byte SelectElement impl (f32/u32/i32) accepts any
    // bit pattern; alignment of T is <= 4.
    unsafe { std::slice::from_raw_parts(bits.as_ptr() as *const T, bits.len()) }
}

/// Inverse of [`as_bits64`].
#[inline]
pub fn elems_from_bits64<T: SelectElement>(bits: &[u64]) -> &[T] {
    debug_assert_eq!(std::mem::size_of::<T>(), 8);
    // SAFETY: as `elems_from_bits32`, for f64/u64/i64.
    unsafe { std::slice::from_raw_parts(bits.as_ptr() as *const T, bits.len()) }
}

/// `dst[i] = src[i].to_lt_key() as u32`, for 4-byte element types
/// (their keys fit 32 bits). SIMD for `f32` when the level allows.
#[inline]
pub fn fill_lt_keys32<T: SelectElement>(src: &[T], dst: &mut [u32], level: SimdLevel) {
    debug_assert_eq!(T::BYTES, 4);
    if is_type::<T, f32>() {
        // SAFETY: T is f32 (checked by TypeId).
        let fsrc = unsafe { std::slice::from_raw_parts(src.as_ptr() as *const f32, src.len()) };
        hpc_par::simd::lt_keys_f32(fsrc, dst, level);
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_lt_key() as u32;
    }
}

/// `dst[i] = src[i].to_lt_key()`. SIMD for `f64` when the level allows.
#[inline]
pub fn fill_lt_keys64<T: SelectElement>(src: &[T], dst: &mut [u64], level: SimdLevel) {
    if is_type::<T, f64>() {
        // SAFETY: T is f64 (checked by TypeId).
        let fsrc = unsafe { std::slice::from_raw_parts(src.as_ptr() as *const f64, src.len()) };
        hpc_par::simd::lt_keys_f64(fsrc, dst, level);
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_lt_key();
    }
}

/// `dst[i] = src[i].to_sort_key() as u32`, for 4-byte element types.
/// SIMD for `f32` when the level allows.
#[inline]
pub fn fill_sort_keys32<T: SelectElement>(src: &[T], dst: &mut [u32], level: SimdLevel) {
    debug_assert_eq!(T::BYTES, 4);
    if is_type::<T, f32>() {
        // SAFETY: T is f32 (checked by TypeId).
        let fsrc = unsafe { std::slice::from_raw_parts(src.as_ptr() as *const f32, src.len()) };
        hpc_par::simd::sort_keys_f32(fsrc, dst, level);
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_sort_key() as u32;
    }
}

/// `dst[i] = src[i].to_sort_key()`. SIMD for `f64` when the level allows.
#[inline]
pub fn fill_sort_keys64<T: SelectElement>(src: &[T], dst: &mut [u64], level: SimdLevel) {
    if is_type::<T, f64>() {
        // SAFETY: T is f64 (checked by TypeId).
        let fsrc = unsafe { std::slice::from_raw_parts(src.as_ptr() as *const f64, src.len()) };
        hpc_par::simd::sort_keys_f64(fsrc, dst, level);
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_sort_key();
    }
}

/// Sort a slice by the element order (reference implementation used by
/// base cases and tests; unstable, O(n log n)).
pub fn sort_elements<T: SelectElement>(data: &mut [T]) {
    data.sort_unstable_by(|a, b| a.total_cmp(*b));
}

/// Reference selection: the rank-`k` element by full sort
/// (`std` `select_nth_unstable_by` — the paper validates against C++
/// `std::nth_element`, this is the Rust equivalent).
pub fn reference_select<T: SelectElement>(data: &[T], k: usize) -> Option<T> {
    if k >= data.len() {
        return None;
    }
    let mut copy = data.to_vec();
    let (_, kth, _) = copy.select_nth_unstable_by(k, |a, b| a.total_cmp(*b));
    Some(*kth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_key_preserves_order() {
        let values = [
            f32::MIN,
            -1.0e30,
            -2.5,
            -0.0,
            0.0,
            1e-30,
            1.0,
            2.5,
            1e30,
            f32::MAX,
        ];
        for w in values.windows(2) {
            assert!(
                w[0].to_sort_key() <= w[1].to_sort_key(),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // -0.0 and 0.0 are distinct keys but adjacent; both orders of
        // lt() are false.
        assert!(!(-0.0f32).lt(0.0));
        assert!(!0.0f32.lt(-0.0));
    }

    #[test]
    fn f64_key_preserves_order() {
        let values = [f64::MIN, -1.0, -1e-300, 0.0, 1e-300, 1.0, f64::MAX];
        for w in values.windows(2) {
            assert!(w[0].to_sort_key() < w[1].to_sort_key());
        }
    }

    #[test]
    fn nan_sorts_above_everything() {
        assert!(f32::NAN.to_sort_key() > f32::MAX.to_sort_key());
        assert!(f64::NAN.to_sort_key() > f64::MAX.to_sort_key());
        assert!(f32::NAN.is_nan());
        assert!(!1.0f32.is_nan());
    }

    #[test]
    fn all_nans_share_one_key_above_max() {
        // negative NaN, positive NaN, signaling-payload NaN: one key
        let neg_nan = f32::from_bits(0xFFC0_0001);
        let payload_nan = f32::from_bits(0x7F80_0001);
        assert!(neg_nan.is_nan() && payload_nan.is_nan());
        assert_eq!(neg_nan.to_sort_key(), f32::NAN.to_sort_key());
        assert_eq!(payload_nan.to_sort_key(), f32::NAN.to_sort_key());
        assert!(neg_nan.to_sort_key() > f32::MAX.to_sort_key());

        let neg_nan64 = f64::from_bits(0xFFF8_0000_0000_0001);
        assert!(neg_nan64.is_nan());
        assert_eq!(neg_nan64.to_sort_key(), f64::NAN.to_sort_key());
        assert!(neg_nan64.to_sort_key() > f64::MAX.to_sort_key());
    }

    #[test]
    fn lt_agrees_with_sort_key_on_nan() {
        let neg_nan = f32::from_bits(0xFFC0_0001);
        for nan in [f32::NAN, neg_nan] {
            assert!(!nan.lt(f32::MAX), "NaN is not below any number");
            assert!(!nan.lt(nan), "NaN ties with NaN");
            assert!(f32::MAX.lt(nan), "every number is below NaN");
            assert!((-1.0f32).lt(nan));
        }
        assert!(!f64::NAN.lt(f64::MAX));
        assert!(f64::MAX.lt(f64::NAN));
        // lt and the key order must agree pairwise across classes
        // (excluding the -0.0/0.0 pair, which intentionally ties under
        // lt while keeping distinct adjacent keys)
        let values = [neg_nan, -1.0f32, 0.0, 1.0, f32::MAX, f32::NAN];
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    a.lt(b),
                    a.to_sort_key() < b.to_sort_key(),
                    "lt/key disagree on {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn selection_from_nan_containing_data_is_well_defined() {
        let data = vec![3.0f32, f32::NAN, 1.0, f32::from_bits(0xFFC0_0001), 2.0];
        assert_eq!(reference_select(&data, 0), Some(1.0));
        assert_eq!(reference_select(&data, 1), Some(2.0));
        assert_eq!(reference_select(&data, 2), Some(3.0));
        // NaNs occupy the top ranks
        assert!(reference_select(&data, 3).unwrap().is_nan());
        assert!(reference_select(&data, 4).unwrap().is_nan());
    }

    #[test]
    fn signed_key_preserves_order() {
        let values = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for w in values.windows(2) {
            assert!(w[0].to_sort_key() < w[1].to_sort_key());
        }
        let values64 = [i64::MIN, -1, 0, 1, i64::MAX];
        for w in values64.windows(2) {
            assert!(w[0].to_sort_key() < w[1].to_sort_key());
        }
    }

    #[test]
    fn next_up_is_tight_successor() {
        // float: nothing fits between x and next_up(x)
        let x = 1.5f32;
        let y = SelectElement::next_up(x);
        assert!(x.lt(y));
        assert_eq!(y.to_bits(), x.to_bits() + 1);
        // integers
        assert_eq!(SelectElement::next_up(5u32), 6);
        assert_eq!(SelectElement::next_up(-1i32), 0);
        // saturation at the top
        assert_eq!(SelectElement::next_up(u32::MAX), u32::MAX);
        assert_eq!(SelectElement::next_up(f32::MAX), f32::MAX);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(u32::from_f64(-5.0), 0);
        assert_eq!(u32::from_f64(1e20), u32::MAX);
        assert_eq!(i32::from_f64(-1e20), i32::MIN);
        assert_eq!(i32::from_f64(42.9), 42);
    }

    #[test]
    fn reference_select_matches_sorting() {
        let data = vec![5.0f32, 1.0, 4.0, 1.0, 3.0];
        let mut sorted = data.clone();
        sort_elements(&mut sorted);
        for (k, &expected) in sorted.iter().enumerate() {
            assert_eq!(reference_select(&data, k), Some(expected));
        }
        assert_eq!(reference_select(&data, 5), None);
        assert_eq!(reference_select::<f32>(&[], 0), None);
    }

    #[test]
    fn bits_roundtrip_is_lossless() {
        // NaN payloads and -0.0 survive, unlike to_sort_key
        for v in [1.5f32, -0.0, f32::NAN, f32::from_bits(0xFFC0_0001)] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
        for v in [-2.5f64, f64::NAN, f64::MIN] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
        for v in [0u32, 42, u32::MAX] {
            assert_eq!(u32::from_bits_u64(v.to_bits_u64()), v);
        }
        for v in [i64::MIN, -1, 0, i64::MAX] {
            assert_eq!(i64::from_bits_u64(v.to_bits_u64()), v);
        }
        for v in [i32::MIN, -7, i32::MAX] {
            assert_eq!(i32::from_bits_u64(v.to_bits_u64()), v);
        }
    }

    #[test]
    fn bytes_constants_match_size_of() {
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(u32::BYTES, 4);
        assert_eq!(i64::BYTES, 8);
    }
}
