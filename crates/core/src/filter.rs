//! The `filter` kernel (§IV-B.c): extract the elements of the target
//! bucket (or, fused top-k, of a whole bucket range) into contiguous
//! storage, using the oracles and the reduce kernel's prefix sums.
//!
//! Following §IV-G, this is the *second pass* of the two-pass counter
//! scheme: each block already knows (from the scanned partials) the
//! exact output range it owns per bucket, so a block-local counter
//! suffices to hand out unique output indexes — no global collisions.
//! The implementation follows \[13\] (Bakunas-Milanowski et al.) "but
//! differs in the sense that instead of storing predicate bits as an
//! intermediate step, it stores the bucket indexes in the oracles".

use crate::count::CountResult;
use crate::element::{as_bits32, as_bits64, elems_from_bits32, elems_from_bits64, SelectElement};
use crate::params::{AtomicScope, SampleSelectConfig};
use crate::reduce::ReduceResult;
use crate::workspace::KernelScratch;
use gpu_sim::warp::WARP_SIZE;
use gpu_sim::{Device, KernelCost, LaunchOrigin};
use hpc_par::simd::{self, SimdLevel};
use std::ops::Range;

/// Extract all elements whose bucket lies in `bucket_range` into a
/// contiguous `Vec`, ordered by (bucket, block, within-block position).
///
/// For exact selection the range is a single bucket; for the fused
/// top-k of §IV-I it is the suffix `target..b` ("it copies not only
/// elements from the target bucket, but also from all buckets containing
/// larger elements").
pub fn filter_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    count: &CountResult,
    reduce: &ReduceResult,
    bucket_range: Range<u32>,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> Vec<T> {
    filter_kernel_scoped(
        device,
        data,
        count,
        reduce,
        bucket_range,
        cfg,
        origin,
        &KernelScratch::new(),
    )
}

/// [`filter_kernel`] with caller-provided closure scratch: per-worker
/// output cursors come from `scratch` and the output buffer from the
/// device [`gpu_sim::BufferPool`] when armed, making a warm launch
/// allocation-free (the returned `Vec` reuses a pooled allocation that
/// the driver recycles after consuming it).
#[allow(clippy::too_many_arguments)]
pub fn filter_kernel_scoped<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    count: &CountResult,
    reduce: &ReduceResult,
    bucket_range: Range<u32>,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
    scratch: &KernelScratch,
) -> Vec<T> {
    let n = data.len();
    let oracles = count
        .oracles
        .as_ref()
        .expect("filter kernel requires oracles from the count kernel");
    assert_eq!(oracles.len(), n, "oracle buffer must cover the input");
    let blocks = count.blocks;
    let launch = cfg.launch_config(n, T::BYTES);
    debug_assert_eq!(
        launch.blocks as usize, blocks,
        "filter reuses the count grid"
    );
    let chunk = launch.block_chunk(n);

    let range_base = reduce.bucket_offsets[bucket_range.start as usize];
    let range_end = reduce.bucket_offsets[bucket_range.end as usize];
    let out_len = (range_end - range_base) as usize;
    let out = device.pooled_scatter::<T>(out_len, "filter-out");
    let out_ref = &out;
    let lo = bucket_range.start;
    let hi = bucket_range.end;

    // Single-bucket ranges with one-byte oracles (every exact-selection
    // level) take a lane-parallel fast path: one vector compare over 32
    // oracle bytes, then a stable left-pack of the matching elements
    // through a per-warp staging buffer, flushed to the scatter buffer
    // at its exact size. The staging hop is what keeps the write-once
    // contract: the AVX2 compress scribbles a full vector past the
    // packed prefix, and the block's output range may end mid-warp with
    // the next block's range being written concurrently.
    let simd_level = simd::simd_level();
    let simd_single = simd_level != SimdLevel::Off
        && hi - lo == 1
        && oracles.as_u8_slice().is_some()
        && lo <= u8::MAX as u32;

    let (mut cost, oracle_mismatches) = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        (KernelCost::new(), 0u64),
        |range, acc| {
            let (mut cost, mut mismatches) = acc;
            let mut cursors = scratch.lease_u64((hi - lo) as usize);
            let oracle_bytes = oracles.as_u8_slice();
            let mut staging32 = [0u32; WARP_SIZE];
            let mut staging64 = [0u64; WARP_SIZE];
            for block in range {
                let start = block * chunk;
                let end = ((block + 1) * chunk).min(n);
                if start >= end {
                    continue;
                }
                cursors.iter_mut().for_each(|c| *c = 0);
                let mut matched_in_block = 0u64;
                let mut idx = start;
                while idx < end {
                    let wlen = WARP_SIZE.min(end - idx);
                    let mut matched_in_warp = 0u64;
                    let mut handled = false;
                    if simd_single && wlen == WARP_SIZE {
                        let bytes = &oracle_bytes.unwrap()[idx..idx + WARP_SIZE];
                        let mask = simd::eq_mask_u8(bytes, lo as u8, simd_level);
                        let matched = mask.count_ones() as u64;
                        if matched == 0 {
                            handled = true;
                        } else if cursors[0] + matched
                            <= count.partials[lo as usize * blocks + block]
                        {
                            // Healthy warp: compress the matches in
                            // element order and flush them contiguously
                            // after the block's previous matches.
                            let pos = (reduce.offsets[lo as usize * blocks + block] - range_base
                                + cursors[0]) as usize;
                            if T::BYTES == 4 {
                                let cnt = simd::compress_u32(
                                    as_bits32(&data[idx..idx + WARP_SIZE]),
                                    mask,
                                    &mut staging32,
                                    simd_level,
                                );
                                // SAFETY: the run [pos, pos+cnt) lies in
                                // this (bucket, block) output range (the
                                // cursor bound above), owned by this
                                // thread alone.
                                unsafe {
                                    out_ref
                                        .write_slice(pos, elems_from_bits32::<T>(&staging32[..cnt]))
                                };
                            } else {
                                let cnt = simd::compress_u64(
                                    as_bits64(&data[idx..idx + WARP_SIZE]),
                                    mask,
                                    &mut staging64,
                                    simd_level,
                                );
                                // SAFETY: as above.
                                unsafe {
                                    out_ref
                                        .write_slice(pos, elems_from_bits64::<T>(&staging64[..cnt]))
                                };
                            }
                            cursors[0] += matched;
                            matched_in_warp = matched;
                            handled = true;
                        }
                        // else: the cursor bound says a corrupted oracle
                        // routed extra elements into this block's range;
                        // fall through to the scalar loop, which drops
                        // and flags overflowing matches lane by lane.
                    }
                    if !handled {
                        for lane in 0..wlen {
                            let bucket = oracles.get(idx + lane);
                            if (lo..hi).contains(&bucket) {
                                let rel = (bucket - lo) as usize;
                                // A corrupted oracle can route extra elements
                                // into this (bucket, block) range; writing past
                                // the range allotted by the prefix sums would
                                // violate the scatter buffer's write-once
                                // contract, so overflowing matches are dropped
                                // and flagged instead.
                                if cursors[rel] >= count.partials[bucket as usize * blocks + block]
                                {
                                    mismatches += 1;
                                    matched_in_warp += 1;
                                    continue;
                                }
                                let pos = reduce.offsets[bucket as usize * blocks + block]
                                    - range_base
                                    + cursors[rel];
                                cursors[rel] += 1;
                                // SAFETY: the two-pass scheme assigns each
                                // output slot to exactly one (block, bucket,
                                // local-rank) triple; the bound check above
                                // keeps that true even under corrupted
                                // oracles.
                                unsafe { out_ref.write(pos as usize, data[idx + lane]) };
                                matched_in_warp += 1;
                            }
                        }
                    }
                    // Index handout: one counter bump per matching lane;
                    // all matching lanes of a warp share the counter, so
                    // unaggregated replays equal the match count.
                    if matched_in_warp > 0 {
                        match cfg.atomic_scope {
                            AtomicScope::Shared => {
                                cost.shared_atomic_warp_ops += 1;
                                if !cfg.warp_aggregation {
                                    // all matching lanes bump one counter
                                    cost.shared_atomic_replays += matched_in_warp - 1;
                                }
                            }
                            AtomicScope::Global => {
                                let units = if cfg.warp_aggregation {
                                    1
                                } else {
                                    matched_in_warp
                                };
                                cost.global_atomic_ops += units;
                                cost.global_atomic_hot_ops += units;
                            }
                        }
                        if cfg.warp_aggregation {
                            cost.warp_intrinsics += 1; // one ballot to rank lanes
                        }
                    }
                    matched_in_block += matched_in_warp;
                    idx += wlen;
                }
                // A corrupted oracle can also *remove* elements from a
                // (bucket, block) range, leaving output slots unwritten;
                // detect the shortfall so the scatter buffer is never
                // finalized with uninitialized slots.
                for (rel, &cursor) in cursors.iter().enumerate().take((hi - lo) as usize) {
                    let bucket = lo as usize + rel;
                    if cursor != count.partials[bucket * blocks + block] {
                        mismatches += 1;
                    }
                }
                let len = (end - start) as u64;
                // Oracles are streamed coalesced; the matching elements
                // are gathered sparsely (uncoalesced) and written
                // contiguously (coalesced).
                cost.global_read_bytes += len * oracles.entry_bytes() as u64;
                cost.uncoalesced_bytes += matched_in_block * T::BYTES as u64;
                cost.global_write_bytes += matched_in_block * T::BYTES as u64;
                cost.int_ops += len;
                cost.blocks += 1;
            }
            scratch.give_u64(cursors);
            (cost, mismatches)
        },
        |mut a, b| {
            a.0.merge(&b.0);
            a.1 += b.1;
            a
        },
    );
    // Each block also reads its per-bucket offsets for the range.
    cost.global_read_bytes += (blocks as u64) * (hi - lo) as u64 * 4;

    device.commit("filter", launch, origin, cost);

    if oracle_mismatches > 0 {
        // The scatter buffer may hold unwritten slots, so finalizing it
        // would be undefined behaviour. Rebuild the output with a safe
        // sequential gather over the (corrupted) oracles; the length (or
        // content) discrepancy is then caught by the ABFT checks in the
        // recursion driver.
        return data
            .iter()
            .enumerate()
            .filter(|&(i, _)| (lo..hi).contains(&oracles.get(i)))
            .map(|(_, &x)| x)
            .collect();
    }

    // SAFETY: cursor arithmetic wrote each of the out_len slots exactly
    // once (verified by the partition tests below), and
    // `oracle_mismatches == 0` certifies every (block, bucket) range was
    // filled to exactly its expected count.
    unsafe { out.into_vec(out_len) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_kernel;
    use crate::rng::SplitMix64;
    use crate::searchtree::SearchTree;
    use gpu_sim::arch::v100;
    use hpc_par::ThreadPool;

    fn pipeline(
        data: &[f32],
        cfg: &SampleSelectConfig,
        bucket_range: Range<u32>,
    ) -> (Vec<f32>, CountResult, ReduceResult) {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let tree = SearchTree::build(&[10.0f32, 20.0, 30.0]);
        let count = count_kernel(&mut device, data, &tree, cfg, true, LaunchOrigin::Host);
        let red = crate::reduce::reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        let out = filter_kernel(
            &mut device,
            data,
            &count,
            &red,
            bucket_range,
            cfg,
            LaunchOrigin::Device,
        );
        (out, count, red)
    }

    fn cfg4() -> SampleSelectConfig {
        SampleSelectConfig::default().with_buckets(4)
    }

    #[test]
    fn extracts_exactly_the_target_bucket() {
        let data = vec![5.0f32, 15.0, 25.0, 35.0, 12.0, 22.0, 19.0];
        let (out, count, _) = pipeline(&data, &cfg4(), 1..2);
        assert_eq!(out.len() as u64, count.counts[1]);
        let mut expected: Vec<f32> = data
            .iter()
            .copied()
            .filter(|&x| (10.0..20.0).contains(&x))
            .collect();
        let mut got = out.clone();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_block_extraction_is_a_permutation() {
        let mut rng = SplitMix64::new(8);
        let data: Vec<f32> = (0..200_000).map(|_| rng.next_f64() as f32 * 40.0).collect();
        let (out, count, _) = pipeline(&data, &cfg4(), 2..3);
        assert!(count.blocks > 1);
        let mut expected: Vec<u32> = data
            .iter()
            .filter(|&&x| (20.0..30.0).contains(&x))
            .map(|x| x.to_bits())
            .collect();
        let mut got: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(
            got, expected,
            "filter output must be a permutation of the bucket"
        );
    }

    #[test]
    fn suffix_range_supports_fused_topk() {
        let data = vec![5.0f32, 15.0, 25.0, 35.0, 12.0, 38.0];
        let (out, _, _) = pipeline(&data, &cfg4(), 2..4);
        let mut got = out.clone();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, vec![25.0, 35.0, 38.0]);
    }

    #[test]
    fn empty_bucket_yields_empty_output() {
        let data = vec![5.0f32, 6.0, 7.0]; // everything in bucket 0
        let (out, _, _) = pipeline(&data, &cfg4(), 3..4);
        assert!(out.is_empty());
    }

    #[test]
    fn filter_charges_oracle_stream_and_sparse_gathers() {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let tree = SearchTree::build(&[10.0f32, 20.0, 30.0]);
        let cfg = cfg4();
        let data: Vec<f32> = (0..10_000).map(|i| (i % 40) as f32).collect();
        let count = count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
        let red = crate::reduce::reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        let out = filter_kernel(
            &mut device,
            &data,
            &count,
            &red,
            1..2,
            &cfg,
            LaunchOrigin::Device,
        );
        let rec = device
            .records()
            .iter()
            .find(|r| r.name == "filter")
            .unwrap();
        assert!(rec.cost.global_read_bytes >= 10_000, "oracle stream");
        assert_eq!(rec.cost.uncoalesced_bytes, out.len() as u64 * 4);
        assert_eq!(rec.cost.global_write_bytes, out.len() as u64 * 4);
        assert!(rec.cost.shared_atomic_warp_ops > 0);
    }

    #[test]
    fn global_scope_filter_uses_global_atomics() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let tree = SearchTree::build(&[10.0f32, 20.0, 30.0]);
        let cfg = cfg4().with_atomic_scope(AtomicScope::Global);
        let data: Vec<f32> = (0..5_000).map(|i| (i % 40) as f32).collect();
        let count = count_kernel(&mut device, &data, &tree, &cfg, true, LaunchOrigin::Host);
        let red = crate::reduce::reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        filter_kernel(
            &mut device,
            &data,
            &count,
            &red,
            0..1,
            &cfg,
            LaunchOrigin::Device,
        );
        let rec = device
            .records()
            .iter()
            .find(|r| r.name == "filter")
            .unwrap();
        assert!(rec.cost.global_atomic_ops > 0);
        assert_eq!(rec.cost.shared_atomic_warp_ops, 0);
    }

    #[test]
    #[should_panic(expected = "requires oracles")]
    fn filter_without_oracles_panics() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let tree = SearchTree::build(&[10.0f32, 20.0, 30.0]);
        let cfg = cfg4();
        let data = vec![1.0f32, 2.0];
        // count-only mode: no oracles
        let count = count_kernel(&mut device, &data, &tree, &cfg, false, LaunchOrigin::Host);
        let red = crate::reduce::reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        filter_kernel(
            &mut device,
            &data,
            &count,
            &red,
            0..1,
            &cfg,
            LaunchOrigin::Device,
        );
    }
}
