//! Per-run instrumentation: everything needed to reproduce the paper's
//! measurements (throughput plots of Fig. 7/8, the per-kernel runtime
//! breakdown of Fig. 9) from a single selection run.

use gpu_sim::{KernelRecord, KernelSummary, SimTime};

/// What the resilience layer had to do to produce a result: every
/// retry, algorithm fallback, and accuracy degradation, in order.
///
/// Deterministic by construction — the fault injector is seed-driven and
/// the drivers consume faults in execution order, so the same seed
/// produces the same event log (the property the robustness tests pin).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceEvents {
    /// Retries of a failed step (kernel launch or chunk load).
    pub retries: u32,
    /// Switches to a different backend (SampleSelect → QuickSelect →
    /// CPU sort).
    pub fallbacks: u32,
    /// Exact→approximate degradations under a time budget.
    pub degradations: u32,
    /// Device faults observed (some may be absorbed by a single retry).
    pub faults_observed: u32,
    /// Silent data corruptions caught by an ABFT invariant or rank
    /// certificate (see [`crate::verify`]).
    pub corruptions_detected: u32,
    /// Final answers that passed an exact rank certificate.
    pub certified: u32,
    /// Streaming runs resumed from a checkpoint instead of restarting.
    pub resumed: u32,
    /// Human-readable event log, one entry per resilience action.
    pub log: Vec<String>,
}

impl ResilienceEvents {
    /// Record a retry, with a reason line for the log.
    pub fn retry(&mut self, detail: impl Into<String>) {
        self.retries += 1;
        self.log.push(format!("retry: {}", detail.into()));
    }

    /// Record a backend fallback.
    pub fn fallback(&mut self, detail: impl Into<String>) {
        self.fallbacks += 1;
        self.log.push(format!("fallback: {}", detail.into()));
    }

    /// Record an exact→approximate degradation.
    pub fn degrade(&mut self, detail: impl Into<String>) {
        self.degradations += 1;
        self.log.push(format!("degrade: {}", detail.into()));
    }

    /// Record an observed device fault.
    pub fn fault(&mut self, detail: impl Into<String>) {
        self.faults_observed += 1;
        self.log.push(format!("fault: {}", detail.into()));
    }

    /// Record a silent corruption caught by a verification check.
    pub fn corruption(&mut self, detail: impl Into<String>) {
        self.corruptions_detected += 1;
        self.log.push(format!("corruption: {}", detail.into()));
    }

    /// Record a successful rank certification of the final answer.
    pub fn certify(&mut self, detail: impl Into<String>) {
        self.certified += 1;
        self.log.push(format!("certified: {}", detail.into()));
    }

    /// Record a streaming run resumed from a checkpoint.
    pub fn resume(&mut self, detail: impl Into<String>) {
        self.resumed += 1;
        self.log.push(format!("resumed: {}", detail.into()));
    }

    /// Whether the run needed any resilience action at all.
    pub fn is_clean(&self) -> bool {
        self.retries == 0 && self.fallbacks == 0 && self.degradations == 0
    }

    /// Fold another event set into this one (streaming runs merge the
    /// per-chunk retry counts into the final report).
    pub fn merge(&mut self, other: &ResilienceEvents) {
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.degradations += other.degradations;
        self.faults_observed += other.faults_observed;
        self.corruptions_detected += other.corruptions_detected;
        self.certified += other.certified;
        self.resumed += other.resumed;
        self.log.extend(other.log.iter().cloned());
    }
}

/// Measurement report of one selection run on the simulated device.
#[derive(Debug, Clone)]
pub struct SelectReport {
    /// Algorithm label (`"sampleselect"`, `"quickselect"`, …).
    pub algorithm: &'static str,
    /// Input size.
    pub n: usize,
    /// Recursion levels executed (excluding the base case).
    pub levels: u32,
    /// Whether the run terminated early in an equality bucket (§IV-C).
    pub terminated_early: bool,
    /// Total simulated time including kernel-launch overheads.
    pub total_time: SimTime,
    /// Launch overhead portion of `total_time`.
    pub launch_overhead: SimTime,
    /// Per-kernel aggregation (name, launches, time, resource usage).
    pub kernels: Vec<KernelSummary>,
    /// Resilience actions taken during the run (empty for fault-free
    /// runs through the plain drivers).
    pub resilience: ResilienceEvents,
}

impl SelectReport {
    /// Build a report from the slice of device records this run produced.
    pub fn from_records(
        algorithm: &'static str,
        n: usize,
        records: &[KernelRecord],
        levels: u32,
        terminated_early: bool,
    ) -> Self {
        let total_time: SimTime = records.iter().map(|r| r.duration + r.launch_overhead).sum();
        let launch_overhead: SimTime = records.iter().map(|r| r.launch_overhead).sum();

        // Aggregate per name preserving first-seen order.
        let mut kernels: Vec<KernelSummary> = Vec::new();
        for rec in records {
            match kernels.iter_mut().find(|s| s.name == rec.name) {
                Some(s) => {
                    s.launches += 1;
                    s.total_time += rec.duration;
                    s.total_launch_overhead += rec.launch_overhead;
                    s.cost.merge(&rec.cost);
                }
                None => kernels.push(KernelSummary {
                    name: rec.name.to_string(),
                    launches: 1,
                    total_time: rec.duration,
                    total_launch_overhead: rec.launch_overhead,
                    cost: rec.cost,
                }),
            }
        }

        Self {
            algorithm,
            n,
            levels,
            terminated_early,
            total_time,
            launch_overhead,
            kernels,
            resilience: ResilienceEvents::default(),
        }
    }

    /// Attach resilience events to the report (builder style, used by the
    /// resilient and streaming drivers).
    pub fn with_resilience(mut self, events: ResilienceEvents) -> Self {
        self.resilience = events;
        self
    }

    /// Total time spent in kernels named `name` (zero if none ran).
    pub fn kernel_time(&self, name: &str) -> SimTime {
        self.kernels
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_time)
            .sum()
    }

    /// Number of launches of kernels named `name`.
    pub fn kernel_launches(&self, name: &str) -> u64 {
        self.kernels
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.launches)
            .sum()
    }

    /// Total kernel launches of the run (QuickSelect's deep recursion
    /// shows up here, §V-F).
    pub fn total_launches(&self) -> u64 {
        self.kernels.iter().map(|s| s.launches).sum()
    }

    /// The paper's throughput metric: dataset size / total runtime
    /// (§V-B), in elements per second.
    pub fn throughput(&self) -> f64 {
        if self.total_time.as_secs() == 0.0 {
            return 0.0;
        }
        self.n as f64 / self.total_time.as_secs()
    }

    /// Per-element runtime in nanoseconds for a given kernel (the unit
    /// of Fig. 9's y-axis).
    pub fn kernel_ns_per_element(&self, name: &str) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.kernel_time(name).as_ns() / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{CostBreakdown, KernelCost, LaunchConfig, LaunchOrigin};

    fn record(name: &str, dur_ns: f64, overhead_ns: f64) -> KernelRecord {
        KernelRecord {
            name: name.to_string().into(),
            config: LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
                shared_mem_bytes: 0,
            },
            start: SimTime::ZERO,
            duration: SimTime::from_ns(dur_ns),
            launch_overhead: SimTime::from_ns(overhead_ns),
            cost: KernelCost::new(),
            breakdown: CostBreakdown::default(),
            origin: LaunchOrigin::Host,
            fault: None,
            sanitizer: None,
        }
    }

    #[test]
    fn aggregates_by_name() {
        let records = vec![
            record("count", 100.0, 10.0),
            record("filter", 50.0, 10.0),
            record("count", 20.0, 5.0),
        ];
        let report = SelectReport::from_records("test", 1000, &records, 2, false);
        assert_eq!(report.kernels.len(), 2);
        assert_eq!(report.kernel_launches("count"), 2);
        assert!((report.kernel_time("count").as_ns() - 120.0).abs() < 1e-9);
        assert!((report.total_time.as_ns() - 195.0).abs() < 1e-9);
        assert!((report.launch_overhead.as_ns() - 25.0).abs() < 1e-9);
        assert_eq!(report.total_launches(), 3);
    }

    #[test]
    fn throughput_is_n_over_time() {
        let records = vec![record("k", 1e9, 0.0)]; // 1 second
        let report = SelectReport::from_records("test", 5_000, &records, 1, false);
        assert!((report.throughput() - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn ns_per_element() {
        let records = vec![record("count", 2000.0, 0.0)];
        let report = SelectReport::from_records("test", 1000, &records, 1, false);
        assert!((report.kernel_ns_per_element("count") - 2.0).abs() < 1e-12);
        assert_eq!(report.kernel_ns_per_element("missing"), 0.0);
    }

    #[test]
    fn empty_records_graceful() {
        let report = SelectReport::from_records("test", 0, &[], 0, false);
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.total_launches(), 0);
    }

    #[test]
    fn resilience_events_count_and_merge() {
        let report = SelectReport::from_records("test", 0, &[], 0, false);
        assert!(report.resilience.is_clean());

        let mut events = ResilienceEvents::default();
        events.fault("launch-failure in `count`");
        events.retry("re-seeded splitter sample");
        events.fallback("sampleselect -> quickselect");
        assert!(!events.is_clean());
        assert_eq!(events.retries, 1);
        assert_eq!(events.fallbacks, 1);
        assert_eq!(events.faults_observed, 1);
        assert_eq!(events.log.len(), 3);
        assert!(events.log[0].starts_with("fault:"));

        let mut other = ResilienceEvents::default();
        other.degrade("time budget exceeded");
        other.corruption("histogram-sum on level 1");
        other.certify("rank 500 in [499, 502)");
        other.resume("checkpoint at chunk 3");
        events.merge(&other);
        assert_eq!(events.degradations, 1);
        assert_eq!(events.corruptions_detected, 1);
        assert_eq!(events.certified, 1);
        assert_eq!(events.resumed, 1);
        assert_eq!(events.log.len(), 7);
        assert!(other.log[1].starts_with("corruption:"));
        assert!(other.log[2].starts_with("certified:"));
        assert!(other.log[3].starts_with("resumed:"));

        let report = report.with_resilience(events.clone());
        assert_eq!(report.resilience, events);
    }
}
