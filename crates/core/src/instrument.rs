//! Per-run instrumentation: everything needed to reproduce the paper's
//! measurements (throughput plots of Fig. 7/8, the per-kernel runtime
//! breakdown of Fig. 9) from a single selection run.

use std::fmt;

use gpu_sim::{KernelRecord, KernelSummary, SimTime};

use crate::obs::{self, Counter};

/// One resilience action, as structured data. The variant is the event
/// kind; the payload is the human-readable detail.
///
/// `Display` reproduces the exact `"kind: detail"` lines the log used
/// to hold as plain strings, so text output (selectcli, examples) and
/// the robustness-bench CSVs are byte-identical to before.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceEvent {
    /// Retry of a failed step (kernel launch or chunk load).
    Retry(String),
    /// Switch to a different backend.
    Fallback(String),
    /// Exact→approximate degradation under a time budget.
    Degrade(String),
    /// Observed device fault.
    Fault(String),
    /// Silent corruption caught by a verification check.
    Corruption(String),
    /// Final answer passed an exact rank certificate.
    Certified(String),
    /// Streaming run resumed from a checkpoint.
    Resumed(String),
    /// Checkpoint bookkeeping note (no counter attached — e.g. an
    /// unwritable or unreadable checkpoint file).
    Checkpoint(String),
}

impl ResilienceEvent {
    /// The event-kind prefix used in the text rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            ResilienceEvent::Retry(_) => "retry",
            ResilienceEvent::Fallback(_) => "fallback",
            ResilienceEvent::Degrade(_) => "degrade",
            ResilienceEvent::Fault(_) => "fault",
            ResilienceEvent::Corruption(_) => "corruption",
            ResilienceEvent::Certified(_) => "certified",
            ResilienceEvent::Resumed(_) => "resumed",
            ResilienceEvent::Checkpoint(_) => "checkpoint",
        }
    }

    /// The free-form detail payload.
    pub fn detail(&self) -> &str {
        match self {
            ResilienceEvent::Retry(d)
            | ResilienceEvent::Fallback(d)
            | ResilienceEvent::Degrade(d)
            | ResilienceEvent::Fault(d)
            | ResilienceEvent::Corruption(d)
            | ResilienceEvent::Certified(d)
            | ResilienceEvent::Resumed(d)
            | ResilienceEvent::Checkpoint(d) => d,
        }
    }
}

impl fmt::Display for ResilienceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

/// What the resilience layer had to do to produce a result: every
/// retry, algorithm fallback, and accuracy degradation, in order.
///
/// Deterministic by construction — the fault injector is seed-driven and
/// the drivers consume faults in execution order, so the same seed
/// produces the same event log (the property the robustness tests pin).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceEvents {
    /// Retries of a failed step (kernel launch or chunk load).
    pub retries: u32,
    /// Switches to a different backend (SampleSelect → QuickSelect →
    /// CPU sort).
    pub fallbacks: u32,
    /// Exact→approximate degradations under a time budget.
    pub degradations: u32,
    /// Device faults observed (some may be absorbed by a single retry).
    pub faults_observed: u32,
    /// Silent data corruptions caught by an ABFT invariant or rank
    /// certificate (see [`crate::verify`]).
    pub corruptions_detected: u32,
    /// Final answers that passed an exact rank certificate.
    pub certified: u32,
    /// Streaming runs resumed from a checkpoint instead of restarting.
    pub resumed: u32,
    /// Structured event log, one entry per resilience action, in order.
    /// Render entries with `Display` for the legacy text lines.
    pub log: Vec<ResilienceEvent>,
}

impl ResilienceEvents {
    /// Record a retry, with a reason line for the log.
    pub fn retry(&mut self, detail: impl Into<String>) {
        self.retries += 1;
        obs::counter_add(Counter::Retries, 1);
        self.log.push(ResilienceEvent::Retry(detail.into()));
    }

    /// Record a backend fallback.
    pub fn fallback(&mut self, detail: impl Into<String>) {
        self.fallbacks += 1;
        obs::counter_add(Counter::Fallbacks, 1);
        self.log.push(ResilienceEvent::Fallback(detail.into()));
    }

    /// Record an exact→approximate degradation.
    pub fn degrade(&mut self, detail: impl Into<String>) {
        self.degradations += 1;
        obs::counter_add(Counter::Degradations, 1);
        self.log.push(ResilienceEvent::Degrade(detail.into()));
    }

    /// Record an observed device fault.
    pub fn fault(&mut self, detail: impl Into<String>) {
        self.faults_observed += 1;
        obs::counter_add(Counter::FaultsObserved, 1);
        self.log.push(ResilienceEvent::Fault(detail.into()));
    }

    /// Record a silent corruption caught by a verification check.
    pub fn corruption(&mut self, detail: impl Into<String>) {
        self.corruptions_detected += 1;
        obs::counter_add(Counter::CorruptionsDetected, 1);
        self.log.push(ResilienceEvent::Corruption(detail.into()));
    }

    /// Record a successful rank certification of the final answer.
    pub fn certify(&mut self, detail: impl Into<String>) {
        self.certified += 1;
        obs::counter_add(Counter::Certified, 1);
        self.log.push(ResilienceEvent::Certified(detail.into()));
    }

    /// Record a streaming run resumed from a checkpoint.
    pub fn resume(&mut self, detail: impl Into<String>) {
        self.resumed += 1;
        obs::counter_add(Counter::Resumed, 1);
        self.log.push(ResilienceEvent::Resumed(detail.into()));
    }

    /// Record a checkpoint bookkeeping note. Logged but not counted — a
    /// failed checkpoint write degrades durability, not the result.
    pub fn checkpoint_note(&mut self, detail: impl Into<String>) {
        self.log.push(ResilienceEvent::Checkpoint(detail.into()));
    }

    /// Whether the run needed any resilience action at all. Every
    /// counted event disqualifies a run from being clean — including
    /// observed faults, detected corruptions, and checkpoint resumes
    /// (a run that hit silent corruption is *not* clean even if a retry
    /// was never needed). Certification is the one exception: it is a
    /// verification success, not a recovery action.
    pub fn is_clean(&self) -> bool {
        self.retries == 0
            && self.fallbacks == 0
            && self.degradations == 0
            && self.faults_observed == 0
            && self.corruptions_detected == 0
            && self.resumed == 0
    }

    /// Fold another event set into this one (streaming runs merge the
    /// per-chunk retry counts into the final report). Does not touch the
    /// metrics registry — the folded events were already counted when
    /// they were first recorded.
    pub fn merge(&mut self, other: &ResilienceEvents) {
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.degradations += other.degradations;
        self.faults_observed += other.faults_observed;
        self.corruptions_detected += other.corruptions_detected;
        self.certified += other.certified;
        self.resumed += other.resumed;
        self.log.extend(other.log.iter().cloned());
    }
}

/// Measurement report of one selection run on the simulated device.
#[derive(Debug, Clone)]
pub struct SelectReport {
    /// Algorithm label (`"sampleselect"`, `"quickselect"`, …).
    pub algorithm: &'static str,
    /// Input size.
    pub n: usize,
    /// Recursion levels executed (excluding the base case).
    pub levels: u32,
    /// Whether the run terminated early in an equality bucket (§IV-C).
    pub terminated_early: bool,
    /// Total simulated time including kernel-launch overheads.
    pub total_time: SimTime,
    /// Launch overhead portion of `total_time`.
    pub launch_overhead: SimTime,
    /// Per-kernel aggregation (name, launches, time, resource usage).
    pub kernels: Vec<KernelSummary>,
    /// Resilience actions taken during the run (empty for fault-free
    /// runs through the plain drivers).
    pub resilience: ResilienceEvents,
}

impl SelectReport {
    /// An empty report shell, ready to be (re)filled by
    /// [`refill_from_records`](Self::refill_from_records). Callers that
    /// keep the shell alive across queries get allocation-free report
    /// assembly once the kernel-summary slots are warm.
    pub fn empty(algorithm: &'static str) -> Self {
        Self {
            algorithm,
            n: 0,
            levels: 0,
            terminated_early: false,
            total_time: SimTime::ZERO,
            launch_overhead: SimTime::ZERO,
            kernels: Vec::new(),
            resilience: ResilienceEvents::default(),
        }
    }

    /// Build a report from the slice of device records this run produced.
    pub fn from_records(
        algorithm: &'static str,
        n: usize,
        records: &[KernelRecord],
        levels: u32,
        terminated_early: bool,
    ) -> Self {
        let mut report = Self::empty(algorithm);
        report.refill_from_records(algorithm, n, records, levels, terminated_early);
        report
    }

    /// Re-aggregate a run's records into this report in place, reusing
    /// the kernel-summary vector and its name strings. On a warm report
    /// (same kernel sequence as the previous fill — the steady state of
    /// a backend run repeatedly on same-shaped data) this performs zero
    /// heap allocations, which is what lets the zero-alloc suite pin a
    /// whole warm RadixSelect query at 0 allocations.
    pub fn refill_from_records(
        &mut self,
        algorithm: &'static str,
        n: usize,
        records: &[KernelRecord],
        levels: u32,
        terminated_early: bool,
    ) {
        // Every driver (including nested ones) funnels through here, so
        // this is the one place query-level counters are bumped.
        obs::counter_add(Counter::Queries, 1);
        obs::counter_add(Counter::RecursionLevels, levels as u64);
        obs::counter_add(Counter::EqualityBucketExits, terminated_early as u64);

        self.algorithm = algorithm;
        self.n = n;
        self.levels = levels;
        self.terminated_early = terminated_early;
        self.total_time = records.iter().map(|r| r.duration + r.launch_overhead).sum();
        self.launch_overhead = records.iter().map(|r| r.launch_overhead).sum();
        self.resilience.retries = 0;
        self.resilience.fallbacks = 0;
        self.resilience.degradations = 0;
        self.resilience.faults_observed = 0;
        self.resilience.corruptions_detected = 0;
        self.resilience.certified = 0;
        self.resilience.resumed = 0;
        self.resilience.log.clear();

        // Aggregate per name preserving first-seen order. `filled` slots
        // hold this run's summaries; slots past it are leftovers from
        // the previous fill whose heap capacity (name string included)
        // is recycled instead of reallocated.
        let mut filled = 0usize;
        for rec in records {
            match self.kernels[..filled]
                .iter_mut()
                .find(|s| s.name == rec.name)
            {
                Some(s) => {
                    s.launches += 1;
                    s.total_time += rec.duration;
                    s.total_launch_overhead += rec.launch_overhead;
                    s.cost.merge(&rec.cost);
                }
                None => {
                    if filled < self.kernels.len() {
                        let s = &mut self.kernels[filled];
                        s.name.clear();
                        s.name.push_str(&rec.name);
                        s.launches = 1;
                        s.total_time = rec.duration;
                        s.total_launch_overhead = rec.launch_overhead;
                        s.cost = rec.cost;
                    } else {
                        self.kernels.push(KernelSummary {
                            name: rec.name.to_string(),
                            launches: 1,
                            total_time: rec.duration,
                            total_launch_overhead: rec.launch_overhead,
                            cost: rec.cost,
                        });
                    }
                    filled += 1;
                }
            }
        }
        self.kernels.truncate(filled);
    }

    /// Attach resilience events to the report (builder style, used by the
    /// resilient and streaming drivers).
    pub fn with_resilience(mut self, events: ResilienceEvents) -> Self {
        self.resilience = events;
        self
    }

    /// Total time spent in kernels named `name` (zero if none ran).
    pub fn kernel_time(&self, name: &str) -> SimTime {
        self.kernels
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_time)
            .sum()
    }

    /// Number of launches of kernels named `name`.
    pub fn kernel_launches(&self, name: &str) -> u64 {
        self.kernels
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.launches)
            .sum()
    }

    /// Total kernel launches of the run (QuickSelect's deep recursion
    /// shows up here, §V-F).
    pub fn total_launches(&self) -> u64 {
        self.kernels.iter().map(|s| s.launches).sum()
    }

    /// The paper's throughput metric: dataset size / total runtime
    /// (§V-B), in elements per second.
    pub fn throughput(&self) -> f64 {
        if self.total_time.as_secs() == 0.0 {
            return 0.0;
        }
        self.n as f64 / self.total_time.as_secs()
    }

    /// Per-element runtime in nanoseconds for a given kernel (the unit
    /// of Fig. 9's y-axis).
    pub fn kernel_ns_per_element(&self, name: &str) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.kernel_time(name).as_ns() / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{CostBreakdown, KernelCost, LaunchConfig, LaunchOrigin};

    fn record(name: &str, dur_ns: f64, overhead_ns: f64) -> KernelRecord {
        KernelRecord {
            name: name.to_string().into(),
            config: LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
                shared_mem_bytes: 0,
            },
            start: SimTime::ZERO,
            duration: SimTime::from_ns(dur_ns),
            launch_overhead: SimTime::from_ns(overhead_ns),
            cost: KernelCost::new(),
            breakdown: CostBreakdown::default(),
            origin: LaunchOrigin::Host,
            fault: None,
            sanitizer: None,
        }
    }

    #[test]
    fn aggregates_by_name() {
        let records = vec![
            record("count", 100.0, 10.0),
            record("filter", 50.0, 10.0),
            record("count", 20.0, 5.0),
        ];
        let report = SelectReport::from_records("test", 1000, &records, 2, false);
        assert_eq!(report.kernels.len(), 2);
        assert_eq!(report.kernel_launches("count"), 2);
        assert!((report.kernel_time("count").as_ns() - 120.0).abs() < 1e-9);
        assert!((report.total_time.as_ns() - 195.0).abs() < 1e-9);
        assert!((report.launch_overhead.as_ns() - 25.0).abs() < 1e-9);
        assert_eq!(report.total_launches(), 3);
    }

    #[test]
    fn throughput_is_n_over_time() {
        let records = vec![record("k", 1e9, 0.0)]; // 1 second
        let report = SelectReport::from_records("test", 5_000, &records, 1, false);
        assert!((report.throughput() - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn ns_per_element() {
        let records = vec![record("count", 2000.0, 0.0)];
        let report = SelectReport::from_records("test", 1000, &records, 1, false);
        assert!((report.kernel_ns_per_element("count") - 2.0).abs() < 1e-12);
        assert_eq!(report.kernel_ns_per_element("missing"), 0.0);
    }

    #[test]
    fn empty_records_graceful() {
        let report = SelectReport::from_records("test", 0, &[], 0, false);
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.total_launches(), 0);
    }

    #[test]
    fn resilience_events_count_and_merge() {
        let report = SelectReport::from_records("test", 0, &[], 0, false);
        assert!(report.resilience.is_clean());

        let mut events = ResilienceEvents::default();
        events.fault("launch-failure in `count`");
        events.retry("re-seeded splitter sample");
        events.fallback("sampleselect -> quickselect");
        assert!(!events.is_clean());
        assert_eq!(events.retries, 1);
        assert_eq!(events.fallbacks, 1);
        assert_eq!(events.faults_observed, 1);
        assert_eq!(events.log.len(), 3);
        assert_eq!(
            events.log[0].to_string(),
            "fault: launch-failure in `count`"
        );

        let mut other = ResilienceEvents::default();
        other.degrade("time budget exceeded");
        other.corruption("histogram-sum on level 1");
        other.certify("rank 500 in [499, 502)");
        other.resume("checkpoint at chunk 3");
        events.merge(&other);
        assert_eq!(events.degradations, 1);
        assert_eq!(events.corruptions_detected, 1);
        assert_eq!(events.certified, 1);
        assert_eq!(events.resumed, 1);
        assert_eq!(events.log.len(), 7);
        assert!(other.log[1].to_string().starts_with("corruption:"));
        assert!(other.log[2].to_string().starts_with("certified:"));
        assert!(other.log[3].to_string().starts_with("resumed:"));

        let report = report.with_resilience(events.clone());
        assert_eq!(report.resilience, events);
    }

    /// Regression test: `is_clean()` used to consider only retries,
    /// fallbacks, and degradations — a run that observed a fault, caught
    /// a silent corruption, or resumed from a checkpoint still reported
    /// itself clean. Pin that every recovery counter disqualifies.
    #[test]
    fn is_clean_considers_every_recovery_counter() {
        type Recorder = fn(&mut ResilienceEvents);
        let dirty: [(&str, Recorder); 6] = [
            ("retry", |e| e.retry("x")),
            ("fallback", |e| e.fallback("x")),
            ("degrade", |e| e.degrade("x")),
            ("fault", |e| e.fault("x")),
            ("corruption", |e| e.corruption("x")),
            ("resume", |e| e.resume("x")),
        ];
        for (name, record) in dirty {
            let mut events = ResilienceEvents::default();
            record(&mut events);
            assert!(!events.is_clean(), "`{name}` must not count as clean");
        }
        // certification is a verification success, not a recovery; a
        // checkpoint note is bookkeeping — neither dirties the run
        let mut events = ResilienceEvents::default();
        events.certify("rank 5 in [4, 6)");
        events.checkpoint_note("write to `cp` failed (disk full)");
        assert!(events.is_clean());
        assert_eq!(events.log.len(), 2);
        assert_eq!(
            events.log[1].to_string(),
            "checkpoint: write to `cp` failed (disk full)"
        );
    }

    #[test]
    fn event_display_matches_legacy_log_lines() {
        let mut events = ResilienceEvents::default();
        events.retry("re-seeded");
        events.fallback("a -> b");
        events.degrade("budget");
        events.fault("boom");
        events.corruption("sum mismatch");
        events.certify("ok");
        events.resume("chunk 3");
        events.checkpoint_note("note");
        let lines: Vec<String> = events.log.iter().map(|e| e.to_string()).collect();
        assert_eq!(
            lines,
            [
                "retry: re-seeded",
                "fallback: a -> b",
                "degrade: budget",
                "fault: boom",
                "corruption: sum mismatch",
                "certified: ok",
                "resumed: chunk 3",
                "checkpoint: note",
            ]
        );
        assert_eq!(events.log[0].kind(), "retry");
        assert_eq!(events.log[0].detail(), "re-seeded");
    }
}
