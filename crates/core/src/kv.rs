//! Key-value selection: carry a payload through the selection kernels.
//!
//! The paper's motivating top-k scenario (information retrieval) needs
//! the *documents*, not just the score threshold. [`Pair`] bundles an
//! ordered key with an opaque payload and implements [`SelectElement`]
//! by delegating every ordering operation to the key, so all drivers
//! (exact, approximate, top-k, multiselect, sort) work on pairs
//! unchanged — the filter kernels move the payloads along with the keys.
//!
//! Ordering ties between equal keys are broken arbitrarily (selection is
//! unstable), exactly as for scalar duplicates.

use crate::element::SelectElement;

/// A key-ordered pair with an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pair<K, V> {
    /// The ordered key.
    pub key: K,
    /// The payload carried along (ignored by all comparisons).
    pub value: V,
}

impl<K, V> Pair<K, V> {
    pub fn new(key: K, value: V) -> Self {
        Self { key, value }
    }
}

/// Payload bound: plain data that can ride through the kernels.
pub trait Payload: Copy + Send + Sync + std::fmt::Debug + Default + 'static {}
impl<T: Copy + Send + Sync + std::fmt::Debug + Default + 'static> Payload for T {}

impl<K: SelectElement, V: Payload> SelectElement for Pair<K, V> {
    const BYTES: usize = std::mem::size_of::<Self>();
    const NAME: &'static str = "pair";

    #[inline]
    fn lt(self, other: Self) -> bool {
        self.key.lt(other.key)
    }

    fn next_up(self) -> Self {
        // Bumps only affect splitter *copies* in the search tree; the
        // payload of a bumped splitter is never returned to the caller.
        Pair::new(self.key.next_up(), self.value)
    }

    fn min_value() -> Self {
        Pair::new(K::min_value(), V::default())
    }

    fn max_value() -> Self {
        Pair::new(K::max_value(), V::default())
    }

    #[inline]
    fn to_sort_key(self) -> u64 {
        self.key.to_sort_key()
    }

    #[inline]
    fn to_bits_u64(self) -> u64 {
        // Only the key fits the 64-bit image; payloads are restored as
        // `V::default()` by `from_bits_u64`. Checkpoint/corruption
        // plumbing therefore treats pair payloads as non-authoritative.
        self.key.to_bits_u64()
    }

    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        Pair::new(K::from_bits_u64(bits), V::default())
    }

    fn from_f64(v: f64) -> Self {
        Pair::new(K::from_f64(v), V::default())
    }

    fn to_f64(self) -> f64 {
        self.key.to_f64()
    }

    fn is_nan(self) -> bool {
        self.key.is_nan()
    }
}

/// Zip keys and payloads into pairs.
pub fn zip_pairs<K: SelectElement, V: Payload>(keys: &[K], values: &[V]) -> Vec<Pair<K, V>> {
    assert_eq!(keys.len(), values.len());
    keys.iter()
        .zip(values.iter())
        .map(|(&k, &v)| Pair::new(k, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SampleSelectConfig;
    use crate::rng::SplitMix64;
    use crate::topk::top_k_largest_on_device;
    use gpu_sim::arch::v100;
    use gpu_sim::Device;
    use hpc_par::ThreadPool;

    fn scored_docs(n: usize, seed: u64) -> Vec<Pair<f32, u32>> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|doc| Pair::new(rng.next_f64() as f32, doc as u32))
            .collect()
    }

    #[test]
    fn pair_ordering_ignores_payload() {
        let a = Pair::new(1.0f32, 999u32);
        let b = Pair::new(2.0f32, 0u32);
        assert!(a.lt(b));
        assert!(!b.lt(a));
        assert_eq!(a.to_sort_key(), 1.0f32.to_sort_key());
    }

    #[test]
    fn exact_selection_returns_a_real_pair() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = scored_docs(50_000, 1);
        let cfg = SampleSelectConfig::default();
        let rank = 25_000;
        let r = crate::recursion::sample_select_on_device(&mut device, &data, rank, &cfg).unwrap();
        // The returned pair is an actual input element whose key has the
        // requested rank, and whose payload points back to the input.
        let smaller = data.iter().filter(|p| p.key < r.value.key).count();
        assert!(smaller <= rank);
        let le = data.iter().filter(|p| p.key <= r.value.key).count();
        assert!(le > rank);
        assert_eq!(
            data[r.value.value as usize].key, r.value.key,
            "payload resolves to its element"
        );
    }

    #[test]
    fn topk_carries_the_right_documents() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = scored_docs(80_000, 2);
        let k = 50;
        let cfg = SampleSelectConfig::default();
        let res = top_k_largest_on_device(&mut device, &data, k, &cfg).unwrap();
        assert_eq!(res.elements.len(), k);
        // every returned payload must be a document whose score is
        // >= threshold, and payloads must be distinct
        let mut ids: Vec<u32> = res.elements.iter().map(|p| p.value).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), k, "payloads are distinct documents");
        for p in &res.elements {
            assert_eq!(data[p.value as usize].key, p.key);
            assert!(p.key >= res.threshold.key);
        }
        // against reference: the k-th largest key
        let mut keys: Vec<f32> = data.iter().map(|p| p.key).collect();
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(res.threshold.key, keys[data.len() - k]);
    }

    #[test]
    fn samplesort_orders_pairs_by_key() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = scored_docs(30_000, 3);
        let cfg = SampleSelectConfig::default();
        let res = crate::samplesort::sample_sort_on_device(&mut device, &data, &cfg).unwrap();
        assert!(res.sorted.windows(2).all(|w| w[0].key <= w[1].key));
        // permutation: same multiset of payloads
        let mut ids: Vec<u32> = res.sorted.iter().map(|p| p.value).collect();
        ids.sort_unstable();
        assert!(ids.iter().enumerate().all(|(i, &id)| id == i as u32));
    }

    #[test]
    fn duplicate_keys_with_distinct_payloads() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        // 4 distinct scores over 40k docs
        let data: Vec<Pair<f32, u32>> = (0..40_000)
            .map(|doc| Pair::new((doc % 4) as f32, doc as u32))
            .collect();
        let cfg = SampleSelectConfig::default();
        let r =
            crate::recursion::sample_select_on_device(&mut device, &data, 20_000, &cfg).unwrap();
        // rank 20000 of keys [0,0,..,1,..,2,..,3..]: key must be 2.0
        assert_eq!(r.value.key, 2.0);
        // payload is one of the docs with that key
        assert_eq!(data[r.value.value as usize].key, 2.0);
    }

    #[test]
    fn zip_helper() {
        let keys = [3.0f32, 1.0];
        let vals = [10u32, 20];
        let pairs = zip_pairs(&keys, &vals);
        assert_eq!(pairs[0], Pair::new(3.0, 10));
        assert_eq!(pairs[1], Pair::new(1.0, 20));
    }
}
