//! # sampleselect
//!
//! Exact and approximate parallel selection, reproducing Ribizel & Anzt,
//! *Approximate and Exact Selection on GPUs* (2019).
//!
//! The central algorithm is **SampleSelect**: recursive bucket selection
//! with sampled splitters held in an implicit binary search tree, exact
//! per-warp atomic accounting, equality buckets for repeated elements,
//! and a dynamic-parallelism-style tail recursion. An **approximate**
//! variant stops after a single `count` pass and returns the splitter
//! whose rank is closest to the target; a fused **top-k** extraction and
//! a heavily engineered **QuickSelect** reference round out the paper's
//! artifact set.
//!
//! Two execution backends share the algorithmic code paths:
//!
//! * the **simulated device** ([`gpu_sim::Device`]) — warp-accurate
//!   functional execution plus a per-architecture analytic cost model,
//!   used to reproduce the paper's figures;
//! * the **CPU backend** ([`cpu`]) — the same algorithm on real host
//!   threads, used for genuine wall-clock benchmarking.
//!
//! ## Quick start
//!
//! ```
//! use sampleselect::{sample_select, SampleSelectConfig};
//!
//! let data: Vec<f32> = (0..50_000).map(|i| ((i * 37) % 1000) as f32).collect();
//! let cfg = SampleSelectConfig::default();
//! let result = sample_select(&data, 4_999, &cfg).unwrap();
//!
//! let mut sorted = data.clone();
//! sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! assert_eq!(result.value, sorted[4_999]);
//! ```

pub mod approx;
pub mod approx_topk;
pub mod bitonic;
pub mod count;
pub mod cpu;
pub mod element;
pub mod filter;
pub mod instrument;
pub mod kv;
pub mod multiselect;
pub mod obs;
pub mod params;
pub mod planner;
pub mod quantile_stream;
pub mod quickselect;
pub mod radix;
pub mod recursion;
pub mod reduce;
pub mod resilient;
pub mod rng;
pub mod samplesort;
pub mod searchtree;
pub mod server;
pub mod shard;
pub mod simt_ref;
pub mod splitter;
pub mod streaming;
pub mod topk;
pub mod verify;
pub mod workspace;

pub use approx::{approx_select, approx_select_on_device, ApproxResult};
pub use approx_topk::{
    approx_top_k, approx_top_k_on_device, approx_top_k_with_workspace, expected_recall,
    k_prime_for_recall, measure_recall, plan_for_recall, ApproxTopKConfig, ApproxTopKResult,
};
pub use element::SelectElement;
pub use instrument::{ResilienceEvent, ResilienceEvents, SelectReport};
pub use kv::{zip_pairs, Pair};
pub use multiselect::{
    multi_select, multi_select_on_device, quantile_ranks, quantiles, MultiSelectResult,
};
pub use obs::{
    MetricsRegistry, MetricsSnapshot, ObsReport, ObsSession, QuerySpan, SpanGuard, SpanKind,
};
pub use params::{AtomicScope, ConfigError, SampleSelectConfig};
pub use planner::{
    auto_select_on_device, auto_select_with_workspace, plan_approx_topk_query, plan_rank_query,
    plan_topk_query, profile_data, DataProfile, PlanDecision, PlanSignals, PlannedBackend,
};
pub use quantile_stream::{
    rank_for_prob, run_quantile_stream, QuantileStream, QuantileStreamConfig, QuantileStreamRun,
    WindowQuantiles, WindowSpec, DEFAULT_PROBS,
};
pub use quickselect::{bipartition_on_device, quick_select, quick_select_on_device};
pub use radix::{
    radix_select, radix_select_into, radix_select_on_device, radix_select_with_workspace,
};
pub use recursion::{sample_select_on_device, sample_select_with_workspace};
pub use resilient::{
    resilient_select, resilient_select_on_device, resilient_select_planned,
    resilient_streaming_select, Backend, Outcome, ResilienceConfig, ResilientResult, RetryPolicy,
};
pub use samplesort::{sample_sort, sample_sort_on_device, SortResult};
pub use searchtree::SearchTree;
pub use server::{
    BreakerConfig, QueryKind, QueryRequest, QueryResponse, QueryStatus, QuotaConfig, SelectServer,
    ServerConfig, ServerSnapshot, TenantCounters,
};
pub use shard::{
    sharded_select, sharded_select_clean, KillSpec, ShardConfig, ShardFaults, ShardReport,
    ShardTopology, ShardedResult,
};
pub use streaming::{
    streaming_select, streaming_select_with_checkpoint, streaming_select_with_topology, ChunkError,
    ChunkSource, SliceChunks, StreamingResult,
};
pub use topk::{bottom_k_smallest_on_device, top_k_largest, top_k_largest_on_device};
pub use verify::VerifyPolicy;
pub use workspace::{KernelScratch, SelectWorkspace};

use gpu_sim::arch::v100;
use gpu_sim::Device;

/// Errors returned by the selection drivers.
///
/// The taxonomy distinguishes *permanent* errors (bad input, bad
/// configuration — retrying cannot help) from *transient* faults
/// surfaced by the device's fault-injection layer, which the
/// [`resilient`] driver retries; [`SelectError::is_transient`] encodes
/// the split.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// The input slice is empty.
    EmptyInput,
    /// The requested rank is not in `0..len`.
    RankOutOfRange { rank: usize, len: usize },
    /// The configuration failed validation.
    InvalidConfig(ConfigError),
    /// Input validation found a NaN (only with
    /// [`SampleSelectConfig::check_input`]).
    NanInput { index: usize },
    /// A caller-supplied argument is outside the operation's domain
    /// (e.g. a quantile count `q < 2` or `q > n`). Permanent: retrying
    /// with the same argument cannot help.
    InvalidArgument {
        /// Which argument was rejected and why.
        what: String,
    },
    /// The recursion failed to converge within its depth or work budget
    /// — degenerate splitter draws, or an internal bug. The resilient
    /// driver treats this as a signal to fall back to a different
    /// algorithm rather than retry the same one.
    RecursionLimit,
    /// A device fault (injected launch failure or memory exhaustion)
    /// corrupted the run. Transient: a retry may succeed.
    DeviceFault(gpu_sim::LaunchError),
    /// A chunk of an out-of-core dataset could not be loaded, even after
    /// the streaming driver's per-chunk retries.
    ChunkLoad(ChunkError),
    /// An algorithm-level integrity check (ABFT invariant or rank
    /// certificate, see [`verify`]) caught silently corrupted data.
    /// Transient: a retry with re-seeded sampling recomputes every
    /// intermediate buffer from the (intact) input.
    Corruption {
        /// Which invariant failed (e.g. `"histogram-sum"`).
        invariant: &'static str,
        /// Human-readable detail of the violation.
        detail: String,
    },
    /// The `selectd` server refused to admit the query: the tenant's
    /// token bucket is empty, the admission queue is full, or the
    /// server is draining. Explicit backpressure — the client must slow
    /// down or retry later; the internal resilience loop deliberately
    /// does *not* absorb it ([`SelectError::is_transient`] is false),
    /// because hiding overload behind retries defeats load shedding.
    Overloaded {
        /// Why admission was refused (`"quota"`, `"queue-full"`,
        /// `"draining"`).
        reason: &'static str,
        /// The tenant whose request was refused.
        tenant: String,
    },
    /// A thread-level reference kernel addressed shared memory out of
    /// bounds with the SIMT sanitizer disarmed (armed, the access is
    /// reported as a [`gpu_sim::SanitizerFinding`] instead). Permanent:
    /// the kernel itself is wrong.
    SharedOutOfBounds {
        /// Kernel that performed the access.
        kernel: &'static str,
        /// Offending word index.
        index: usize,
        /// Size of the shared allocation in words.
        len: usize,
    },
}

impl SelectError {
    /// Whether retrying the same operation can plausibly succeed.
    pub fn is_transient(&self) -> bool {
        match self {
            SelectError::DeviceFault(_) => true,
            SelectError::ChunkLoad(e) => e.transient,
            SelectError::Corruption { .. } => true,
            _ => false,
        }
    }
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::EmptyInput => write!(f, "cannot select from an empty input"),
            SelectError::RankOutOfRange { rank, len } => {
                write!(f, "rank {rank} out of range for input of length {len}")
            }
            SelectError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            SelectError::NanInput { index } => {
                write!(f, "input contains NaN at index {index}")
            }
            SelectError::InvalidArgument { what } => {
                write!(f, "invalid argument: {what}")
            }
            SelectError::RecursionLimit => write!(f, "selection recursion failed to converge"),
            SelectError::DeviceFault(e) => write!(f, "device fault: {e}"),
            SelectError::ChunkLoad(e) => write!(f, "chunk load failed: {e}"),
            SelectError::Corruption { invariant, detail } => {
                write!(f, "data corruption detected ({invariant}): {detail}")
            }
            SelectError::Overloaded { reason, tenant } => {
                write!(
                    f,
                    "server overloaded ({reason}): tenant `{tenant}` rejected"
                )
            }
            SelectError::SharedOutOfBounds { kernel, index, len } => {
                write!(
                    f,
                    "kernel {kernel}: shared-memory access out of bounds (word {index} of {len})"
                )
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Result of an exact selection run: the selected value and the
/// measurement report.
#[derive(Debug, Clone)]
pub struct SelectResult<T> {
    /// The `rank`-th smallest element of the input.
    pub value: T,
    /// Timing/instrumentation of the run on the simulated device.
    pub report: SelectReport,
}

/// Exact SampleSelect on a default simulated device (Tesla V100 on the
/// process-global thread pool). For architecture sweeps, build a
/// [`gpu_sim::Device`] and call [`sample_select_on_device`].
pub fn sample_select<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    sample_select_on_device(&mut device, data, rank, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_select_works() {
        let data: Vec<f32> = (0..10_000).map(|i| ((i * 31) % 500) as f32).collect();
        let result = sample_select(&data, 777, &SampleSelectConfig::default()).unwrap();
        assert_eq!(result.value, element::reference_select(&data, 777).unwrap());
    }

    #[test]
    fn error_display_messages() {
        assert!(format!("{}", SelectError::EmptyInput).contains("empty"));
        let e = SelectError::RankOutOfRange { rank: 9, len: 3 };
        assert!(format!("{e}").contains('9'));
        assert!(format!("{}", SelectError::NanInput { index: 4 }).contains("NaN"));
    }

    #[test]
    fn transient_vs_permanent_taxonomy() {
        use gpu_sim::{FaultKind, LaunchError, SimTime};
        let fault = SelectError::DeviceFault(LaunchError {
            kind: FaultKind::LaunchFailure,
            kernel: "count".to_string(),
            launch_index: 3,
            at: SimTime::ZERO,
        });
        assert!(fault.is_transient());
        assert!(format!("{fault}").contains("count"));

        let transient_chunk = SelectError::ChunkLoad(ChunkError {
            chunk: 2,
            message: "read timed out".to_string(),
            transient: true,
        });
        assert!(transient_chunk.is_transient());
        let permanent_chunk = SelectError::ChunkLoad(ChunkError {
            chunk: 2,
            message: "shard deleted".to_string(),
            transient: false,
        });
        assert!(!permanent_chunk.is_transient());

        let corruption = SelectError::Corruption {
            invariant: "histogram-sum",
            detail: "counts sum to 99 for n=100".to_string(),
        };
        assert!(corruption.is_transient());
        assert!(format!("{corruption}").contains("histogram-sum"));

        for permanent in [
            SelectError::EmptyInput,
            SelectError::RankOutOfRange { rank: 1, len: 1 },
            SelectError::NanInput { index: 0 },
            SelectError::InvalidArgument {
                what: "q = 1 quantile buckets".to_string(),
            },
            SelectError::RecursionLimit,
            SelectError::SharedOutOfBounds {
                kernel: "bitonic-ref",
                index: 64,
                len: 64,
            },
            // Backpressure must reach the client, not be retried away.
            SelectError::Overloaded {
                reason: "quota",
                tenant: "t0".to_string(),
            },
        ] {
            assert!(!permanent.is_transient(), "{permanent} must be permanent");
        }
    }
}
