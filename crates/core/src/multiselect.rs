//! Multiple-rank selection — the paper's first future-work item
//! (§VI: "extending the SampleSelect algorithm to other typical
//! selection applications like multiple sequence selection").
//!
//! Selecting `m` order statistics at once (e.g. every percentile of a
//! latency distribution) costs barely more than selecting one: the
//! `sample`/`count`/`reduce` work of each level is shared by all target
//! ranks, and the recursion only descends into the (at most `m`)
//! buckets that contain a target. With `b >> m` buckets, the expected
//! extra data touched stays `O(m · n / b)` per level.

use crate::count::count_kernel_scoped;
use crate::element::SelectElement;
use crate::filter::filter_kernel_scoped;
use crate::instrument::SelectReport;
use crate::obs::{self, Histogram, SpanKind};
use crate::params::SampleSelectConfig;
use crate::recursion::{base_case_select_with, recycle_level, validate_input};
use crate::reduce::reduce_kernel;
use crate::rng::SplitMix64;
use crate::splitter::sample_kernel_into;
use crate::workspace::SelectWorkspace;
use crate::SelectError;
use gpu_sim::arch::v100;
use gpu_sim::{Device, LaunchOrigin};

/// Result of a multi-rank selection.
#[derive(Debug, Clone)]
pub struct MultiSelectResult<T> {
    /// `values[i]` is the element of rank `ranks[i]` (same order as the
    /// input ranks).
    pub values: Vec<T>,
    /// Measurement report for the whole batch.
    pub report: SelectReport,
}

/// One pending sub-problem: a contiguous data segment and the target
/// ranks (relative to the segment) it still has to resolve.
struct Segment<T> {
    data: Vec<T>,
    /// (original query index, rank within `data`)
    queries: Vec<(usize, usize)>,
    level: u32,
}

const MAX_LEVELS: u32 = 64;

/// Select the elements at several ranks at once (0-based, duplicates
/// allowed, any order).
pub fn multi_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    ranks: &[usize],
    cfg: &SampleSelectConfig,
) -> Result<MultiSelectResult<T>, SelectError> {
    multi_select_with_workspace(device, data, ranks, cfg, &mut SelectWorkspace::new())
}

/// [`multi_select_on_device`] with a reusable [`SelectWorkspace`] (see
/// [`crate::recursion::sample_select_with_workspace`] for the reuse
/// contract).
pub fn multi_select_with_workspace<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    ranks: &[usize],
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
) -> Result<MultiSelectResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    if ranks.is_empty() {
        return Ok(MultiSelectResult {
            values: Vec::new(),
            report: SelectReport::from_records("multiselect", data.len(), &[], 0, false),
        });
    }
    for &r in ranks {
        validate_input(data, r, cfg)?;
    }

    let n = data.len();
    let records_before = device.records().len();
    obs::span_enter(SpanKind::Query, "multiselect", 0, device.now().as_ns());
    let mut rng = SplitMix64::new(cfg.seed);
    let mut results: Vec<Option<T>> = vec![None; ranks.len()];
    let mut levels = 0u32;
    let mut terminated_early = false;

    // Level-0 segment borrows nothing: we copy lazily only when
    // filtering (the first level runs on `data` directly).
    let mut pending: Vec<Segment<T>> = vec![Segment {
        data: Vec::new(), // sentinel: level 0 uses `data`
        queries: ranks.iter().copied().enumerate().collect(),
        level: 0,
    }];

    while let Some(seg) = pending.pop() {
        let Segment {
            data: seg_data,
            queries: seg_queries,
            level,
        } = seg;
        let cur: &[T] = if level == 0 { data } else { &seg_data };
        let origin = if level == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };
        if level >= MAX_LEVELS {
            return Err(SelectError::RecursionLimit);
        }
        levels = levels.max(level + 1);
        obs::span_enter(
            SpanKind::Level,
            "segment",
            level as u64,
            device.now().as_ns(),
        );

        if cur.len() <= cfg.base_case_size.max(cfg.sample_size()) {
            // One sort answers every query of the segment (the bitonic
            // selection fully sorts its working copy, `ws.base`).
            let first_rank = seg_queries[0].1;
            let SelectWorkspace {
                base, sort_scratch, ..
            } = &mut *ws;
            let _ = base_case_select_with(device, cur, first_rank, cfg, origin, base, sort_scratch);
            for &(qi, rank) in &seg_queries {
                results[qi] = Some(base[rank]);
            }
            device.recycle_vec("filter-out", seg_data);
            obs::span_exit(device.now().as_ns());
            continue;
        }

        sample_kernel_into(device, cur, cfg, &mut rng, origin, ws)?;
        let tree = ws.tree().expect("sample_kernel_into built a tree");
        let count = count_kernel_scoped(device, cur, tree, cfg, true, origin, &ws.scratch);
        let red = reduce_kernel(device, &count, LaunchOrigin::Device);

        // Group the segment's queries by target bucket.
        let mut by_bucket: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for &(qi, rank) in &seg_queries {
            let bucket = red.bucket_for_rank(rank as u64);
            match by_bucket.iter_mut().find(|(b, _)| *b == bucket) {
                Some((_, qs)) => qs.push((qi, rank)),
                None => by_bucket.push((bucket, vec![(qi, rank)])),
            }
        }

        for (bucket, queries) in by_bucket {
            if tree.is_equality_bucket(bucket) {
                let v = tree.equality_value(bucket);
                for (qi, _) in queries {
                    results[qi] = Some(v);
                }
                terminated_early = true;
                continue;
            }
            let bucket_u32 = bucket as u32;
            let sub = filter_kernel_scoped(
                device,
                cur,
                &count,
                &red,
                bucket_u32..bucket_u32 + 1,
                cfg,
                LaunchOrigin::Device,
                &ws.scratch,
            );
            let offset = red.bucket_offsets[bucket] as usize;
            let queries: Vec<(usize, usize)> = queries
                .into_iter()
                .map(|(qi, rank)| (qi, rank - offset))
                .collect();
            debug_assert!(queries.iter().all(|&(_, r)| r < sub.len()));
            pending.push(Segment {
                data: sub,
                queries,
                level: level + 1,
            });
        }
        device.recycle_vec("filter-out", seg_data);
        recycle_level(device, count, red);
        obs::observe(
            Histogram::LevelKeptElements,
            pending.iter().map(|s| s.data.len() as u64).sum(),
        );
        obs::span_exit(device.now().as_ns());
    }

    let values = results
        .into_iter()
        .map(|v| v.expect("every query resolved"))
        .collect();
    obs::absorb_device(device);
    obs::pool_sample(device);
    obs::span_exit(device.now().as_ns());
    let report = SelectReport::from_records(
        "multiselect",
        n,
        &device.records()[records_before..],
        levels,
        terminated_early,
    );
    Ok(MultiSelectResult { values, report })
}

/// Multi-rank selection on a default simulated device (Tesla V100).
pub fn multi_select<T: SelectElement>(
    data: &[T],
    ranks: &[usize],
    cfg: &SampleSelectConfig,
) -> Result<MultiSelectResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    multi_select_on_device(&mut device, data, ranks, cfg)
}

/// The `q - 1` target ranks of the `q`-quantiles of an input of length
/// `n`. Rejects the out-of-domain shapes instead of clamping: `q < 2`
/// selects nothing meaningful, and `q > n` would clamp several targets
/// onto the same rank (duplicate work masquerading as distinct
/// quantiles) — the same bound the `selectd` admission path enforces.
/// With `2 <= q <= n` the ranks `i * n / q` are strictly increasing
/// (consecutive targets differ by at least `floor(n / q) >= 1`), so the
/// returned list is duplicate-free by construction.
pub fn quantile_ranks(n: usize, q: usize) -> Result<Vec<usize>, SelectError> {
    if n == 0 {
        return Err(SelectError::EmptyInput);
    }
    if q < 2 {
        return Err(SelectError::InvalidArgument {
            what: format!("q = {q} quantile buckets (need at least 2)"),
        });
    }
    if q > n {
        return Err(SelectError::InvalidArgument {
            what: format!("q = {q} quantile buckets for input of length {n} (need q <= n)"),
        });
    }
    Ok((1..q).map(|i| i * n / q).collect())
}

/// Convenience: the `q`-quantiles of the input (e.g. `q = 100` for
/// percentiles p1..p99). Returns `q - 1` values. Errors with
/// [`SelectError::EmptyInput`] on an empty input and
/// [`SelectError::InvalidArgument`] when `q < 2` or `q > n` (see
/// [`quantile_ranks`]).
pub fn quantiles<T: SelectElement>(
    data: &[T],
    q: usize,
    cfg: &SampleSelectConfig,
) -> Result<MultiSelectResult<T>, SelectError> {
    let ranks = quantile_ranks(data.len(), q)?;
    multi_select(data, &ranks, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn check(data: &[f32], ranks: &[usize]) -> MultiSelectResult<f32> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let res = multi_select_on_device(&mut device, data, ranks, &SampleSelectConfig::default())
            .unwrap();
        for (i, &rank) in ranks.iter().enumerate() {
            assert_eq!(
                res.values[i],
                reference_select(data, rank).unwrap(),
                "rank {rank}"
            );
        }
        res
    }

    #[test]
    fn selects_multiple_ranks_correctly() {
        let data = uniform(200_000, 1);
        check(&data, &[0, 13, 100_000, 150_000, 199_999]);
    }

    #[test]
    fn handles_duplicate_and_unsorted_ranks() {
        let data = uniform(50_000, 2);
        check(&data, &[40_000, 7, 40_000, 3, 7]);
    }

    #[test]
    fn single_rank_degenerates_to_select() {
        let data = uniform(80_000, 3);
        let res = check(&data, &[12_345]);
        assert_eq!(res.values.len(), 1);
    }

    #[test]
    fn empty_rank_list_is_empty_result() {
        let data = uniform(1_000, 4);
        let res = multi_select(&data, &[], &SampleSelectConfig::default()).unwrap();
        assert!(res.values.is_empty());
    }

    #[test]
    fn shares_count_pass_across_queries() {
        // m ranks must NOT cost m count passes over the full input: the
        // level-0 kernels run once regardless of the number of queries.
        let data = uniform(300_000, 5);
        let one = check(&data, &[150_000]);
        let many = check(&data, &[1_000, 50_000, 150_000, 250_000, 299_000]);
        let full_counts = |r: &SelectReport| {
            r.kernels
                .iter()
                .filter(|k| k.name == "count")
                .map(|k| k.cost.global_read_bytes)
                .sum::<u64>()
        };
        // 5 queries read less than 2x the bytes of 1 query (level-0 pass
        // shared; only the small per-bucket recursions multiply).
        assert!(full_counts(&many.report) < 2 * full_counts(&one.report));
    }

    #[test]
    fn quantiles_are_monotone() {
        let data = uniform(100_000, 6);
        let res = quantiles(&data, 10, &SampleSelectConfig::default()).unwrap();
        assert_eq!(res.values.len(), 9);
        assert!(res.values.windows(2).all(|w| w[0] <= w[1]));
        // middle quantile is the median
        assert_eq!(res.values[4], reference_select(&data, 50_000).unwrap());
    }

    #[test]
    fn duplicate_heavy_input_with_many_ranks() {
        let mut rng = SplitMix64::new(7);
        let data: Vec<f32> = (0..100_000)
            .map(|_| (rng.next_below(8) as f32) * 1.25)
            .collect();
        check(&data, &[0, 10_000, 50_000, 90_000, 99_999]);
    }

    #[test]
    fn propagates_rank_errors() {
        let data = uniform(100, 8);
        let err = multi_select(&data, &[5, 100], &SampleSelectConfig::default()).unwrap_err();
        assert!(matches!(err, SelectError::RankOutOfRange { .. }));
    }

    #[test]
    fn quantiles_rejects_degenerate_q_without_panicking() {
        // Pre-fix code asserted q >= 2 (a panic in a library path).
        let data = uniform(100, 9);
        let cfg = SampleSelectConfig::default();
        for q in [0, 1] {
            let err = quantiles(&data, q, &cfg).unwrap_err();
            assert!(
                matches!(err, SelectError::InvalidArgument { .. }),
                "q={q}: got {err}"
            );
        }
    }

    #[test]
    fn quantiles_rejects_q_above_n() {
        // Pre-fix code clamped the ranks, silently returning duplicate
        // "quantiles"; the server-side admission bound is 2 <= q <= n.
        let data = uniform(10, 10);
        let err = quantiles(&data, 11, &SampleSelectConfig::default()).unwrap_err();
        match err {
            SelectError::InvalidArgument { what } => {
                assert!(what.contains("11"), "unexpected message: {what}")
            }
            other => panic!("expected InvalidArgument, got {other}"),
        }
    }

    #[test]
    fn quantiles_of_empty_input_is_empty_input_error() {
        let err = quantiles::<f32>(&[], 4, &SampleSelectConfig::default()).unwrap_err();
        assert_eq!(err, SelectError::EmptyInput);
    }

    #[test]
    fn quantile_ranks_are_strictly_increasing_over_valid_domain() {
        for n in [2usize, 3, 7, 100, 1017] {
            for q in [2usize, 3, n / 2 + 1, n]
                .iter()
                .filter(|&&q| (2..=n).contains(&q))
            {
                let ranks = quantile_ranks(n, *q).unwrap();
                assert_eq!(ranks.len(), q - 1, "n={n} q={q}");
                assert!(
                    ranks.windows(2).all(|w| w[0] < w[1]),
                    "duplicate ranks for n={n} q={q}: {ranks:?}"
                );
                assert!(*ranks.last().unwrap() < n);
            }
        }
    }
}
