//! Structured observability: a deterministic metrics registry, a
//! hierarchical query-span tree, and Perfetto counter tracks.
//!
//! The paper's evaluation is built on per-kernel measurement (Fig. 9's
//! runtime breakdown), but everything *above* the kernel — recursion
//! levels, streaming chunks, retry attempts, buffer-pool behaviour —
//! was previously invisible. This module adds that layer without
//! touching driver signatures:
//!
//! * [`MetricsRegistry`] — fixed-slot counters, gauges, and fixed-bucket
//!   histograms backed by `AtomicU64`. Every metric is declared in an
//!   enum ([`Counter`], [`Gauge`], [`Histogram`]), so updates are a
//!   single indexed atomic add with **zero heap allocation**, and
//!   export order is deterministic.
//! * [`QuerySpan`] — a tree of query → recursion level / streaming
//!   chunk → kernel → retry attempt spans, stamped with *simulated*
//!   time only (never wall clock), so the same seed produces a
//!   bit-identical span log on every run.
//! * Counter tracks — `(timestamp, value)` series for bucket occupancy,
//!   atomic-collision rate, and buffer-pool hit rate, exported as
//!   Perfetto `"ph":"C"` counter events through
//!   [`gpu_sim::trace::chrome_trace_with_counters`].
//!
//! ## Enablement model
//!
//! Observability is **off by default** and is enabled per thread by
//! installing an [`ObsSession`]. Drivers call the free functions in
//! this module unconditionally; with no session installed each call is
//! a thread-local load and a branch — no allocation, and no simulated
//! time is ever advanced (`tests/zero_alloc.rs` pins the former, the
//! `observability` integration suite the latter). With a session
//! installed, the same seed produces a bit-identical metrics snapshot
//! across runs because every input to the registry is derived from the
//! deterministic simulation.
//!
//! ```
//! use sampleselect::{obs, sample_select, SampleSelectConfig};
//!
//! let data: Vec<f32> = (0..10_000).map(|i| ((i * 37) % 1000) as f32).collect();
//! let session = obs::ObsSession::start();
//! let _ = sample_select(&data, 5_000, &SampleSelectConfig::default()).unwrap();
//! let report = session.finish();
//! assert!(report.snapshot.counter("select_queries_total") >= 1);
//! println!("{}", report.snapshot.to_prometheus());
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpu_sim::trace::CounterTrack;
use gpu_sim::Device;

// ---------------------------------------------------------------------
// Metric identifiers
// ---------------------------------------------------------------------

/// Monotonic counters. Each variant owns one atomic slot in the
/// registry; `name()` is the exported metric name (pinned by
/// `bench/metrics_schema.txt` in CI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Driver invocations (nested drivers — e.g. the in-memory recursion
    /// a streaming run finishes with — count individually).
    Queries = 0,
    /// Kernel launches absorbed from the device timeline.
    KernelLaunches,
    /// Recursion levels executed across all queries.
    RecursionLevels,
    /// Streaming chunks processed (all passes).
    StreamingChunks,
    /// Queries that terminated early in an equality bucket (§IV-C).
    EqualityBucketExits,
    /// Global-memory bytes moved by absorbed kernels.
    BytesMoved,
    /// Same-address shared-atomic replays of absorbed kernels.
    SharedAtomicReplays,
    /// Resilience: retries of a failed step.
    Retries,
    /// Resilience: backend fallbacks.
    Fallbacks,
    /// Resilience: exact→approximate degradations.
    Degradations,
    /// Resilience: device faults observed.
    FaultsObserved,
    /// Resilience: silent corruptions caught by verification.
    CorruptionsDetected,
    /// Resilience: answers that passed a rank certificate.
    Certified,
    /// Resilience: streaming runs resumed from a checkpoint.
    Resumed,
    /// Sharding: shard devices launched by the coordinator.
    ShardsLaunched,
    /// Sharding: stragglers hedged onto a spare device.
    StragglersHedged,
    /// Sharding: dead shards recovered by partition replay.
    ShardsRecovered,
    /// Sharding: queries that finished degraded on a survivor quorum.
    QuorumDegradations,
    /// Serving: queries admitted past quota + queue checks.
    Admitted,
    /// Serving: queries rejected at admission (quota or queue full).
    Rejected,
    /// Serving: queries degraded because their deadline expired (in
    /// queue or via the resilient driver's time budget).
    DeadlineDegraded,
    /// Serving: circuit-breaker open transitions (device quarantined).
    BreakerOpen,
    /// Serving: rank queries answered by a merged `multiselect` batch.
    Batched,
    /// Planner: queries routed to the RadixSelect backend.
    PlannerRadix,
    /// Planner: queries routed to the SampleSelect backend.
    PlannerSample,
    /// Planner: queries routed to the QuickSelect backend.
    PlannerQuick,
    /// Planner: queries routed to the fused top-k backend.
    PlannerTopk,
    /// Planner: decisions where live obs signals overrode the analytic
    /// cost model's first choice.
    PlannerOverrides,
    /// Planner: top-k queries routed to the bucketed approximate
    /// backend instead of the exact fused recursion.
    PlannerApproxTopk,
    /// Workloads: approximate top-k queries executed (any entry point).
    ApproxTopkQueries,
    /// Workloads: quantile-telemetry windows finalized (tumbling or
    /// sliding) by the streaming quantile engine.
    QuantileWindows,
    /// Workloads: quantile-stream checkpoints persisted by the
    /// telemetry engine (one per completed window boundary).
    QuantileCheckpoints,
}

impl Counter {
    pub const ALL: [Counter; 32] = [
        Counter::Queries,
        Counter::KernelLaunches,
        Counter::RecursionLevels,
        Counter::StreamingChunks,
        Counter::EqualityBucketExits,
        Counter::BytesMoved,
        Counter::SharedAtomicReplays,
        Counter::Retries,
        Counter::Fallbacks,
        Counter::Degradations,
        Counter::FaultsObserved,
        Counter::CorruptionsDetected,
        Counter::Certified,
        Counter::Resumed,
        Counter::ShardsLaunched,
        Counter::StragglersHedged,
        Counter::ShardsRecovered,
        Counter::QuorumDegradations,
        Counter::Admitted,
        Counter::Rejected,
        Counter::DeadlineDegraded,
        Counter::BreakerOpen,
        Counter::Batched,
        Counter::PlannerRadix,
        Counter::PlannerSample,
        Counter::PlannerQuick,
        Counter::PlannerTopk,
        Counter::PlannerOverrides,
        Counter::PlannerApproxTopk,
        Counter::ApproxTopkQueries,
        Counter::QuantileWindows,
        Counter::QuantileCheckpoints,
    ];
    pub const COUNT: usize = Self::ALL.len();

    pub fn name(self) -> &'static str {
        match self {
            Counter::Queries => "select_queries_total",
            Counter::KernelLaunches => "select_kernel_launches_total",
            Counter::RecursionLevels => "select_recursion_levels_total",
            Counter::StreamingChunks => "select_streaming_chunks_total",
            Counter::EqualityBucketExits => "select_equality_bucket_exits_total",
            Counter::BytesMoved => "select_bytes_moved_total",
            Counter::SharedAtomicReplays => "select_shared_atomic_replays_total",
            Counter::Retries => "select_retries_total",
            Counter::Fallbacks => "select_fallbacks_total",
            Counter::Degradations => "select_degradations_total",
            Counter::FaultsObserved => "select_faults_observed_total",
            Counter::CorruptionsDetected => "select_corruptions_detected_total",
            Counter::Certified => "select_certified_total",
            Counter::Resumed => "select_resumed_total",
            Counter::ShardsLaunched => "select_shards_launched_total",
            Counter::StragglersHedged => "select_stragglers_hedged_total",
            Counter::ShardsRecovered => "select_shards_recovered_total",
            Counter::QuorumDegradations => "select_quorum_degradations_total",
            Counter::Admitted => "select_admitted_total",
            Counter::Rejected => "select_rejected_total",
            Counter::DeadlineDegraded => "select_deadline_degraded_total",
            Counter::BreakerOpen => "select_breaker_open_total",
            Counter::Batched => "select_batched_total",
            Counter::PlannerRadix => "select_planner_radix_total",
            Counter::PlannerSample => "select_planner_sample_total",
            Counter::PlannerQuick => "select_planner_quick_total",
            Counter::PlannerTopk => "select_planner_topk_total",
            Counter::PlannerOverrides => "select_planner_overrides_total",
            Counter::PlannerApproxTopk => "select_planner_approx_topk_total",
            Counter::ApproxTopkQueries => "select_approx_topk_queries_total",
            Counter::QuantileWindows => "select_quantile_windows_total",
            Counter::QuantileCheckpoints => "select_quantile_checkpoints_total",
        }
    }
}

/// Last-observed-value gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Non-empty buckets of the most recent count/reduce level.
    BucketOccupancy = 0,
    /// Shared-atomic replays per warp op of the most recent count
    /// kernel, in parts per million.
    AtomicCollisionRatePpm,
    /// Buffer-pool hits per acquire, in parts per million.
    PoolHitRatePpm,
    /// Cumulative buffer-pool acquires on the observed device.
    PoolAcquires,
    /// Cumulative buffer-pool hits.
    PoolHits,
    /// Cumulative buffer-pool misses.
    PoolMisses,
    /// Active host SIMD dispatch level (0 = off, 1 = scalar fallback,
    /// 2 = AVX2), as resolved by `SELECT_SIMD` at startup.
    SimdDispatchLevel,
}

impl Gauge {
    pub const ALL: [Gauge; 7] = [
        Gauge::BucketOccupancy,
        Gauge::AtomicCollisionRatePpm,
        Gauge::PoolHitRatePpm,
        Gauge::PoolAcquires,
        Gauge::PoolHits,
        Gauge::PoolMisses,
        Gauge::SimdDispatchLevel,
    ];
    pub const COUNT: usize = Self::ALL.len();

    pub fn name(self) -> &'static str {
        match self {
            Gauge::BucketOccupancy => "select_bucket_occupancy",
            Gauge::AtomicCollisionRatePpm => "select_atomic_collision_rate_ppm",
            Gauge::PoolHitRatePpm => "select_pool_hit_rate_ppm",
            Gauge::PoolAcquires => "select_pool_acquires",
            Gauge::PoolHits => "select_pool_hits",
            Gauge::PoolMisses => "select_pool_misses",
            Gauge::SimdDispatchLevel => "select_simd_dispatch_level",
        }
    }
}

/// Fixed-bucket histograms. Bucket bounds are compile-time constants so
/// observation is a linear scan over at most [`HIST_SLOTS`] slots with
/// no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Histogram {
    /// Simulated kernel duration in nanoseconds.
    KernelDurationNs = 0,
    /// Elements surviving into the next recursion level.
    LevelKeptElements,
    /// Retries needed per streaming chunk load.
    ChunkLoadRetries,
}

/// Upper bound on histogram bucket count (`bounds().len() + 1` ≤ this).
pub const HIST_SLOTS: usize = 7;

impl Histogram {
    pub const ALL: [Histogram; 3] = [
        Histogram::KernelDurationNs,
        Histogram::LevelKeptElements,
        Histogram::ChunkLoadRetries,
    ];
    pub const COUNT: usize = Self::ALL.len();

    pub fn name(self) -> &'static str {
        match self {
            Histogram::KernelDurationNs => "select_kernel_duration_ns",
            Histogram::LevelKeptElements => "select_level_kept_elements",
            Histogram::ChunkLoadRetries => "select_chunk_load_retries",
        }
    }

    /// Inclusive upper bounds of the finite buckets; one implicit
    /// `+Inf` bucket follows.
    pub fn bounds(self) -> &'static [u64] {
        match self {
            Histogram::KernelDurationNs => &[1_000, 10_000, 100_000, 1_000_000, 10_000_000],
            Histogram::LevelKeptElements => &[1_024, 16_384, 262_144, 4_194_304],
            Histogram::ChunkLoadRetries => &[0, 1, 2],
        }
    }
}

/// Perfetto counter tracks sampled by the drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    BucketOccupancy = 0,
    AtomicCollisionRate,
    BufferPoolHitRate,
}

impl Track {
    pub const ALL: [Track; 3] = [
        Track::BucketOccupancy,
        Track::AtomicCollisionRate,
        Track::BufferPoolHitRate,
    ];
    pub const COUNT: usize = Self::ALL.len();

    pub fn name(self) -> &'static str {
        match self {
            Track::BucketOccupancy => "bucket_occupancy",
            Track::AtomicCollisionRate => "atomic_collision_rate",
            Track::BufferPoolHitRate => "buffer_pool_hit_rate",
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// Fixed-slot metrics storage. All updates are relaxed atomic ops on
/// pre-allocated slots; the registry never allocates after
/// construction.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hist_buckets: [[AtomicU64; HIST_SLOTS]; Histogram::COUNT],
    hist_sum: [AtomicU64; Histogram::COUNT],
    hist_count: [AtomicU64; Histogram::COUNT],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; HIST_SLOTS] = [ZERO; HIST_SLOTS];

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self {
            counters: [ZERO; Counter::COUNT],
            gauges: [ZERO; Gauge::COUNT],
            hist_buckets: [ZERO_ROW; Histogram::COUNT],
            hist_sum: [ZERO; Histogram::COUNT],
            hist_count: [ZERO; Histogram::COUNT],
        }
    }

    pub fn add(&self, c: Counter, v: u64) {
        self.counters[c as usize].fetch_add(v, Ordering::Relaxed);
    }

    pub fn set(&self, g: Gauge, v: u64) {
        self.gauges[g as usize].store(v, Ordering::Relaxed);
    }

    pub fn observe(&self, h: Histogram, v: u64) {
        let bounds = h.bounds();
        let slot = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
        self.hist_buckets[h as usize][slot].fetch_add(1, Ordering::Relaxed);
        self.hist_sum[h as usize].fetch_add(v, Ordering::Relaxed);
        self.hist_count[h as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot every metric in declaration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), self.counters[c as usize].load(Ordering::Relaxed)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), self.gauges[g as usize].load(Ordering::Relaxed)))
                .collect(),
            histograms: Histogram::ALL
                .iter()
                .map(|&h| HistogramSnapshot {
                    name: h.name(),
                    bounds: h.bounds(),
                    buckets: (0..=h.bounds().len())
                        .map(|i| self.hist_buckets[h as usize][i].load(Ordering::Relaxed))
                        .collect(),
                    sum: self.hist_sum[h as usize].load(Ordering::Relaxed),
                    count: self.hist_count[h as usize].load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// Point-in-time copy of every metric, in deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, u64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    pub bounds: &'static [u64],
    /// Per-bucket observation counts; `buckets[bounds.len()]` is the
    /// overflow (`+Inf`) bucket.
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl MetricsSnapshot {
    /// The complete, ordered metric-name list (the CI drift schema).
    pub fn metric_names() -> Vec<&'static str> {
        Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .chain(Histogram::ALL.iter().map(|h| h.name()))
            .collect()
    }

    /// Value of one counter by exported name (0 if unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of one gauge by exported name (0 if unknown).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// JSON exposition (hand-rolled like the rest of the workspace — the
    /// metric names are static identifiers, so no escaping is needed).
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"select-metrics-v1\",\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {{\"bounds\": [", h.name);
            for (j, b) in h.bounds.iter().enumerate() {
                let _ = write!(out, "{}{b}", if j == 0 { "" } else { ", " });
            }
            out.push_str("], \"buckets\": [");
            for (j, c) in h.buckets.iter().enumerate() {
                let _ = write!(out, "{}{c}", if j == 0 { "" } else { ", " });
            }
            let _ = write!(out, "], \"sum\": {}, \"count\": {}}}", h.sum, h.count);
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Prometheus text exposition (version 0.0.4).
    pub fn to_prometheus(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(1024);
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
        }
        for h in &self.histograms {
            let _ = writeln!(out, "# TYPE {} histogram", h.name);
            let mut cumulative = 0u64;
            for (i, b) in h.bounds.iter().enumerate() {
                cumulative += h.buckets[i];
                let _ = writeln!(out, "{}_bucket{{le=\"{b}\"}} {cumulative}", h.name);
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
            let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
            let _ = writeln!(out, "{}_count {}", h.name, h.count);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// The level of a [`QuerySpan`] in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One driver invocation.
    Query,
    /// One recursion level.
    Level,
    /// One streaming chunk within a pass.
    Chunk,
    /// One kernel (or kernel group) within a level/chunk.
    Kernel,
    /// One retry attempt of the resilient driver.
    Attempt,
}

impl SpanKind {
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Level => "level",
            SpanKind::Chunk => "chunk",
            SpanKind::Kernel => "kernel",
            SpanKind::Attempt => "attempt",
        }
    }
}

/// One node of the span tree. Timestamps are simulated nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpan {
    pub kind: SpanKind,
    /// Static label (driver or kernel name).
    pub name: &'static str,
    /// Ordinal within the parent (level number, chunk index, attempt
    /// number; 0 where there is no natural ordinal).
    pub index: u64,
    pub start_ns: f64,
    pub end_ns: f64,
    pub children: Vec<QuerySpan>,
}

impl QuerySpan {
    pub fn duration_ns(&self) -> f64 {
        (self.end_ns - self.start_ns).max(0.0)
    }

    fn render(&self, depth: usize, out: &mut String) {
        use fmt::Write as _;
        let _ = writeln!(
            out,
            "{:indent$}{} {}[{}] start={:.1}ns dur={:.1}ns",
            "",
            self.kind.label(),
            self.name,
            self.index,
            self.start_ns,
            self.duration_ns(),
            indent = depth * 2
        );
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }
}

// ---------------------------------------------------------------------
// Session state (thread-local)
// ---------------------------------------------------------------------

struct ObsState {
    registry: Arc<MetricsRegistry>,
    roots: Vec<QuerySpan>,
    stack: Vec<QuerySpan>,
    tracks: [Vec<(f64, f64)>; Track::COUNT],
    /// Device-timeline cursor for [`absorb_device`] (records before it
    /// were already counted).
    records_absorbed: usize,
    /// Latest simulated timestamp seen, used to close leaked spans.
    last_ns: f64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ObsState>> = const { RefCell::new(None) };
}

/// Everything one [`ObsSession`] collected.
#[derive(Debug, Clone)]
pub struct ObsReport {
    pub snapshot: MetricsSnapshot,
    /// Root spans (one per top-level query).
    pub spans: Vec<QuerySpan>,
    /// Perfetto counter tracks, ready for
    /// [`gpu_sim::trace::chrome_trace_with_counters`].
    pub tracks: Vec<CounterTrack>,
}

impl ObsReport {
    /// Deterministic plain-text rendering of the span tree (the
    /// `selectcli --span-log` format).
    pub fn span_log(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            s.render(0, &mut out);
        }
        out
    }
}

/// RAII guard enabling observability on the current thread. One session
/// at a time per thread; drivers running on this thread feed the
/// registry and span tree until [`ObsSession::finish`] (or drop, which
/// discards the data).
pub struct ObsSession {
    registry: Arc<MetricsRegistry>,
}

impl ObsSession {
    pub fn start() -> Self {
        Self::start_with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Install a session whose counters feed a *shared* registry — the
    /// handle-based enablement the `selectd` server uses: one registry
    /// owned by the server, one session per worker thread, so N
    /// concurrent queries aggregate into a single fixed-slot snapshot
    /// while spans stay per-thread.
    pub fn start_with_registry(registry: Arc<MetricsRegistry>) -> Self {
        ACTIVE.with(|a| {
            *a.borrow_mut() = Some(ObsState {
                registry: Arc::clone(&registry),
                roots: Vec::new(),
                stack: Vec::new(),
                tracks: [const { Vec::new() }; Track::COUNT],
                records_absorbed: 0,
                last_ns: 0.0,
            });
        });
        ObsSession { registry }
    }

    /// Shared handle to the live registry (e.g. to snapshot mid-run).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Uninstall the session and return everything it collected. Spans
    /// left open by an error path are closed at the latest observed
    /// simulated timestamp.
    pub fn finish(self) -> ObsReport {
        let state = ACTIVE.with(|a| a.borrow_mut().take());
        let registry = Arc::clone(&self.registry);
        std::mem::forget(self);
        let Some(mut st) = state else {
            return ObsReport {
                snapshot: registry.snapshot(),
                spans: Vec::new(),
                tracks: Vec::new(),
            };
        };
        while let Some(mut span) = st.stack.pop() {
            span.end_ns = span.end_ns.max(st.last_ns);
            match st.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => st.roots.push(span),
            }
        }
        let tracks = Track::ALL
            .iter()
            .map(|&t| CounterTrack {
                name: t.name().to_string(),
                samples: std::mem::take(&mut st.tracks[t as usize]),
            })
            .collect();
        ObsReport {
            snapshot: st.registry.snapshot(),
            spans: st.roots,
            tracks,
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            *a.borrow_mut() = None;
        });
    }
}

// ---------------------------------------------------------------------
// Driver-facing free functions (no-ops without a session)
// ---------------------------------------------------------------------

/// Whether an [`ObsSession`] is installed on this thread. Drivers use
/// this to skip derived-value computation (e.g. bucket-occupancy scans)
/// entirely when observability is off.
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

fn with_state<R>(f: impl FnOnce(&mut ObsState) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(f))
}

/// Increment a counter.
pub fn counter_add(c: Counter, v: u64) {
    with_state(|st| st.registry.add(c, v));
}

/// Set a gauge.
pub fn gauge_set(g: Gauge, v: u64) {
    with_state(|st| st.registry.set(g, v));
}

/// Record one histogram observation.
pub fn observe(h: Histogram, v: u64) {
    with_state(|st| st.registry.observe(h, v));
}

/// Open a span at simulated time `now_ns`.
pub fn span_enter(kind: SpanKind, name: &'static str, index: u64, now_ns: f64) {
    with_state(|st| {
        st.last_ns = st.last_ns.max(now_ns);
        st.stack.push(QuerySpan {
            kind,
            name,
            index,
            start_ns: now_ns,
            end_ns: now_ns,
            children: Vec::new(),
        });
    });
}

/// Close the innermost open span at simulated time `now_ns`.
pub fn span_exit(now_ns: f64) {
    with_state(|st| {
        st.last_ns = st.last_ns.max(now_ns);
        if let Some(mut span) = st.stack.pop() {
            span.end_ns = now_ns.max(span.start_ns);
            match st.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => st.roots.push(span),
            }
        }
    });
}

/// Current open-span depth; pair with [`span_close_to`] to unwind
/// error paths that skipped their `span_exit` calls.
pub fn span_depth() -> usize {
    with_state(|st| st.stack.len()).unwrap_or(0)
}

/// Close open spans until at most `depth` remain, stamping them with
/// the latest simulated timestamp the session has seen. The panic-path
/// variant of [`span_close_to`]: an unwinding driver has no device at
/// hand to ask for `now`.
pub fn span_unwind_to(depth: usize) {
    with_state(|st| {
        while st.stack.len() > depth {
            let mut span = st.stack.pop().expect("stack non-empty");
            span.end_ns = st.last_ns.max(span.start_ns);
            match st.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => st.roots.push(span),
            }
        }
    });
}

/// RAII span-stack protector for code that may panic mid-query.
///
/// A panicking driver leaves its open spans on the thread's session
/// stack; if the panic is caught (a server worker isolating one bad
/// query), the *next* query on that thread would nest inside the
/// dangling spans and every later snapshot would differ. Taking a
/// `SpanGuard` before running the driver and dropping it after (drop
/// runs during unwinding too) restores the stack to its entry depth, so
/// a caught panic leaves the session exactly as it found it.
///
/// On the non-panic path the guard is a no-op for balanced drivers —
/// they already closed everything they opened.
pub struct SpanGuard {
    depth: usize,
}

impl SpanGuard {
    pub fn new() -> Self {
        SpanGuard {
            depth: span_depth(),
        }
    }
}

impl Default for SpanGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        span_unwind_to(self.depth);
    }
}

/// Close open spans until at most `depth` remain (no-op if already
/// shallower). Used by the resilient driver to discard the partial span
/// stack of a failed attempt.
pub fn span_close_to(depth: usize, now_ns: f64) {
    with_state(|st| {
        st.last_ns = st.last_ns.max(now_ns);
        while st.stack.len() > depth {
            let mut span = st.stack.pop().expect("stack non-empty");
            span.end_ns = now_ns.max(span.start_ns);
            match st.stack.last_mut() {
                Some(parent) => parent.children.push(span),
                None => st.roots.push(span),
            }
        }
    });
}

/// Append one `(ts_us, value)` sample to a Perfetto counter track.
pub fn track_sample(t: Track, ts_us: f64, value: f64) {
    with_state(|st| st.tracks[t as usize].push((ts_us, value)));
}

/// Absorb the device's kernel timeline into the registry: launches,
/// bytes moved, shared-atomic replays, and the duration histogram.
/// Idempotent per record — a cursor remembers what was already counted,
/// so nested drivers (streaming → in-memory recursion) never count a
/// kernel twice. A device reset rewinds the cursor.
pub fn absorb_device(device: &Device) {
    with_state(|st| {
        let recs = device.records();
        if st.records_absorbed > recs.len() {
            st.records_absorbed = 0; // device was reset
        }
        for rec in &recs[st.records_absorbed..] {
            st.registry.add(Counter::KernelLaunches, 1);
            st.registry
                .add(Counter::BytesMoved, rec.cost.total_global_bytes());
            st.registry
                .add(Counter::SharedAtomicReplays, rec.cost.shared_atomic_replays);
            st.registry
                .observe(Histogram::KernelDurationNs, rec.duration.as_ns() as u64);
        }
        st.records_absorbed = recs.len();
        st.last_ns = st.last_ns.max(device.now().as_ns());
    });
}

/// Sample the device's buffer-pool statistics into the pool gauges and
/// the `buffer_pool_hit_rate` counter track.
pub fn pool_sample(device: &Device) {
    if !enabled() {
        return;
    }
    let Some(stats) = device.buffer_pool_stats() else {
        return;
    };
    let ts_us = device.now().as_us();
    let rate_ppm = (stats.hits * 1_000_000)
        .checked_div(stats.acquires)
        .unwrap_or(0);
    gauge_set(Gauge::PoolAcquires, stats.acquires);
    gauge_set(Gauge::PoolHits, stats.hits);
    gauge_set(Gauge::PoolMisses, stats.misses);
    gauge_set(Gauge::PoolHitRatePpm, rate_ppm);
    track_sample(
        Track::BufferPoolHitRate,
        ts_us,
        rate_ppm as f64 / 1_000_000.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_calls_are_no_ops() {
        assert!(!enabled());
        counter_add(Counter::Queries, 1);
        gauge_set(Gauge::BucketOccupancy, 7);
        observe(Histogram::KernelDurationNs, 500);
        span_enter(SpanKind::Query, "q", 0, 0.0);
        span_exit(1.0);
        track_sample(Track::BucketOccupancy, 0.0, 1.0);
        assert_eq!(span_depth(), 0);
        // a fresh session sees none of it
        let report = ObsSession::start().finish();
        assert_eq!(report.snapshot.counter("select_queries_total"), 0);
        assert!(report.spans.is_empty());
    }

    #[test]
    fn registry_counts_and_snapshots_deterministically() {
        let session = ObsSession::start();
        counter_add(Counter::Queries, 2);
        gauge_set(Gauge::BucketOccupancy, 212);
        observe(Histogram::KernelDurationNs, 500); // bucket le=1000
        observe(Histogram::KernelDurationNs, 5_000_000); // le=10_000_000
        observe(Histogram::KernelDurationNs, u64::MAX / 2); // +Inf
        let report = session.finish();
        assert_eq!(report.snapshot.counter("select_queries_total"), 2);
        assert_eq!(report.snapshot.gauge("select_bucket_occupancy"), 212);
        let h = &report.snapshot.histograms[0];
        assert_eq!(h.name, "select_kernel_duration_ns");
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(*h.buckets.last().unwrap(), 1);
        assert_eq!(h.count, 3);
        // metric-name list matches the snapshot contents, in order
        let names = MetricsSnapshot::metric_names();
        let mut seen: Vec<&str> = report.snapshot.counters.iter().map(|(n, _)| *n).collect();
        seen.extend(report.snapshot.gauges.iter().map(|(n, _)| *n));
        seen.extend(report.snapshot.histograms.iter().map(|h| h.name));
        assert_eq!(names, seen);
    }

    #[test]
    fn span_tree_nests_and_survives_leaks() {
        let session = ObsSession::start();
        span_enter(SpanKind::Query, "sampleselect", 0, 0.0);
        span_enter(SpanKind::Level, "level", 0, 10.0);
        span_enter(SpanKind::Kernel, "count", 0, 20.0);
        span_exit(30.0);
        span_exit(40.0);
        span_enter(SpanKind::Level, "level", 1, 50.0);
        // leak: query + level 1 left open — finish() closes them
        let report = session.finish();
        assert_eq!(report.spans.len(), 1);
        let q = &report.spans[0];
        assert_eq!(q.kind, SpanKind::Query);
        assert_eq!(q.children.len(), 2);
        assert_eq!(q.children[0].children[0].name, "count");
        assert!((q.children[0].duration_ns() - 30.0).abs() < 1e-9);
        assert_eq!(q.children[1].index, 1);
        let log = report.span_log();
        assert!(log.contains("query sampleselect[0]"));
        assert!(log.contains("  level level[0]"));
        assert!(log.contains("    kernel count[0]"));
    }

    #[test]
    fn span_close_to_unwinds_failed_attempts() {
        let session = ObsSession::start();
        span_enter(SpanKind::Query, "resilient", 0, 0.0);
        let depth = span_depth();
        span_enter(SpanKind::Attempt, "sampleselect", 0, 1.0);
        span_enter(SpanKind::Level, "level", 0, 2.0);
        // attempt fails mid-level; unwind back to the query
        span_close_to(depth, 9.0);
        assert_eq!(span_depth(), depth);
        span_exit(10.0);
        let report = session.finish();
        let q = &report.spans[0];
        assert_eq!(q.children.len(), 1);
        assert_eq!(q.children[0].kind, SpanKind::Attempt);
        assert!((q.children[0].end_ns - 9.0).abs() < 1e-9);
    }

    #[test]
    fn span_guard_restores_stack_across_caught_panic() {
        let session = ObsSession::start();
        span_enter(SpanKind::Query, "server", 0, 0.0);
        let result = std::panic::catch_unwind(|| {
            let _guard = SpanGuard::new();
            span_enter(SpanKind::Attempt, "sampleselect", 0, 5.0);
            span_enter(SpanKind::Level, "level", 0, 6.0);
            panic!("injected driver panic");
        });
        assert!(result.is_err());
        // the guard unwound the panicking query's spans
        assert_eq!(span_depth(), 1);
        span_enter(SpanKind::Attempt, "next-query", 0, 10.0);
        span_exit(12.0);
        span_exit(20.0);
        let report = session.finish();
        let q = &report.spans[0];
        // the dangling Attempt/Level pair was closed under the server
        // span; the next query is a clean sibling, not a grandchild
        assert_eq!(q.children.len(), 2);
        assert_eq!(q.children[1].name, "next-query");
        assert!(q.children[1].children.is_empty());
    }

    #[test]
    fn shared_registry_aggregates_across_sessions() {
        let registry = Arc::new(MetricsRegistry::new());
        let r1 = Arc::clone(&registry);
        let r2 = Arc::clone(&registry);
        let t1 = std::thread::spawn(move || {
            let s = ObsSession::start_with_registry(r1);
            counter_add(Counter::Admitted, 3);
            s.finish();
        });
        let t2 = std::thread::spawn(move || {
            let s = ObsSession::start_with_registry(r2);
            counter_add(Counter::Admitted, 4);
            counter_add(Counter::Rejected, 1);
            s.finish();
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("select_admitted_total"), 7);
        assert_eq!(snap.counter("select_rejected_total"), 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let session = ObsSession::start();
        counter_add(Counter::Retries, 3);
        observe(Histogram::ChunkLoadRetries, 1);
        observe(Histogram::ChunkLoadRetries, 5);
        let report = session.finish();
        let prom = report.snapshot.to_prometheus();
        assert!(prom.contains("# TYPE select_retries_total counter\nselect_retries_total 3"));
        assert!(prom.contains("select_chunk_load_retries_bucket{le=\"1\"} 1"));
        assert!(prom.contains("select_chunk_load_retries_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("select_chunk_load_retries_sum 6"));
        assert!(prom.contains("select_chunk_load_retries_count 2"));
    }

    #[test]
    fn json_exposition_is_wellformed_and_deterministic() {
        let build = || {
            let session = ObsSession::start();
            counter_add(Counter::Queries, 1);
            observe(Histogram::LevelKeptElements, 300);
            session.finish().snapshot.to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same inputs must snapshot bit-identically");
        assert!(a.contains("\"schema\": \"select-metrics-v1\""));
        assert!(a.contains("\"select_queries_total\": 1"));
        // parses with the workspace's own strict JSON validator
        gpu_sim::jsonv::parse(&a).expect("snapshot JSON parses");
    }
}
