//! Tuning parameters and configuration (§IV-H of the paper).
//!
//! Every knob the paper lists — work distribution, sample size, number
//! of buckets, unrolling, atomic strategy, base-case size — is a field
//! of [`SampleSelectConfig`], so the Fig. 7 parameter-tuning sweeps are
//! plain loops over configurations.

use crate::verify::VerifyPolicy;
use gpu_sim::arch::{GpuArchitecture, GpuGeneration};

/// Where the bucket counters live (§IV-G): per-block shared-memory
/// counters followed by a reduction, or device-wide global-memory
/// counters updated directly.
///
/// The paper's plot labels `-s` and `-g` correspond to `Shared` and
/// `Global`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicScope {
    /// Block-local counters in shared memory + `reduce` kernel.
    Shared,
    /// One global counter array updated by every thread.
    Global,
}

impl AtomicScope {
    /// The suffix used in the paper's figures ("sample-s", "quick-g", …).
    pub fn suffix(self) -> &'static str {
        match self {
            AtomicScope::Shared => "s",
            AtomicScope::Global => "g",
        }
    }
}

/// Errors from configuration validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Bucket count must be a power of two in `4..=1024` (the implicit
    /// search tree requires a complete binary tree).
    InvalidBucketCount(usize),
    /// Exact selection stores one *oracle byte* per element, limiting
    /// it to 256 buckets (§IV-B: "we use a single byte to store each
    /// oracle, limiting us to at most 256 buckets") — unless wide
    /// (2-byte) oracles are explicitly enabled.
    TooManyBucketsForOracles(usize),
    /// Threads per block must be a positive multiple of 32, at most 1024.
    InvalidThreadsPerBlock(u32),
    /// Items per thread (unrolling depth) must be in `1..=16`.
    InvalidItemsPerThread(u32),
    /// Oversampling factor must be at least 1.
    InvalidOversampling(usize),
    /// Base case must be at least 2 elements.
    InvalidBaseCase(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InvalidBucketCount(b) => {
                write!(f, "bucket count {b} is not a power of two in 4..=1024")
            }
            ConfigError::TooManyBucketsForOracles(b) => write!(
                f,
                "{b} buckets exceed the 256 representable in one oracle byte; \
                 enable wide_oracles or reduce the bucket count"
            ),
            ConfigError::InvalidThreadsPerBlock(t) => {
                write!(
                    f,
                    "threads per block {t} is not a multiple of 32 in 32..=1024"
                )
            }
            ConfigError::InvalidItemsPerThread(i) => {
                write!(f, "items per thread {i} outside 1..=16")
            }
            ConfigError::InvalidOversampling(s) => {
                write!(f, "oversampling factor {s} must be >= 1")
            }
            ConfigError::InvalidBaseCase(b) => write!(f, "base case size {b} must be >= 2"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of the SampleSelect (and QuickSelect) drivers.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSelectConfig {
    /// Number of buckets `b` per recursion level (power of two). The
    /// paper's default/fastest exact configuration uses 256 (one oracle
    /// byte); the approximate variant benefits from up to 1024 (§V-G).
    pub num_buckets: usize,
    /// Splitters are the `i/b` percentiles of a sample of
    /// `oversampling * num_buckets` elements (§II-B: sample size
    /// controls splitter imbalance).
    pub oversampling: usize,
    /// Threads per block of the data-parallel kernels (Fig. 7 sweeps
    /// 256/512/1024).
    pub threads_per_block: u32,
    /// Elements processed per thread — the unrolling depth of §IV-H(d)
    /// (Fig. 7 sweeps 2/4/8).
    pub items_per_thread: u32,
    /// Upper bound on grid size; larger inputs are covered grid-stride.
    /// Bounds the per-block partial-count array of the two-pass scheme.
    pub max_grid_blocks: u32,
    /// Shared vs. global atomic counters (§IV-G).
    pub atomic_scope: AtomicScope,
    /// Warp-aggregated atomics (Fig. 6 / §IV-G): one atomic per distinct
    /// bucket per warp instead of one per thread.
    pub warp_aggregation: bool,
    /// Input size below which the driver switches to the bitonic
    /// sorting-based selection (§IV-H(f)).
    pub base_case_size: usize,
    /// Allow 2-byte oracles so exact selection can exceed 256 buckets —
    /// an ablation *extension* of the paper's design (the paper fixes
    /// one byte).
    pub wide_oracles: bool,
    /// Reject inputs containing NaN before running (costs one scan).
    pub check_input: bool,
    /// Seed for the splitter-sampling RNG (fixed for reproducibility;
    /// vary per repetition in benchmarks).
    pub seed: u64,
    /// Cap on recursion levels before the driver gives up with
    /// [`crate::SelectError::RecursionLimit`]. `None` uses the
    /// algorithm's own default (64 for SampleSelect, 512 for
    /// QuickSelect); the resilient driver sets a tight cap so degenerate
    /// splitter draws trigger a backend fallback quickly.
    pub max_levels: Option<u32>,
    /// Work budget as a multiple of `n`: once the cumulative elements
    /// processed across recursion levels exceed `factor * n`, the driver
    /// stops with [`crate::SelectError::RecursionLimit`]. `None` means
    /// unlimited. A healthy run processes ~`n * (1 + 1/b + ...)` ≈ `1.1n`
    /// elements, so factors of 2–4 only trip on degenerate recursions.
    pub work_budget_factor: Option<f64>,
    /// Algorithm-based fault-tolerance level (see [`crate::verify`]):
    /// `Off` (default) runs no integrity checks, `Spot` checks the cheap
    /// per-level invariants, `Paranoid` additionally certifies the final
    /// result with one O(n) rank-counting pass.
    pub verify: VerifyPolicy,
    /// Streaming driver only: overlap loading chunk `c + 1` with the
    /// count/filter passes over chunk `c` (double buffering on the host
    /// thread pool). Functionally bit-identical with the setting off;
    /// only wall-clock time changes.
    pub stream_prefetch: bool,
}

impl Default for SampleSelectConfig {
    fn default() -> Self {
        Self {
            num_buckets: 256,
            oversampling: 4,
            threads_per_block: 256,
            items_per_thread: 4,
            max_grid_blocks: 4096,
            atomic_scope: AtomicScope::Shared,
            warp_aggregation: false,
            base_case_size: 1024,
            wide_oracles: false,
            check_input: false,
            seed: 0x5eed_5e1ec7,
            max_levels: None,
            work_budget_factor: None,
            verify: VerifyPolicy::Off,
            stream_prefetch: true,
        }
    }
}

impl SampleSelectConfig {
    /// The configuration the paper found fastest for a given
    /// architecture (§V-C/§V-E): Kepler favours global atomics with warp
    /// aggregation; Maxwell+ favours native shared atomics without.
    pub fn tuned_for(arch: &GpuArchitecture) -> Self {
        let mut cfg = Self::default();
        if arch.generation.has_native_shared_atomics() {
            cfg.atomic_scope = AtomicScope::Shared;
            cfg.warp_aggregation = false;
        } else {
            cfg.atomic_scope = AtomicScope::Global;
            cfg.warp_aggregation = true;
        }
        cfg
    }

    /// Total sample size drawn by the sample kernel.
    pub fn sample_size(&self) -> usize {
        self.num_buckets * self.oversampling
    }

    /// Number of splitters (`b - 1`).
    pub fn num_splitters(&self) -> usize {
        self.num_buckets - 1
    }

    /// Search-tree height `log2(b)` (Fig. 4's `tree_height`).
    pub fn tree_height(&self) -> u32 {
        self.num_buckets.trailing_zeros()
    }

    /// Bytes per stored oracle (1 normally, 2 with `wide_oracles`).
    pub fn oracle_bytes(&self) -> usize {
        if self.num_buckets > 256 {
            2
        } else {
            1
        }
    }

    /// Validate the configuration for exact selection (which writes
    /// oracles). Approximate selection calls
    /// [`SampleSelectConfig::validate_count_only`] instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.validate_count_only()?;
        if self.num_buckets > 256 && !self.wide_oracles {
            return Err(ConfigError::TooManyBucketsForOracles(self.num_buckets));
        }
        Ok(())
    }

    /// Validate everything except the oracle-width constraint (the
    /// count-only approximate variant stores no oracles, so up to 1024
    /// buckets are allowed, §V-G).
    pub fn validate_count_only(&self) -> Result<(), ConfigError> {
        let b = self.num_buckets;
        if !b.is_power_of_two() || !(4..=1024).contains(&b) {
            return Err(ConfigError::InvalidBucketCount(b));
        }
        let t = self.threads_per_block;
        if t == 0 || !t.is_multiple_of(32) || t > 1024 {
            return Err(ConfigError::InvalidThreadsPerBlock(t));
        }
        if !(1..=16).contains(&self.items_per_thread) {
            return Err(ConfigError::InvalidItemsPerThread(self.items_per_thread));
        }
        if self.oversampling == 0 {
            return Err(ConfigError::InvalidOversampling(self.oversampling));
        }
        if self.base_case_size < 2 {
            return Err(ConfigError::InvalidBaseCase(self.base_case_size));
        }
        Ok(())
    }

    /// Shared-memory bytes one block of the count kernel needs: the
    /// implicit search tree (`b-1` nodes of `elem_bytes`) plus `b`
    /// 4-byte counters (only under [`AtomicScope::Shared`]).
    pub fn count_kernel_smem_bytes(&self, elem_bytes: usize) -> u32 {
        let tree = self.num_splitters() * elem_bytes;
        let counters = match self.atomic_scope {
            AtomicScope::Shared => self.num_buckets * 4,
            AtomicScope::Global => 0,
        };
        (tree + counters) as u32
    }

    /// Grid for an `n`-element data-parallel pass.
    pub fn launch_config(&self, n: usize, elem_bytes: usize) -> gpu_sim::LaunchConfig {
        let mut cfg = gpu_sim::LaunchConfig::for_elements(
            n,
            self.threads_per_block,
            self.items_per_thread,
            self.count_kernel_smem_bytes(elem_bytes),
        );
        cfg.blocks = cfg.blocks.min(self.max_grid_blocks);
        cfg
    }
}

/// Builder-style helpers for the sweeps in the benchmark harness.
impl SampleSelectConfig {
    pub fn with_buckets(mut self, b: usize) -> Self {
        self.num_buckets = b;
        self
    }

    pub fn with_threads(mut self, t: u32) -> Self {
        self.threads_per_block = t;
        self
    }

    pub fn with_items_per_thread(mut self, i: u32) -> Self {
        self.items_per_thread = i;
        self
    }

    pub fn with_atomic_scope(mut self, scope: AtomicScope) -> Self {
        self.atomic_scope = scope;
        self
    }

    pub fn with_warp_aggregation(mut self, on: bool) -> Self {
        self.warp_aggregation = on;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_oversampling(mut self, s: usize) -> Self {
        self.oversampling = s;
        self
    }

    pub fn with_base_case(mut self, b: usize) -> Self {
        self.base_case_size = b;
        self
    }

    pub fn with_wide_oracles(mut self, on: bool) -> Self {
        self.wide_oracles = on;
        self
    }

    pub fn with_max_levels(mut self, levels: u32) -> Self {
        self.max_levels = Some(levels);
        self
    }

    pub fn with_work_budget_factor(mut self, factor: f64) -> Self {
        self.work_budget_factor = Some(factor);
        self
    }

    pub fn with_verify(mut self, policy: VerifyPolicy) -> Self {
        self.verify = policy;
        self
    }

    pub fn with_stream_prefetch(mut self, on: bool) -> Self {
        self.stream_prefetch = on;
        self
    }
}

/// Convenience: does this generation default to warp aggregation?
pub fn default_warp_aggregation(generation: GpuGeneration) -> bool {
    !generation.has_native_shared_atomics()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch::{k20xm, v100};

    #[test]
    fn default_config_is_valid() {
        SampleSelectConfig::default().validate().unwrap();
    }

    #[test]
    fn tuned_configs_follow_the_paper() {
        let k = SampleSelectConfig::tuned_for(&k20xm());
        assert_eq!(k.atomic_scope, AtomicScope::Global);
        assert!(k.warp_aggregation);
        let v = SampleSelectConfig::tuned_for(&v100());
        assert_eq!(v.atomic_scope, AtomicScope::Shared);
        assert!(!v.warp_aggregation);
    }

    #[test]
    fn non_power_of_two_buckets_rejected() {
        let cfg = SampleSelectConfig::default().with_buckets(100);
        assert_eq!(cfg.validate(), Err(ConfigError::InvalidBucketCount(100)));
    }

    #[test]
    fn bucket_range_enforced() {
        assert!(SampleSelectConfig::default()
            .with_buckets(2)
            .validate()
            .is_err());
        assert!(SampleSelectConfig::default()
            .with_buckets(2048)
            .validate()
            .is_err());
        assert!(SampleSelectConfig::default()
            .with_buckets(4)
            .validate()
            .is_ok());
    }

    #[test]
    fn oracle_byte_limit_enforced_for_exact_only() {
        let cfg = SampleSelectConfig::default().with_buckets(512);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::TooManyBucketsForOracles(512))
        );
        // count-only (approximate) mode allows it
        assert!(cfg.validate_count_only().is_ok());
        // and wide oracles lift the limit for exact mode
        assert!(cfg.with_wide_oracles(true).validate().is_ok());
    }

    #[test]
    fn oracle_width_tracks_bucket_count() {
        assert_eq!(SampleSelectConfig::default().oracle_bytes(), 1);
        assert_eq!(
            SampleSelectConfig::default()
                .with_buckets(512)
                .oracle_bytes(),
            2
        );
    }

    #[test]
    fn thread_count_must_be_warp_multiple() {
        let cfg = SampleSelectConfig::default().with_threads(100);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidThreadsPerBlock(100))
        ));
        assert!(SampleSelectConfig::default()
            .with_threads(0)
            .validate()
            .is_err());
        assert!(SampleSelectConfig::default()
            .with_threads(1024)
            .validate()
            .is_ok());
    }

    #[test]
    fn derived_quantities() {
        let cfg = SampleSelectConfig::default();
        assert_eq!(cfg.sample_size(), 1024);
        assert_eq!(cfg.num_splitters(), 255);
        assert_eq!(cfg.tree_height(), 8);
    }

    #[test]
    fn smem_footprint_depends_on_scope() {
        let shared = SampleSelectConfig::default();
        let global = SampleSelectConfig::default().with_atomic_scope(AtomicScope::Global);
        assert!(
            shared.count_kernel_smem_bytes(4) > global.count_kernel_smem_bytes(4),
            "shared-scope blocks also hold the counters"
        );
        assert_eq!(global.count_kernel_smem_bytes(4), 255 * 4);
    }

    #[test]
    fn launch_config_caps_grid() {
        let cfg = SampleSelectConfig::default();
        let lc = cfg.launch_config(1 << 28, 4);
        assert!(lc.blocks <= cfg.max_grid_blocks);
        let small = cfg.launch_config(1000, 4);
        assert_eq!(small.blocks, 1);
    }

    #[test]
    fn budget_guards_default_off() {
        let cfg = SampleSelectConfig::default();
        assert_eq!(cfg.max_levels, None);
        assert_eq!(cfg.work_budget_factor, None);
        let guarded = cfg.with_max_levels(8).with_work_budget_factor(3.0);
        assert_eq!(guarded.max_levels, Some(8));
        assert_eq!(guarded.work_budget_factor, Some(3.0));
        guarded.validate().unwrap();
    }

    #[test]
    fn config_error_display_is_informative() {
        let msg = format!("{}", ConfigError::TooManyBucketsForOracles(512));
        assert!(msg.contains("512"));
        assert!(msg.contains("oracle"));
    }
}
