//! Adaptive backend planner: SampleSelect vs QuickSelect vs RadixSelect
//! vs fused top-k, chosen per query.
//!
//! The paper's headline result is that no fixed algorithm dominates:
//! SampleSelect reaches its base case in ~2 data-dependent levels, but
//! pays sampled-splitter and tree-traversal overheads; QuickSelect
//! halves slowly but is cheap per level; RadixSelect burns a fixed
//! `key_bits / 8` passes yet wins when the digits discriminate well
//! (RadiK in PAPERS.md makes the same point for large k). The planner
//! resolves the trade per query from three inputs:
//!
//! 1. a **stack-only data probe** ([`profile_data`]) — a strided sample
//!    of at most [`PROBE_LEN`] sort keys scanned for duplicate pressure,
//!    dead (non-discriminating) leading digits and first-digit skew;
//! 2. the **analytic cost model** — [`gpu_sim::cost::radix_select_estimate`]
//!    plus local estimators for the sample and quickselect recursions,
//!    all in simulated time on the target [`GpuArchitecture`];
//! 3. **live obs signals** ([`PlanSignals`]) — the collision-rate and
//!    bucket-occupancy gauges of prior queries on the same stream; when
//!    they contradict the probe (e.g. the probe missed duplicate
//!    pressure that prior passes observed), the planner overrides the
//!    model's first choice and bumps `select_planner_overrides_total`.
//!
//! The decision is **deterministic** per (data, rank, arch, config,
//! signals): the probe is a fixed stride, the estimators are pure
//! arithmetic, and ties break by the fixed candidate order. This is
//! what makes the differential planner-conformance grid in
//! `tests/planner_matrix.rs` reproducible.
//!
//! Dispatch ([`auto_select_with_workspace`]) calls the *exact same*
//! entry points the forced backends use, so `--algo auto` output is
//! bit-identical to the backend the decision names — pinned by the
//! planner proptests in `tests/properties.rs`.

use crate::element::SelectElement;
use crate::obs::{self, Counter};
use crate::params::SampleSelectConfig;
use crate::quickselect::quick_select_on_device;
use crate::radix::{radix_select_with_workspace, DIGIT_BITS};
use crate::recursion::sample_select_with_workspace;
use crate::topk::{top_k_largest_with_workspace, TopKResult};
use crate::workspace::SelectWorkspace;
use crate::{SelectError, SelectResult};
use gpu_sim::arch::GpuArchitecture;
use gpu_sim::cost::radix_select_estimate;
use gpu_sim::{Device, KernelCost, SimTime};
use hpc_par::simd::{configured_level, SimdLevel};

/// Elements the planner probes (strided) before deciding. Stack-sized:
/// the probe allocates nothing, so planning stays on the zero-alloc
/// warm path.
pub const PROBE_LEN: usize = 256;

/// The backend a plan names. `name()` matches the `algorithm` field of
/// the backend's [`crate::SelectReport`], so a decision can be checked
/// against what actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannedBackend {
    /// Sampled-splitter bucket selection ([`crate::recursion`]).
    Sample,
    /// Median-of-sample three-way partitioning ([`crate::quickselect`]).
    Quick,
    /// MSD radix digit bucketing ([`crate::radix`]).
    Radix,
    /// Fused top-k extraction ([`crate::topk`]) — only planned for
    /// top-k-shaped queries, never for plain rank selection.
    TopK,
    /// Bucketed approximate top-k ([`crate::approx_topk`]) — only
    /// planned for *approximate* top-k queries (a recall target below
    /// 1), where the bucket-parallel local phase beats the exact fused
    /// recursion at large `k`.
    ApproxTopK,
}

impl PlannedBackend {
    /// The `algorithm` label the chosen backend stamps on its report.
    pub fn name(self) -> &'static str {
        match self {
            PlannedBackend::Sample => "sampleselect",
            PlannedBackend::Quick => "quickselect",
            PlannedBackend::Radix => "radixselect",
            PlannedBackend::TopK => "topk-sampleselect",
            PlannedBackend::ApproxTopK => "approx-topk",
        }
    }

    /// The fixed-slot obs counter tallying decisions for this backend.
    pub fn counter(self) -> Counter {
        match self {
            PlannedBackend::Sample => Counter::PlannerSample,
            PlannedBackend::Quick => Counter::PlannerQuick,
            PlannedBackend::Radix => Counter::PlannerRadix,
            PlannedBackend::TopK => Counter::PlannerTopk,
            PlannedBackend::ApproxTopK => Counter::PlannerApproxTopk,
        }
    }

    /// All rank-query candidates, in deterministic tie-break order.
    pub const RANK_CANDIDATES: [PlannedBackend; 3] = [
        PlannedBackend::Sample,
        PlannedBackend::Quick,
        PlannedBackend::Radix,
    ];
}

impl std::fmt::Display for PlannedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a strided probe of the input's sort keys revealed. All shares
/// are in `[0, 1]` over the probe, not the full input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataProfile {
    /// Input length the probe summarizes.
    pub n: usize,
    /// Keys actually probed (`min(n, PROBE_LEN)`).
    pub probe_len: usize,
    /// Distinct sort keys / probed keys. 1.0 means no duplicate was
    /// seen; small values mean heavy duplication (equality-bucket
    /// territory for SampleSelect).
    pub distinct_ratio: f64,
    /// Share of the single most frequent sort key. Drives the expected
    /// same-address atomic replay pressure and QuickSelect's equal-pivot
    /// early exit.
    pub top_value_share: f64,
    /// Leading 8-bit digit positions on which every probed key agrees —
    /// radix passes that scan everything and discriminate nothing
    /// (low-entropy keys, or f64 data in a narrow range).
    pub dead_digits: u32,
    /// Share of the most popular digit value at the first
    /// *discriminating* digit position: radix bucket skew, i.e. how
    /// little the first live pass actually shrinks the problem.
    pub top_digit_share: f64,
}

/// Probe `data` with a fixed stride and summarize its key structure.
///
/// Deterministic (stride `n / PROBE_LEN`, no randomness) and
/// allocation-free: the keys and the digit histogram live on the stack.
pub fn profile_data<T: SelectElement>(data: &[T]) -> DataProfile {
    let n = data.len();
    let key_bits = (T::BYTES * 8) as u32;
    if n == 0 {
        return DataProfile {
            n,
            probe_len: 0,
            distinct_ratio: 1.0,
            top_value_share: 0.0,
            dead_digits: 0,
            top_digit_share: 0.0,
        };
    }
    let take = PROBE_LEN.min(n);
    let stride = n / take;
    let mut keys = [0u64; PROBE_LEN];
    for (i, slot) in keys[..take].iter_mut().enumerate() {
        *slot = data[(i * stride).min(n - 1)].to_sort_key();
    }
    let keys = &mut keys[..take];
    keys.sort_unstable();

    let mut distinct = 1usize;
    let mut run = 1usize;
    let mut max_run = 1usize;
    for i in 1..take {
        if keys[i] == keys[i - 1] {
            run += 1;
        } else {
            distinct += 1;
            max_run = max_run.max(run);
            run = 1;
        }
    }
    max_run = max_run.max(run);

    // Dead leading digits: positions where no probed key differs from
    // the first. The OR of all pairwise XORs marks every bit that
    // varies anywhere in the probe.
    let varying = keys.iter().fold(0u64, |acc, &k| acc | (k ^ keys[0]));
    let total_digits = key_bits / DIGIT_BITS;
    let mut dead_digits = 0u32;
    for d in 0..total_digits {
        let shift = key_bits - DIGIT_BITS * (d + 1);
        if (varying >> shift) & 0xff != 0 {
            break;
        }
        dead_digits += 1;
    }

    // Skew of the first discriminating digit (or of the last digit if
    // every key is identical).
    let live = dead_digits.min(total_digits.saturating_sub(1));
    let shift = key_bits - DIGIT_BITS * (live + 1);
    let mut digit_counts = [0u16; 256];
    for &k in keys.iter() {
        digit_counts[((k >> shift) & 0xff) as usize] += 1;
    }
    let top_digit = digit_counts.iter().copied().max().unwrap_or(0) as f64;

    DataProfile {
        n,
        probe_len: take,
        distinct_ratio: distinct as f64 / take as f64,
        top_value_share: max_run as f64 / take as f64,
        dead_digits,
        top_digit_share: top_digit / take as f64,
    }
}

/// Live observability signals from prior queries on the same stream,
/// fed back into planning. All fields are optional: a cold planner
/// (first query, obs disabled) plans purely from the probe + model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanSignals {
    /// Last observed same-address shared-atomic replay rate, in parts
    /// per million of warp ops (the `select_atomic_collision_rate_ppm`
    /// gauge). High values mean heavier duplicate pressure than the
    /// probe saw.
    pub collision_rate_ppm: Option<u64>,
    /// Last observed non-empty bucket count of a count/histogram level
    /// (the `select_bucket_occupancy` gauge). Very low occupancy means
    /// the key space is collapsing into few buckets — bucket skew.
    pub bucket_occupancy: Option<u64>,
}

impl PlanSignals {
    /// Extract the planner-relevant gauges from a metrics snapshot
    /// (e.g. a `selectd` worker's per-session registry).
    pub fn from_snapshot(snap: &crate::obs::MetricsSnapshot) -> Self {
        let read = |name: &str| {
            let v = snap.gauge(name);
            (v != 0).then_some(v)
        };
        PlanSignals {
            collision_rate_ppm: read("select_atomic_collision_rate_ppm"),
            bucket_occupancy: read("select_bucket_occupancy"),
        }
    }
}

/// Outcome of planning one query: the chosen backend, the full estimate
/// table it was chosen from, and whether live signals overrode the
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDecision {
    /// The backend that will (or did) run.
    pub backend: PlannedBackend,
    /// What the analytic model alone would have picked.
    pub model_choice: PlannedBackend,
    /// Estimated simulated time per candidate, in candidate order.
    pub estimates: Vec<(PlannedBackend, SimTime)>,
    /// True iff live signals overrode the model's first choice.
    pub overridden: bool,
    /// The probe summary the decision was derived from.
    pub profile: DataProfile,
    /// Host SIMD dispatch level active when the plan was made (the
    /// `SELECT_SIMD`-configured level, not any test-forced override, so
    /// planning stays deterministic per process).
    pub host_simd: SimdLevel,
}

impl PlanDecision {
    /// The model's estimate for `backend`, if it was a candidate.
    pub fn estimate_for(&self, backend: PlannedBackend) -> Option<SimTime> {
        self.estimates
            .iter()
            .find(|(b, _)| *b == backend)
            .map(|&(_, t)| t)
    }

    /// Whether two independently planned rank queries may be merged
    /// into one cross-query batch. Queries are co-plannable when the
    /// planner reached the *same* decision for both — same backend pick
    /// means the same execution strategy, so the batcher may supersede
    /// the per-query plans with one shared `multiselect` pass that
    /// amortizes the count phase across the whole group (a group-level
    /// planning decision that beats any per-query backend once two or
    /// more queries share a dataset). Mixed-plan queues never merge:
    /// the plans disagree about the data, so a shared pass would
    /// silently discard one side's decision.
    pub fn merges_with(&self, other: &PlanDecision) -> bool {
        self.backend == other.backend
    }
}

// ---------------------------------------------------------------------
// Analytic estimators
// ---------------------------------------------------------------------

/// Fractional SM occupancy of the standard launch shape over `n`
/// elements — mirror of the (private) heuristic in `gpu_sim::cost`.
fn busy_sms(arch: &GpuArchitecture, n: u64) -> f64 {
    let blocks = n.div_ceil(1024).clamp(1, 4096) as f64;
    blocks.min(arch.num_sms as f64)
}

fn launch_time(arch: &GpuArchitecture, from_device: bool, launches: f64) -> SimTime {
    let us = if from_device && arch.generation.has_dynamic_parallelism() {
        arch.device_launch_us
    } else {
        arch.host_launch_us
    };
    SimTime::from_us(us * launches)
}

fn ceil_log2(n: u64) -> u64 {
    64 - n.max(1).next_power_of_two().leading_zeros() as u64
}

/// Expected same-address replays per warp given the share of the most
/// popular bucket among a warp's 32 lanes.
fn replays_per_warp(top_share: f64) -> u64 {
    ((32.0 * top_share.clamp(0.0, 1.0)) as u64).saturating_sub(1)
}

/// Analytic SampleSelect estimate: sampled splitters, tree-traversal
/// count pass, reduce + filter per level, until the base case — or a
/// single level when duplicate pressure predicts an equality-bucket
/// exit (§IV-C: fewer distinct values than buckets means some splitter
/// pair collides and the target bucket is an equality bucket).
pub fn sample_select_estimate<T: SelectElement>(
    arch: &GpuArchitecture,
    n: u64,
    cfg: &SampleSelectConfig,
    profile: &DataProfile,
) -> SimTime {
    let b = cfg.num_buckets as u64;
    let h = cfg.tree_height() as u64;
    let s = cfg.sample_size() as u64;
    let base = cfg.base_case_size as u64;
    let oracle = cfg.oracle_bytes() as u64;
    let elem = T::BYTES as u64;

    // Duplicate-heavy inputs exit in an equality bucket almost
    // immediately: a saturated probe with fewer distinct keys than
    // half the bucket count predicts splitter collisions on level 0.
    let probe_distinct = (profile.distinct_ratio * profile.probe_len as f64) as u64;
    let equality_exit = profile.probe_len >= PROBE_LEN.min(profile.n) && probe_distinct <= b / 2;

    let mut time = SimTime::ZERO;
    let mut m = n;
    let mut level = 0u32;
    loop {
        if m <= base {
            // Base case: bitonic sort of the remainder.
            let mut c = KernelCost::new();
            c.global_read_bytes = m * elem;
            let lg = ceil_log2(m.max(2));
            c.int_ops = m * lg * lg;
            time += c.time_on(arch, busy_sms(arch, m)).total();
            time += launch_time(arch, level > 0, 1.0);
            break;
        }
        let warps = m.div_ceil(32);
        let mut c = KernelCost::new();
        // Sample draw (uncoalesced gather) + bitonic splitter sort.
        c.uncoalesced_bytes += s * elem;
        let lgs = ceil_log2(s.max(2));
        c.int_ops += s * lgs * lgs;
        // Count: stream keys, traverse the h-level tree, write oracles.
        c.global_read_bytes += m * elem;
        c.global_write_bytes += m * oracle;
        c.smem_bytes += m * ((h + 1) * elem);
        c.int_ops += m * (2 * h + 1);
        c.shared_atomic_warp_ops += warps;
        c.shared_atomic_replays += warps * replays_per_warp(profile.top_value_share);
        time += c.time_on(arch, busy_sms(arch, m)).total();
        // sample + count + reduce launches.
        time += launch_time(arch, level > 0, 3.0);
        if equality_exit {
            // The target bucket is an equality bucket: no filter pass,
            // the recursion returns the splitter value directly.
            break;
        }
        // Filter the target bucket. Sampled splitters are uneven: the
        // expected target bucket holds ~4x the ideal m/b share.
        let survivors = ((4 * m) / b).max(1).min(m / 2);
        let mut f = KernelCost::new();
        f.global_read_bytes = m * elem + m * oracle;
        f.global_write_bytes = survivors * elem;
        f.int_ops = m;
        time += f.time_on(arch, busy_sms(arch, m)).total();
        time += launch_time(arch, true, 2.0);
        m = survivors;
        level += 1;
        if level > 16 {
            break;
        }
    }
    time
}

/// Analytic QuickSelect estimate: a median-of-sample pivot, a count
/// pass and a partition write per level, halving until the base case —
/// with the three-way partition's equal-pivot early exit pulling the
/// expected depth down on duplicate-heavy inputs.
pub fn quick_select_estimate<T: SelectElement>(
    arch: &GpuArchitecture,
    n: u64,
    cfg: &SampleSelectConfig,
    profile: &DataProfile,
) -> SimTime {
    let base = cfg.base_case_size as u64;
    let elem = T::BYTES as u64;

    // If one value dominates — or the probe saturates with only a
    // handful of distinct keys — the median-of-sample pivot is almost
    // surely the target *value* itself and the count pass discovers the
    // rank inside the equal region of the 3-way partition: one pivot
    // draw plus one streaming count, no partition write, no base case.
    let probe_distinct = (profile.distinct_ratio * profile.probe_len as f64) as u64;
    let saturated = profile.probe_len >= PROBE_LEN.min(profile.n);
    if profile.top_value_share >= 0.5 || (saturated && probe_distinct <= 32) {
        let mut c = KernelCost::new();
        c.uncoalesced_bytes += 64 * elem;
        c.int_ops += 64 * 36;
        c.global_read_bytes += n * elem;
        c.int_ops += n;
        return c.time_on(arch, busy_sms(arch, n)).total() + launch_time(arch, false, 2.0);
    }

    // Otherwise: halving from n to base.
    let levels = ceil_log2(n.max(1) / base.max(1)).max(1);

    let mut time = SimTime::ZERO;
    let mut m = n;
    for level in 0..levels {
        let mut c = KernelCost::new();
        // Pivot draw + tiny bitonic median (64 sampled elements).
        c.uncoalesced_bytes += 64 * elem;
        c.int_ops += 64 * 36;
        // Count pass: stream keys, compare against the pivot.
        c.global_read_bytes += m * elem;
        c.int_ops += m;
        // Partition: re-read, write the kept half.
        c.global_read_bytes += m * elem;
        c.global_write_bytes += (m / 2) * elem;
        c.int_ops += m * 2;
        time += c.time_on(arch, busy_sms(arch, m)).total();
        time += launch_time(arch, level > 0, 3.0);
        m = (m / 2).max(base);
    }
    // Base case sort.
    let mut c = KernelCost::new();
    c.global_read_bytes = m.min(base.max(1)) * elem;
    let lg = ceil_log2(base.max(2));
    c.int_ops = base * lg * lg;
    time += c.time_on(arch, busy_sms(arch, base)).total();
    time += launch_time(arch, levels > 0, 1.0);
    time
}

/// Analytic RadixSelect estimate — thin wrapper binding the probe to
/// the cost model's generation-aware radix term.
pub fn radix_estimate<T: SelectElement>(
    arch: &GpuArchitecture,
    n: u64,
    cfg: &SampleSelectConfig,
    profile: &DataProfile,
) -> SimTime {
    // Replay pressure of a live pass follows the first-digit skew; the
    // estimate's dead passes already charge worst-case pressure.
    let replay_rate = profile.top_digit_share.clamp(0.0, 1.0);
    radix_select_estimate(
        arch,
        n,
        T::BYTES as u32,
        profile.dead_digits,
        replay_rate,
        cfg.base_case_size as u64,
    )
}

/// Analytic bucketed-approximate-top-k estimate: the local phase is
/// `b` *concurrent* per-bucket recursions (critical path = one bucket
/// over `n/b` elements), then one exact finish pass over the
/// `b · k'` candidate union.
pub fn approx_topk_estimate<T: SelectElement>(
    arch: &GpuArchitecture,
    n: u64,
    k: u64,
    acfg: &crate::approx_topk::ApproxTopKConfig,
    cfg: &SampleSelectConfig,
    profile: &DataProfile,
) -> SimTime {
    let b = (acfg.buckets as u64).clamp(1, n.max(1));
    let k_prime = acfg.k_prime(k as usize) as u64;
    let bucket = n.div_ceil(b);
    // Local phase: one bucket's rank recursion plus its k' fused write.
    let local = sample_select_estimate::<T>(arch, bucket, cfg, profile)
        + SimTime::from_ns(k_prime as f64 * T::BYTES as f64 / arch.bytes_per_ns());
    // Finish: exact fused top-k over the union (k of b·k' candidates).
    let union = (b * k_prime).min(n);
    let finish = sample_select_estimate::<T>(arch, union, cfg, profile)
        + SimTime::from_ns(k as f64 * T::BYTES as f64 / arch.bytes_per_ns());
    local + finish
}

// ---------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------

/// Near-tie band for the host-throughput tie-breaker: candidates whose
/// simulated estimate is within this factor of the model winner are
/// considered indistinguishable to the model. Kept well inside the
/// planner-matrix regret gate (1.25x) so a tie falling either way can
/// never fail the gate.
const HOST_TIE_BAND: f64 = 1.05;

/// How much each backend's host hot path gains from wide SIMD dispatch,
/// as a rank (higher = bigger measured win). The sampled-splitter tree
/// descent is a gathered multi-level walk and vectorizes best; the
/// quickselect pivot masks plus compress come next; the radix digit
/// count was already a shift/mask stream the compiler vectorized, so it
/// gains least.
fn host_simd_rank(b: PlannedBackend) -> u8 {
    match b {
        PlannedBackend::Sample => 3,
        PlannedBackend::Quick => 2,
        PlannedBackend::Radix => 1,
        PlannedBackend::TopK => 0,
        PlannedBackend::ApproxTopK => 0,
    }
}

/// Plan a plain rank query from the probe and the cost model alone.
pub fn plan_rank_query<T: SelectElement>(
    arch: &GpuArchitecture,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> PlanDecision {
    plan_rank_query_with_signals(arch, data, rank, cfg, &PlanSignals::default())
}

/// Plan a plain rank query, folding in live obs signals from earlier
/// queries on the same stream.
///
/// Signal overrides are deliberately conservative — they only *demote*
/// the radix backend, never promote it: a strided probe can miss
/// duplicate pressure or bucket collapse that a full prior pass
/// observed, but the reverse (probe pessimistic, stream healthy) is
/// structurally impossible since the probe is a subset of the data.
pub fn plan_rank_query_with_signals<T: SelectElement>(
    arch: &GpuArchitecture,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    signals: &PlanSignals,
) -> PlanDecision {
    let _ = rank; // rank position does not change exact-selection cost
    let profile = profile_data(data);
    let n = data.len() as u64;

    let estimates: Vec<(PlannedBackend, SimTime)> = PlannedBackend::RANK_CANDIDATES
        .iter()
        .map(|&b| {
            let t = match b {
                PlannedBackend::Sample => sample_select_estimate::<T>(arch, n, cfg, &profile),
                PlannedBackend::Quick => quick_select_estimate::<T>(arch, n, cfg, &profile),
                PlannedBackend::Radix => radix_estimate::<T>(arch, n, cfg, &profile),
                PlannedBackend::TopK | PlannedBackend::ApproxTopK => {
                    unreachable!("top-k backends are not rank candidates")
                }
            };
            (b, t)
        })
        .collect();

    let model_choice = estimates
        .iter()
        .min_by(|a, b| a.1.as_ns().total_cmp(b.1.as_ns()))
        .map(|&(b, _)| b)
        .expect("at least one candidate");

    // Host-throughput near-tie breaker. Simulated estimates rank the
    // *device* cost and stay authoritative, but when candidates sit
    // within HOST_TIE_BAND of the winner the ordering is noise to the
    // model — break such ties toward the backend whose host kernels
    // gain the most from the active SIMD dispatch level.
    let host_simd = configured_level();
    let mut backend = model_choice;
    if host_simd == SimdLevel::Avx2 {
        let best_ns = estimates
            .iter()
            .find(|(b, _)| *b == model_choice)
            .map(|&(_, t)| t.as_ns())
            .unwrap_or(0.0);
        backend = estimates
            .iter()
            .filter(|(_, t)| t.as_ns() <= best_ns * HOST_TIE_BAND)
            .max_by_key(|(b, _)| host_simd_rank(*b))
            .map(|&(b, _)| b)
            .unwrap_or(model_choice);
    }

    // Live-signal overrides: prior passes on this stream saw pressure
    // the probe did not.
    let mut overridden = false;
    if backend == PlannedBackend::Radix {
        let hot_collisions = signals.collision_rate_ppm.is_some_and(|ppm| ppm >= 500_000);
        let collapsed_buckets = signals.bucket_occupancy.is_some_and(|occ| occ <= 2);
        if hot_collisions || collapsed_buckets {
            // Duplicate/skew pressure makes radix passes degenerate
            // (few live digits, worst-case replays); fall back to the
            // cheaper of the data-adaptive recursions.
            backend = estimates
                .iter()
                .filter(|(b, _)| *b != PlannedBackend::Radix)
                .min_by(|a, b| a.1.as_ns().total_cmp(b.1.as_ns()))
                .map(|&(b, _)| b)
                .unwrap_or(PlannedBackend::Sample);
            overridden = true;
        }
    }

    obs::counter_add(backend.counter(), 1);
    obs::gauge_set(obs::Gauge::SimdDispatchLevel, host_simd as u64);
    if overridden {
        obs::counter_add(Counter::PlannerOverrides, 1);
    }

    PlanDecision {
        backend,
        model_choice,
        estimates,
        overridden,
        profile,
        host_simd,
    }
}

/// Plan a top-k query: fused top-k extraction vs threshold-then-filter
/// via the best rank backend.
///
/// The fused kernel materializes all `k` elements in one recursion; for
/// large `k/n` the extra write traffic exceeds what a plain rank
/// selection plus one filter pass would cost, but the fused path still
/// wins operationally (single kernel family, one workspace). The
/// planner keeps the decision simple and deterministic: fused top-k for
/// `k/n <= 1/2`, otherwise the best rank backend computes the threshold.
pub fn plan_topk_query<T: SelectElement>(
    arch: &GpuArchitecture,
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
) -> PlanDecision {
    let n = data.len().max(1);
    let rank = n.saturating_sub(k).min(n - 1);
    let mut rank_plan = plan_rank_query(arch, data, rank, cfg);
    if k.saturating_mul(2) <= n {
        // Fused extraction: the rank recursion plus one k-element write.
        let extra = SimTime::from_ns(k as f64 * T::BYTES as f64 / arch.bytes_per_ns());
        let base = rank_plan
            .estimate_for(rank_plan.backend)
            .unwrap_or(SimTime::ZERO);
        rank_plan
            .estimates
            .push((PlannedBackend::TopK, base + extra));
        rank_plan.model_choice = PlannedBackend::TopK;
        rank_plan.backend = PlannedBackend::TopK;
        obs::counter_add(Counter::PlannerTopk, 1);
    }
    rank_plan
}

/// Plan an *approximate* top-k query (a recall target below 1): the
/// bucketed approximate backend vs the exact fused recursion.
///
/// The exact recursion trivially meets every recall target, so the
/// approximation is chosen only where it actually pays: when the
/// bucket-parallel estimate undercuts the exact fused estimate —
/// which happens at large `k`, where the exact filter's candidate
/// copies dominate. Deterministic per (data, k, shape, arch, config).
pub fn plan_approx_topk_query<T: SelectElement>(
    arch: &GpuArchitecture,
    data: &[T],
    k: usize,
    acfg: &crate::approx_topk::ApproxTopKConfig,
    cfg: &SampleSelectConfig,
) -> PlanDecision {
    let mut plan = plan_topk_query(arch, data, k, cfg);
    let profile = plan.profile;
    let n = data.len() as u64;
    let approx = approx_topk_estimate::<T>(arch, n, k as u64, acfg, cfg, &profile);
    let exact = plan.estimate_for(plan.backend).unwrap_or(SimTime::ZERO);
    plan.estimates.push((PlannedBackend::ApproxTopK, approx));
    if approx < exact && acfg.buckets > 1 {
        plan.model_choice = PlannedBackend::ApproxTopK;
        plan.backend = PlannedBackend::ApproxTopK;
        obs::counter_add(Counter::PlannerApproxTopk, 1);
    }
    plan
}

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

/// Plan and run one rank query, dispatching to exactly the entry point
/// the forced backend would use (this is what makes `--algo auto`
/// bit-identical to its chosen backend).
pub fn auto_select_with_workspace<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
) -> Result<(PlanDecision, SelectResult<T>), SelectError> {
    auto_select_with_signals(device, data, rank, cfg, ws, &PlanSignals::default())
}

/// [`auto_select_with_workspace`] with explicit live signals.
pub fn auto_select_with_signals<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
    signals: &PlanSignals,
) -> Result<(PlanDecision, SelectResult<T>), SelectError> {
    let decision = plan_rank_query_with_signals(device.arch(), data, rank, cfg, signals);
    let result = run_planned(device, data, rank, cfg, ws, decision.backend)?;
    Ok((decision, result))
}

/// Run a rank query on the backend a decision names — the shared
/// dispatcher for `--algo auto`, the planner proptests and `selectd`.
pub fn run_planned<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
    backend: PlannedBackend,
) -> Result<SelectResult<T>, SelectError> {
    match backend {
        PlannedBackend::Sample => sample_select_with_workspace(device, data, rank, cfg, ws),
        PlannedBackend::Quick => quick_select_on_device(device, data, rank, cfg),
        PlannedBackend::Radix => radix_select_with_workspace(device, data, rank, cfg, ws),
        PlannedBackend::TopK => {
            // A rank query on the top-k backend: extract the top n-rank
            // elements and return the threshold (the rank-th smallest).
            let n = data.len();
            if n == 0 {
                return Err(SelectError::EmptyInput);
            }
            if rank >= n {
                return Err(SelectError::RankOutOfRange { rank, len: n });
            }
            let k = n - rank;
            let TopKResult {
                threshold, report, ..
            } = top_k_largest_with_workspace(device, data, k, cfg, ws)?;
            Ok(SelectResult {
                value: threshold,
                report,
            })
        }
        PlannedBackend::ApproxTopK => {
            // A rank query on the approximate backend: extract an
            // approximate top-(n-rank) set and return its threshold.
            // The value is NOT exact — callers route here only for
            // queries that declared an approximation budget (`selectd`
            // tags the response status accordingly).
            let n = data.len();
            if n == 0 {
                return Err(SelectError::EmptyInput);
            }
            if rank >= n {
                return Err(SelectError::RankOutOfRange { rank, len: n });
            }
            let k = n - rank;
            let res = crate::approx_topk::approx_top_k_with_workspace(
                device,
                data,
                k,
                &crate::approx_topk::ApproxTopKConfig::default(),
                cfg,
                ws,
            )?;
            Ok(SelectResult {
                value: res.threshold,
                report: res.report,
            })
        }
    }
}

/// Plan and run one rank query on a fresh workspace.
pub fn auto_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<(PlanDecision, SelectResult<T>), SelectError> {
    auto_select_with_workspace(device, data, rank, cfg, &mut SelectWorkspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use crate::rng::SplitMix64;
    use gpu_sim::arch::v100;
    use hpc_par::ThreadPool;

    fn uniform_f32(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32 * 2.0 - 1.0).collect()
    }

    #[test]
    fn profile_sees_duplicates() {
        let dup = vec![42.0f32; 10_000];
        let p = profile_data(&dup);
        assert_eq!(p.probe_len, PROBE_LEN);
        assert!(p.top_value_share > 0.99);
        assert!(p.distinct_ratio < 0.01);
        // All four digit positions of an all-equal key are dead... but
        // dead_digits only counts them while they lead.
        assert_eq!(p.dead_digits, 4);

        let uni = uniform_f32(10_000, 1);
        let p = profile_data(&uni);
        assert!(p.distinct_ratio > 0.9);
        assert!(p.top_value_share < 0.1);
    }

    #[test]
    fn profile_sees_dead_digits() {
        // u32 keys in 0..251: the top three digit positions never vary.
        let data: Vec<u32> = (0..50_000u32).map(|i| i % 251).collect();
        let p = profile_data(&data);
        assert_eq!(p.dead_digits, 3);
        // The low digit is nearly uniform over 251 values.
        assert!(p.top_digit_share < 0.1);
    }

    #[test]
    fn planning_is_deterministic() {
        let data = uniform_f32(200_000, 7);
        let cfg = SampleSelectConfig::default();
        let arch = v100();
        let a = plan_rank_query(&arch, &data, 100_000, &cfg);
        let b = plan_rank_query(&arch, &data, 100_000, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn low_entropy_keys_avoid_radix() {
        // Three dead digit passes make the radix estimate blow up.
        let data: Vec<u32> = (0..400_000u32).map(|i| i % 251).collect();
        let cfg = SampleSelectConfig::default();
        let d = plan_rank_query(&v100(), &data, 200_000, &cfg);
        assert_ne!(d.backend, PlannedBackend::Radix);
        let radix = d.estimate_for(PlannedBackend::Radix).unwrap();
        let chosen = d.estimate_for(d.backend).unwrap();
        assert!(radix.as_ns() > chosen.as_ns());
    }

    #[test]
    fn duplicate_heavy_prefers_equality_exit() {
        // 16 distinct values: QuickSelect's median-of-sample pivot hits
        // the target value and the count pass discovers the rank inside
        // the equal region — one pivot draw plus one streaming count,
        // the cheapest shape of any backend here.
        let data: Vec<f32> = (0..300_000).map(|i| (i % 16) as f32).collect();
        let cfg = SampleSelectConfig::default();
        let d = plan_rank_query(&v100(), &data, 150_000, &cfg);
        assert_eq!(d.backend, PlannedBackend::Quick);
        let quick = d.estimate_for(PlannedBackend::Quick).unwrap();
        let sample = d.estimate_for(PlannedBackend::Sample).unwrap();
        assert!(quick.as_ns() < sample.as_ns());
    }

    #[test]
    fn signals_demote_radix() {
        let data: Vec<u32> = uniform_f32(200_000, 9)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let cfg = SampleSelectConfig::default();
        let arch = v100();
        let clean = plan_rank_query(&arch, &data, 100_000, &cfg);
        if clean.backend != PlannedBackend::Radix {
            // Signals only demote radix; nothing to assert on this arch.
            return;
        }
        let hot = PlanSignals {
            collision_rate_ppm: Some(900_000),
            bucket_occupancy: None,
        };
        let d = plan_rank_query_with_signals(&arch, &data, 100_000, &cfg, &hot);
        assert_ne!(d.backend, PlannedBackend::Radix);
        assert!(d.overridden);
        assert_eq!(d.model_choice, PlannedBackend::Radix);
    }

    #[test]
    fn auto_matches_reference_and_reports_chosen_backend() {
        let pool = ThreadPool::new(4);
        let cfg = SampleSelectConfig::default();
        for (name, data) in [
            ("uniform", uniform_f32(120_000, 3)),
            (
                "duplicate-heavy",
                (0..120_000).map(|i| (i % 8) as f32).collect(),
            ),
            ("sorted", (0..120_000).map(|i| i as f32).collect()),
        ] {
            let mut device = Device::new(v100(), &pool);
            let rank = 60_000;
            let (decision, res) = auto_select_on_device(&mut device, &data, rank, &cfg).unwrap();
            assert_eq!(
                res.value.to_bits(),
                reference_select(&data, rank).unwrap().to_bits(),
                "{name}"
            );
            assert_eq!(
                res.report.algorithm,
                decision.backend.name(),
                "{name}: report/decision mismatch"
            );
        }
    }

    #[test]
    fn topk_planning_prefers_fused_for_small_k() {
        let data = uniform_f32(100_000, 5);
        let cfg = SampleSelectConfig::default();
        let small = plan_topk_query(&v100(), &data, 100, &cfg);
        assert_eq!(small.backend, PlannedBackend::TopK);
        let large = plan_topk_query(&v100(), &data, 90_000, &cfg);
        assert_ne!(large.backend, PlannedBackend::TopK);
    }

    #[test]
    fn co_plannability_requires_equal_plans() {
        let dup: Vec<f32> = (0..200_000).map(|i| (i % 16) as f32).collect();
        let cfg = SampleSelectConfig::default();
        let a = plan_rank_query(&v100(), &dup, 100_000, &cfg);
        let b = plan_rank_query(&v100(), &dup, 50_000, &cfg);
        assert_eq!(a.backend, PlannedBackend::Quick);
        assert!(a.merges_with(&b), "same data, same plan: must merge");

        let low: Vec<u32> = (0..200_000u32).map(|i| i % 251).collect();
        let c = plan_rank_query(&v100(), &low, 100_000, &cfg);
        if c.backend != a.backend {
            assert!(!a.merges_with(&c), "differing plans must not merge");
        }
    }
}
