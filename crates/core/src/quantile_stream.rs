//! Streaming quantile telemetry: a continuous multiselect engine over
//! unbounded metric streams.
//!
//! Operational telemetry rarely wants one rank of one dataset — it wants
//! p50/p90/p99/p999 of a latency stream, refreshed every few seconds,
//! forever. This module turns the exact multiselect driver into that
//! engine: elements are ingested in arbitrary batches, a ring buffer
//! keeps the most recent window, and every time the window schedule
//! fires the engine runs one [`multi_select_with_workspace`] over the
//! window to produce *exact* quantile values (actual stream elements,
//! nearest-rank estimator — no sketches, no epsilon).
//!
//! Windows are **tumbling** (`slide == len`: disjoint) or **sliding**
//! (`slide < len`: overlapping). The first window closes once `len`
//! elements have arrived; subsequent windows close every `slide`
//! elements after that.
//!
//! ## Checkpoint / restart
//!
//! A telemetry engine outlives processes. The full engine state between
//! two batches is tiny — the window ring, the stream offset, the window
//! counter — so [`QuantileStream::checkpoint_bytes`] serializes exactly
//! that, reusing the streaming checkpoint envelope (the `SSCK` magic, a
//! version, a run fingerprint, and a trailing FNV-1a checksum; see
//! `streaming.rs`). Restoring from a checkpoint and replaying the rest
//! of the stream reproduces the uninterrupted run **bit for bit**: same
//! window boundaries, same quantile values, same window indices. A
//! corrupted or foreign checkpoint is rejected with a readable reason,
//! never resumed into wrong state.
//!
//! ## Observability
//!
//! Every finalized window bumps [`Counter::QuantileWindows`] and every
//! persisted checkpoint bumps [`Counter::QuantileCheckpoints`], so the
//! engine shows up in the fixed-slot metrics snapshot (and through its
//! Prometheus exposition) like every other driver. The quantile values
//! themselves carry a dynamic label set (`q="0.99"`), which the
//! fixed-name schema cannot hold, so [`QuantileStream::prometheus_text`]
//! renders them as a standalone exposition fragment for the scrape
//! surface to append.

use crate::element::SelectElement;
use crate::instrument::ResilienceEvents;
use crate::multiselect::multi_select_with_workspace;
use crate::obs::{self, Counter};
use crate::params::SampleSelectConfig;
use crate::streaming::{
    fnv1a64, load_chunk_with_retry, push_elems, push_u64, ChunkSource, Cursor, CHECKPOINT_MAGIC,
};
use crate::workspace::SelectWorkspace;
use crate::SelectError;
use gpu_sim::Device;
use std::path::Path;

/// Second magic word distinguishing a quantile-stream checkpoint from a
/// streaming-select checkpoint (both share the `SSCK` envelope).
const QS_KIND: [u8; 4] = *b"QNTL";
/// Quantile-stream checkpoint layout version.
const QS_VERSION: u32 = 1;

/// The default telemetry quantiles: p50 / p90 / p99 / p999.
pub const DEFAULT_PROBS: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Window schedule of a quantile stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length in elements.
    pub len: usize,
    /// Elements between consecutive window closes. `slide == len` is a
    /// tumbling window (disjoint), `slide < len` a sliding window
    /// (overlapping).
    pub slide: usize,
}

impl WindowSpec {
    /// Disjoint windows of `len` elements.
    pub fn tumbling(len: usize) -> Self {
        Self { len, slide: len }
    }

    /// Overlapping windows: `len` elements, re-evaluated every `slide`.
    pub fn sliding(len: usize, slide: usize) -> Self {
        Self { len, slide }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.len == 0 {
            return Err("window length must be at least 1".to_string());
        }
        if self.slide == 0 || self.slide > self.len {
            return Err(format!(
                "window slide {} must be in 1..={} (the window length)",
                self.slide, self.len
            ));
        }
        Ok(())
    }
}

/// Full configuration of a [`QuantileStream`].
#[derive(Debug, Clone)]
pub struct QuantileStreamConfig {
    /// Probabilities to track, each in `[0, 1]`. Order is preserved in
    /// every emitted [`WindowQuantiles::values`].
    pub probs: Vec<f64>,
    /// Window schedule.
    pub window: WindowSpec,
    /// Selection parameters for the per-window multiselect.
    pub select: SampleSelectConfig,
}

impl QuantileStreamConfig {
    /// p50/p90/p99/p999 over tumbling windows of `len` elements.
    pub fn telemetry(len: usize) -> Self {
        Self {
            probs: DEFAULT_PROBS.to_vec(),
            window: WindowSpec::tumbling(len),
            select: SampleSelectConfig::default(),
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        self.window.validate()?;
        if self.probs.is_empty() {
            return Err("at least one quantile probability is required".to_string());
        }
        for &p in &self.probs {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("quantile probability {p} outside [0, 1]"));
            }
        }
        Ok(())
    }

    /// Run identity for checkpoint compatibility: two configs with the
    /// same fingerprint produce the same window boundaries and ranks, so
    /// resuming across them is sound.
    fn fingerprint(&self, elem_bytes: u8) -> u64 {
        let mut bytes = Vec::with_capacity(24 + 8 * self.probs.len());
        push_u64(&mut bytes, self.window.len as u64);
        push_u64(&mut bytes, self.window.slide as u64);
        push_u64(&mut bytes, self.probs.len() as u64);
        for &p in &self.probs {
            push_u64(&mut bytes, p.to_bits());
        }
        bytes.push(elem_bytes);
        fnv1a64(&bytes)
    }
}

/// Nearest-rank estimator on a 0-indexed window of `len` elements:
/// the rank whose order statistic estimates the `p`-quantile.
pub fn rank_for_prob(len: usize, p: f64) -> usize {
    debug_assert!(len > 0);
    let r = (p * (len - 1) as f64).round();
    (r as usize).min(len - 1)
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// One finalized window's quantile readings.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowQuantiles<T> {
    /// 0-based window ordinal since the stream started.
    pub index: u64,
    /// Stream offset (elements ingested) at which the window closed.
    pub end_offset: u64,
    /// One exact order statistic per configured probability, in the
    /// order of [`QuantileStreamConfig::probs`].
    pub values: Vec<T>,
}

/// The continuous quantile engine. Feed it batches with
/// [`QuantileStream::ingest`]; it returns the windows that closed.
#[derive(Debug)]
pub struct QuantileStream<T: SelectElement> {
    cfg: QuantileStreamConfig,
    /// Last `window.len` elements; stream element `i` lives in slot
    /// `i % len`, so the slot being overwritten is always the oldest.
    ring: Vec<T>,
    /// Total elements ingested since the stream began.
    seen: u64,
    /// Windows finalized so far.
    windows_emitted: u64,
    /// Most recently finalized window (survives checkpoint/restart so a
    /// freshly resumed exporter scrapes the same gauges).
    last: Option<WindowQuantiles<T>>,
    /// Reused across window finalizations.
    ws: SelectWorkspace<T>,
}

impl<T: SelectElement> QuantileStream<T> {
    pub fn new(cfg: QuantileStreamConfig) -> Result<Self, SelectError> {
        cfg.validate()
            .map_err(|what| SelectError::InvalidArgument { what })?;
        Ok(Self {
            ring: Vec::with_capacity(cfg.window.len),
            cfg,
            seen: 0,
            windows_emitted: 0,
            last: None,
            ws: SelectWorkspace::new(),
        })
    }

    pub fn config(&self) -> &QuantileStreamConfig {
        &self.cfg
    }

    /// Total elements ingested since the stream began (checkpoint-safe).
    pub fn elements_seen(&self) -> u64 {
        self.seen
    }

    /// Windows finalized since the stream began (checkpoint-safe).
    pub fn windows_emitted(&self) -> u64 {
        self.windows_emitted
    }

    /// The most recently finalized window, if any.
    pub fn last(&self) -> Option<&WindowQuantiles<T>> {
        self.last.as_ref()
    }

    fn push(&mut self, x: T) {
        let len = self.cfg.window.len;
        let slot = (self.seen % len as u64) as usize;
        if self.ring.len() < len {
            debug_assert_eq!(slot, self.ring.len());
            self.ring.push(x);
        } else {
            self.ring[slot] = x;
        }
        self.seen += 1;
    }

    /// Whether the window schedule fires at the current offset: the
    /// first close at `len`, then every `slide` elements.
    fn window_due(&self) -> bool {
        let len = self.cfg.window.len as u64;
        self.seen >= len && (self.seen - len).is_multiple_of(self.cfg.window.slide as u64)
    }

    /// The current window contents in stream order (oldest first).
    fn window_snapshot(&self) -> Vec<T> {
        let len = self.ring.len();
        if len < self.cfg.window.len || self.seen as usize == len {
            return self.ring.clone();
        }
        let start = self.seen % len as u64;
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.ring[start as usize..]);
        out.extend_from_slice(&self.ring[..start as usize]);
        out
    }

    fn finalize_window(&mut self, device: &mut Device) -> Result<WindowQuantiles<T>, SelectError> {
        let data = self.window_snapshot();
        let n = data.len();
        let ranks: Vec<usize> = self
            .cfg
            .probs
            .iter()
            .map(|&p| rank_for_prob(n, p))
            .collect();
        // Distinct probabilities can collapse to the same rank on a
        // small window; the driver wants each rank once, so select the
        // deduplicated set and fan the answers back out per probability.
        let mut uniq = ranks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let res =
            multi_select_with_workspace(device, &data, &uniq, &self.cfg.select, &mut self.ws)?;
        let values = ranks
            .iter()
            .map(|r| res.values[uniq.binary_search(r).unwrap()])
            .collect();
        obs::counter_add(Counter::QuantileWindows, 1);
        let window = WindowQuantiles {
            index: self.windows_emitted,
            end_offset: self.seen,
            values,
        };
        self.windows_emitted += 1;
        self.last = Some(window.clone());
        Ok(window)
    }

    /// Ingest a batch, returning every window that closed inside it (in
    /// close order; possibly several for a batch spanning multiple
    /// slides, possibly none).
    pub fn ingest(
        &mut self,
        device: &mut Device,
        batch: &[T],
    ) -> Result<Vec<WindowQuantiles<T>>, SelectError> {
        let mut closed = Vec::new();
        for &x in batch {
            self.push(x);
            if self.window_due() {
                closed.push(self.finalize_window(device)?);
            }
        }
        Ok(closed)
    }

    // -----------------------------------------------------------------
    // Checkpointing
    // -----------------------------------------------------------------

    /// Serialize the engine state: `SSCK` magic, `QNTL` kind, version,
    /// config fingerprint, offsets, the window ring in stream order, the
    /// last emitted window, and a trailing FNV-1a checksum.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 8 * self.ring.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&QS_KIND);
        out.extend_from_slice(&QS_VERSION.to_le_bytes());
        push_u64(&mut out, self.cfg.fingerprint(T::BYTES as u8));
        push_u64(&mut out, self.seen);
        push_u64(&mut out, self.windows_emitted);
        push_elems(&mut out, &self.window_snapshot());
        match &self.last {
            Some(w) => {
                out.push(1);
                push_u64(&mut out, w.index);
                push_u64(&mut out, w.end_offset);
                push_elems(&mut out, &w.values);
            }
            None => out.push(0),
        }
        let checksum = fnv1a64(&out);
        push_u64(&mut out, checksum);
        out
    }

    /// Rebuild an engine from [`QuantileStream::checkpoint_bytes`].
    /// Every rejection reason is a readable string; callers log it and
    /// start a fresh stream — a bad checkpoint must never poison one.
    pub fn from_checkpoint_bytes(cfg: QuantileStreamConfig, bytes: &[u8]) -> Result<Self, String> {
        cfg.validate()?;
        if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
            return Err("file too short".to_string());
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ));
        }
        let mut cur = Cursor {
            bytes: body,
            pos: 0,
        };
        if cur.take(4)? != CHECKPOINT_MAGIC {
            return Err("bad magic".to_string());
        }
        if cur.take(4)? != QS_KIND {
            return Err("not a quantile-stream checkpoint".to_string());
        }
        let version = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
        if version != QS_VERSION {
            return Err(format!("unsupported version {version}"));
        }
        let fingerprint = cur.u64()?;
        if fingerprint != cfg.fingerprint(T::BYTES as u8) {
            return Err(
                "fingerprint mismatch: checkpoint belongs to a different stream".to_string(),
            );
        }
        let seen = cur.u64()?;
        let windows_emitted = cur.u64()?;
        let window: Vec<T> = cur.elems(cfg.window.len as u64)?;
        let expected = (seen as u128).min(cfg.window.len as u128) as usize;
        if window.len() != expected {
            return Err(format!(
                "window carries {} elements, expected {expected} at offset {seen}",
                window.len()
            ));
        }
        let last = match cur.u8()? {
            0 => None,
            1 => {
                let index = cur.u64()?;
                let end_offset = cur.u64()?;
                let values: Vec<T> = cur.elems(cfg.probs.len() as u64)?;
                if values.len() != cfg.probs.len() {
                    return Err(format!(
                        "last window carries {} values for {} probabilities",
                        values.len(),
                        cfg.probs.len()
                    ));
                }
                Some(WindowQuantiles {
                    index,
                    end_offset,
                    values,
                })
            }
            k => return Err(format!("invalid last-window tag {k}")),
        };
        // The ring stores stream element `i` in slot `i % len`; the
        // checkpoint stores the window oldest-first. Undo the rotation
        // so subsequent pushes land exactly where the uninterrupted run
        // would have put them.
        let len = cfg.window.len;
        let ring = if window.len() < len {
            window
        } else {
            let mut ring = vec![window[0]; len];
            for (i, &x) in window.iter().enumerate() {
                ring[((seen - len as u64 + i as u64) % len as u64) as usize] = x;
            }
            ring
        };
        Ok(Self {
            cfg,
            ring,
            seen,
            windows_emitted,
            last,
            ws: SelectWorkspace::new(),
        })
    }

    /// Atomically persist the engine to `path` (sibling temp file +
    /// rename) and bump [`Counter::QuantileCheckpoints`].
    pub fn save_checkpoint(&self, path: &Path) -> std::io::Result<()> {
        let bytes = self.checkpoint_bytes();
        let tmp = path.with_extension("ckpt-tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        obs::counter_add(Counter::QuantileCheckpoints, 1);
        Ok(())
    }

    /// Load an engine persisted by [`QuantileStream::save_checkpoint`].
    pub fn load_checkpoint(cfg: QuantileStreamConfig, path: &Path) -> Result<Self, String> {
        let bytes = std::fs::read(path)
            .map_err(|err| format!("read `{}` failed ({err})", path.display()))?;
        Self::from_checkpoint_bytes(cfg, &bytes)
    }

    // -----------------------------------------------------------------
    // Export
    // -----------------------------------------------------------------

    /// Prometheus text-exposition fragment for the latest window: one
    /// gauge sample per configured probability (labelled `q="..."`),
    /// plus the engine's window/offset counters. Appended by scrape
    /// surfaces next to [`crate::obs::MetricsSnapshot::to_prometheus`],
    /// which carries the fixed-schema counters
    /// (`select_quantile_windows_total` and friends).
    pub fn prometheus_text(&self, metric: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        if let Some(w) = &self.last {
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for (p, v) in self.cfg.probs.iter().zip(&w.values) {
                let _ = writeln!(out, "{metric}{{q=\"{p}\"}} {v:?}");
            }
            let _ = writeln!(out, "# TYPE {metric}_window_end_offset gauge");
            let _ = writeln!(out, "{metric}_window_end_offset {}", w.end_offset);
        }
        let _ = writeln!(out, "# TYPE {metric}_windows_total counter");
        let _ = writeln!(out, "{metric}_windows_total {}", self.windows_emitted);
        let _ = writeln!(out, "# TYPE {metric}_ingested_total counter");
        let _ = writeln!(out, "{metric}_ingested_total {}", self.seen);
        out
    }
}

// ---------------------------------------------------------------------
// Source-driven runs
// ---------------------------------------------------------------------

/// Result of one [`run_quantile_stream`] pass over a chunk source.
#[derive(Debug)]
pub struct QuantileStreamRun<T: SelectElement> {
    /// Every window finalized during this pass, in close order.
    pub windows: Vec<WindowQuantiles<T>>,
    /// The engine after the pass — hand it the next segment of the
    /// stream, or checkpoint it for the next process.
    pub engine: QuantileStream<T>,
    /// Whether the pass resumed from an existing checkpoint.
    pub resumed: bool,
    /// Resilience log of the pass (chunk-load retries, checkpoint
    /// notes, resume events).
    pub events: ResilienceEvents,
}

/// Drive a [`QuantileStream`] over a [`ChunkSource`] — the telemetry
/// analogue of `streaming_select_with_checkpoint`. Chunk loads retry
/// transient failures with the shared backoff ladder; after every chunk
/// the engine is checkpointed to `checkpoint` (best-effort), and with
/// `resume` an existing checkpoint restarts the pass from the first
/// unprocessed chunk instead of from scratch, reproducing the
/// uninterrupted run bit for bit. An unreadable, corrupt, or foreign
/// checkpoint degrades to a clean restart.
pub fn run_quantile_stream<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    cfg: &QuantileStreamConfig,
    checkpoint: Option<&Path>,
    resume: bool,
) -> Result<QuantileStreamRun<T>, SelectError> {
    let mut events = ResilienceEvents::default();
    let mut engine = None;
    let mut resumed = false;
    if resume {
        if let Some(path) = checkpoint {
            match QuantileStream::load_checkpoint(cfg.clone(), path) {
                Ok(e) => {
                    events.resume(format!(
                        "resumed quantile stream at offset {} ({} windows emitted)",
                        e.elements_seen(),
                        e.windows_emitted()
                    ));
                    resumed = true;
                    engine = Some(e);
                }
                Err(reason) => {
                    events.checkpoint_note(format!(
                        "checkpoint `{}` rejected ({reason}); clean restart",
                        path.display()
                    ));
                }
            }
        }
    }
    let mut engine = match engine {
        Some(e) => e,
        None => QuantileStream::new(cfg.clone())?,
    };

    let start_offset = engine.elements_seen();
    let mut skipped = 0u64;
    let mut windows = Vec::new();
    for idx in 0..source.num_chunks() {
        let chunk = load_chunk_with_retry(device, source, idx, None, &mut events)?;
        if skipped < start_offset {
            // Chunks the checkpointed run already ingested. Checkpoints
            // are written at chunk boundaries, so the offset must land
            // exactly on one; a misaligned source means the stream was
            // re-chunked and the resumed state cannot be trusted.
            skipped += chunk.len() as u64;
            if skipped > start_offset {
                return Err(SelectError::InvalidArgument {
                    what: format!(
                        "checkpoint offset {start_offset} does not align with chunk \
                         boundaries of `{}` (chunk {idx} ends at {skipped})",
                        source.source_name()
                    ),
                });
            }
            continue;
        }
        windows.extend(engine.ingest(device, &chunk)?);
        if let Some(path) = checkpoint {
            if let Err(err) = engine.save_checkpoint(path) {
                events.checkpoint_note(format!("write to `{}` failed ({err})", path.display()));
            }
        }
    }
    Ok(QuantileStreamRun {
        windows,
        engine,
        resumed,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::sort_elements;
    use crate::rng::SplitMix64;
    use crate::streaming::{ChunkError, SliceChunks};
    use gpu_sim::arch::v100;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn device(pool: &ThreadPool) -> Device<'_> {
        Device::new(v100(), pool)
    }

    /// Reference: sort the window, read the nearest-rank order
    /// statistics directly.
    fn reference_window(window: &[f32], probs: &[f64]) -> Vec<f32> {
        let mut sorted = window.to_vec();
        sort_elements(&mut sorted);
        probs
            .iter()
            .map(|&p| sorted[rank_for_prob(window.len(), p)])
            .collect()
    }

    fn ckpt_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sselect-qs-{}-{tag}.ckpt", std::process::id()))
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = [
            QuantileStreamConfig {
                probs: vec![],
                window: WindowSpec::tumbling(64),
                select: SampleSelectConfig::default(),
            },
            QuantileStreamConfig {
                probs: vec![1.5],
                window: WindowSpec::tumbling(64),
                select: SampleSelectConfig::default(),
            },
            QuantileStreamConfig {
                probs: vec![0.5],
                window: WindowSpec::tumbling(0),
                select: SampleSelectConfig::default(),
            },
            QuantileStreamConfig {
                probs: vec![0.5],
                window: WindowSpec::sliding(64, 0),
                select: SampleSelectConfig::default(),
            },
            QuantileStreamConfig {
                probs: vec![0.5],
                window: WindowSpec::sliding(64, 65),
                select: SampleSelectConfig::default(),
            },
            QuantileStreamConfig {
                probs: vec![f64::NAN],
                window: WindowSpec::tumbling(64),
                select: SampleSelectConfig::default(),
            },
        ];
        for cfg in bad {
            assert!(matches!(
                QuantileStream::<f32>::new(cfg),
                Err(SelectError::InvalidArgument { .. })
            ));
        }
    }

    #[test]
    fn tumbling_windows_match_reference_quantiles() {
        let pool = ThreadPool::new(4);
        let mut dev = device(&pool);
        let cfg = QuantileStreamConfig::telemetry(4096);
        let mut engine = QuantileStream::new(cfg.clone()).unwrap();
        let data = uniform(3 * 4096 + 2048, 0x51AB);

        let mut windows = Vec::new();
        for batch in data.chunks(777) {
            windows.extend(engine.ingest(&mut dev, batch).unwrap());
        }
        // 3.5 windows of data: exactly 3 closes, the half-full fourth
        // window stays pending.
        assert_eq!(windows.len(), 3);
        assert_eq!(engine.windows_emitted(), 3);
        assert_eq!(engine.elements_seen(), data.len() as u64);
        for (w, chunk) in windows.iter().zip(data.chunks(4096)) {
            let expect = reference_window(chunk, &cfg.probs);
            assert_eq!(w.values.len(), expect.len());
            for (got, want) in w.values.iter().zip(&expect) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
            // Telemetry sanity: the quantiles of a window are sorted
            // the way the probabilities are.
            assert!(w.values.windows(2).all(|v| v[0] <= v[1]));
        }
        assert_eq!(windows[0].end_offset, 4096);
        assert_eq!(windows[2].end_offset, 3 * 4096);
    }

    #[test]
    fn sliding_windows_follow_the_slide_schedule() {
        let pool = ThreadPool::new(4);
        let mut dev = device(&pool);
        let cfg = QuantileStreamConfig {
            probs: vec![0.5, 0.99],
            window: WindowSpec::sliding(1000, 250),
            select: SampleSelectConfig::default(),
        };
        let mut engine = QuantileStream::new(cfg.clone()).unwrap();
        let data = uniform(2000, 0x51_1D);
        let windows = engine.ingest(&mut dev, &data).unwrap();

        // Closes at 1000, 1250, 1500, 1750, 2000.
        assert_eq!(windows.len(), 5);
        let ends: Vec<u64> = windows.iter().map(|w| w.end_offset).collect();
        assert_eq!(ends, vec![1000, 1250, 1500, 1750, 2000]);
        // Each window covers the trailing 1000 elements of its offset.
        for w in &windows {
            let lo = (w.end_offset - 1000) as usize;
            let expect = reference_window(&data[lo..w.end_offset as usize], &cfg.probs);
            for (got, want) in w.values.iter().zip(&expect) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn duplicate_and_boundary_probs_are_served() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        // p=0 / p=1 hit the extremes; 0.5 twice collapses to one rank;
        // a tiny window collapses most ranks together.
        let cfg = QuantileStreamConfig {
            probs: vec![0.0, 0.5, 0.5, 0.999, 1.0],
            window: WindowSpec::tumbling(8),
            select: SampleSelectConfig::default(),
        };
        let mut engine = QuantileStream::new(cfg.clone()).unwrap();
        let data = uniform(8, 9);
        let windows = engine.ingest(&mut dev, &data).unwrap();
        assert_eq!(windows.len(), 1);
        let expect = reference_window(&data, &cfg.probs);
        let got: Vec<u32> = windows[0].values.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want);
        assert_eq!(
            windows[0].values[1].to_bits(),
            windows[0].values[2].to_bits()
        );
    }

    /// The acceptance criterion: kill the engine mid-window, resume from
    /// the checkpoint, and the remainder of the stream must produce
    /// bit-identical windows to the uninterrupted run.
    #[test]
    fn mid_window_checkpoint_resume_is_bit_identical() {
        let pool = ThreadPool::new(4);
        let cfg = QuantileStreamConfig {
            probs: DEFAULT_PROBS.to_vec(),
            window: WindowSpec::sliding(2048, 512),
            select: SampleSelectConfig::default(),
        };
        let data = uniform(3 * 2048 + 300, 0xC0FFEE);

        // Uninterrupted run.
        let mut dev_a = device(&pool);
        let mut a = QuantileStream::new(cfg.clone()).unwrap();
        let mut windows_a = Vec::new();
        for batch in data.chunks(333) {
            windows_a.extend(a.ingest(&mut dev_a, batch).unwrap());
        }

        // Interrupted run: stop 137 elements into a window (2048 + 512 +
        // 137 is mid-way between the closes at 2560 and 3072), persist,
        // "restart the process" by rebuilding from bytes only, continue.
        let cut = 2048 + 512 + 137;
        let mut dev_b = device(&pool);
        let mut b1 = QuantileStream::new(cfg.clone()).unwrap();
        let mut windows_b = Vec::new();
        for batch in data[..cut].chunks(333) {
            windows_b.extend(b1.ingest(&mut dev_b, batch).unwrap());
        }
        let bytes = b1.checkpoint_bytes();
        drop(b1);
        let mut b2 = QuantileStream::<f32>::from_checkpoint_bytes(cfg.clone(), &bytes).unwrap();
        assert_eq!(b2.elements_seen(), cut as u64);
        // The resumed engine still reports the last pre-kill window.
        assert_eq!(b2.last(), windows_b.last());
        let mut dev_b2 = device(&pool);
        for batch in data[cut..].chunks(333) {
            windows_b.extend(b2.ingest(&mut dev_b2, batch).unwrap());
        }

        assert_eq!(windows_a.len(), windows_b.len());
        for (wa, wb) in windows_a.iter().zip(&windows_b) {
            assert_eq!(wa.index, wb.index);
            assert_eq!(wa.end_offset, wb.end_offset);
            let bits_a: Vec<u32> = wa.values.iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u32> = wb.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b);
        }
        assert_eq!(a.elements_seen(), b2.elements_seen());
        assert_eq!(a.windows_emitted(), b2.windows_emitted());
    }

    #[test]
    fn checkpoint_rejects_corruption_and_foreign_streams() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = QuantileStreamConfig::telemetry(256);
        let mut engine = QuantileStream::new(cfg.clone()).unwrap();
        engine.ingest(&mut dev, &uniform(700, 3)).unwrap();
        let bytes = engine.checkpoint_bytes();

        // Clean round-trip first.
        assert!(QuantileStream::<f32>::from_checkpoint_bytes(cfg.clone(), &bytes).is_ok());

        // A single flipped bit anywhere fails the checksum.
        let mut corrupt = bytes.clone();
        corrupt[20] ^= 0x40;
        let err = QuantileStream::<f32>::from_checkpoint_bytes(cfg.clone(), &corrupt).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Truncation is caught.
        let err =
            QuantileStream::<f32>::from_checkpoint_bytes(cfg.clone(), &bytes[..bytes.len() - 9])
                .unwrap_err();
        assert!(err.contains("checksum") || err.contains("short"), "{err}");

        // A different window schedule is a different stream.
        let mut other = cfg.clone();
        other.window = WindowSpec::sliding(256, 64);
        let err = QuantileStream::<f32>::from_checkpoint_bytes(other, &bytes).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Different probabilities too.
        let mut other = cfg.clone();
        other.probs = vec![0.5];
        let err = QuantileStream::<f32>::from_checkpoint_bytes(other, &bytes).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // A streaming-select checkpoint is recognized as foreign by its
        // kind word, not misparsed.
        let mut foreign = Vec::new();
        foreign.extend_from_slice(&CHECKPOINT_MAGIC);
        foreign.extend_from_slice(b"XXXX");
        push_u64(&mut foreign, 0);
        let checksum = fnv1a64(&foreign);
        push_u64(&mut foreign, checksum);
        let err = QuantileStream::<f32>::from_checkpoint_bytes(cfg, &foreign).unwrap_err();
        assert!(err.contains("not a quantile-stream"), "{err}");
    }

    #[test]
    fn source_driven_run_checkpoints_and_resumes() {
        let pool = ThreadPool::new(4);
        let cfg = QuantileStreamConfig::telemetry(1024);
        let data = uniform(5 * 1024, 0xABCD);
        let path = ckpt_path("source-resume");
        let _ = std::fs::remove_file(&path);

        // Uninterrupted reference over the same source geometry.
        let mut dev_ref = device(&pool);
        let source = SliceChunks::new(&data, 512);
        let reference = run_quantile_stream(&mut dev_ref, &source, &cfg, None, false).unwrap();
        assert_eq!(reference.windows.len(), 5);
        assert!(!reference.resumed);

        // First process: only the first 6 chunks exist yet (a stream
        // that is still arriving), checkpoint after every chunk.
        let mut dev1 = device(&pool);
        let first_half = SliceChunks::new(&data[..6 * 512], 512);
        let run1 = run_quantile_stream(&mut dev1, &first_half, &cfg, Some(&path), false).unwrap();
        assert_eq!(run1.windows.len(), 3);
        assert!(path.exists());

        // Second process: the full source is now visible; resume skips
        // the already-ingested prefix and emits only the remaining
        // windows.
        let mut dev2 = device(&pool);
        let run2 = run_quantile_stream(&mut dev2, &source, &cfg, Some(&path), true).unwrap();
        assert!(run2.resumed);
        assert_eq!(run2.events.resumed, 1);
        assert_eq!(run2.windows.len(), 2);

        let all: Vec<&WindowQuantiles<f32>> =
            run1.windows.iter().chain(run2.windows.iter()).collect();
        assert_eq!(all.len(), reference.windows.len());
        for (got, want) in all.iter().zip(&reference.windows) {
            assert_eq!(got.index, want.index);
            assert_eq!(got.end_offset, want.end_offset);
            let ga: Vec<u32> = got.values.iter().map(|v| v.to_bits()).collect();
            let wa: Vec<u32> = want.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(ga, wa);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn source_run_rejects_rechunked_resume_and_survives_flaky_loads() {
        let pool = ThreadPool::new(4);
        let cfg = QuantileStreamConfig::telemetry(1024);
        let data = uniform(4 * 1024, 77);
        let path = ckpt_path("rechunk");
        let _ = std::fs::remove_file(&path);

        let mut dev = device(&pool);
        let source = SliceChunks::new(&data[..2048], 512);
        run_quantile_stream(&mut dev, &source, &cfg, Some(&path), false).unwrap();

        // Resuming over a re-chunked source (chunk boundary no longer
        // lands on the checkpoint offset) must fail loudly, not skew.
        let rechunked = SliceChunks::new(&data, 700);
        let err = run_quantile_stream(&mut dev, &rechunked, &cfg, Some(&path), true).unwrap_err();
        assert!(matches!(err, SelectError::InvalidArgument { .. }));

        // Transient chunk-load failures ride the shared retry ladder.
        struct Flaky<'a> {
            inner: SliceChunks<'a, f32>,
            failed: std::sync::Mutex<bool>,
        }
        impl ChunkSource<f32> for Flaky<'_> {
            fn num_chunks(&self) -> usize {
                self.inner.num_chunks()
            }
            fn load_chunk(&self, idx: usize) -> Result<Vec<f32>, ChunkError> {
                let mut failed = self.failed.lock().unwrap();
                if idx == 2 && !*failed {
                    *failed = true;
                    return Err(ChunkError {
                        chunk: idx,
                        message: "injected timeout".to_string(),
                        transient: true,
                    });
                }
                self.inner.load_chunk(idx)
            }
            fn total_len(&self) -> usize {
                self.inner.total_len()
            }
        }
        let flaky = Flaky {
            inner: SliceChunks::new(&data, 512),
            failed: std::sync::Mutex::new(false),
        };
        let mut dev2 = device(&pool);
        let run = run_quantile_stream(&mut dev2, &flaky, &cfg, None, false).unwrap();
        assert_eq!(run.windows.len(), 4);
        assert_eq!(run.events.retries, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prometheus_text_exports_latest_window() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let cfg = QuantileStreamConfig::telemetry(512);
        let mut engine = QuantileStream::new(cfg).unwrap();

        // Before any window closes: counters only, no gauges.
        let text = engine.prometheus_text("latency_ms");
        assert!(text.contains("latency_ms_windows_total 0"));
        assert!(!text.contains("q=\"0.5\""));

        engine.ingest(&mut dev, &uniform(1200, 5)).unwrap();
        let text = engine.prometheus_text("latency_ms");
        assert!(text.contains("# TYPE latency_ms gauge"));
        for q in ["0.5", "0.9", "0.99", "0.999"] {
            assert!(text.contains(&format!("latency_ms{{q=\"{q}\"}}")), "{text}");
        }
        assert!(text.contains("latency_ms_windows_total 2"));
        assert!(text.contains("latency_ms_ingested_total 1200"));
        assert!(text.contains("latency_ms_window_end_offset 1024"));
    }

    #[test]
    fn window_counters_feed_the_fixed_metric_schema() {
        let pool = ThreadPool::new(2);
        let mut dev = device(&pool);
        let session = obs::ObsSession::start();
        let cfg = QuantileStreamConfig::telemetry(256);
        let mut engine = QuantileStream::new(cfg).unwrap();
        engine.ingest(&mut dev, &uniform(256 * 3, 11)).unwrap();
        let path = ckpt_path("metrics");
        engine.save_checkpoint(&path).unwrap();
        let report = session.finish();
        let get = |name: &str| {
            report
                .snapshot
                .counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("select_quantile_windows_total"), 3);
        assert_eq!(get("select_quantile_checkpoints_total"), 1);
        // The gauges land on the Prometheus surface alongside them.
        let prom = report.snapshot.to_prometheus();
        assert!(prom.contains("select_quantile_windows_total 3"));
        assert!(prom.contains("select_quantile_checkpoints_total 1"));
        let _ = std::fs::remove_file(&path);
    }
}
