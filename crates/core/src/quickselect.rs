//! The QuickSelect reference implementation (§IV-F).
//!
//! "While SampleSelect chooses a large number of splitters and
//! (conceptually) partitions the elements into the resulting buckets,
//! QuickSelect only chooses a single so-called pivot element based on
//! which the input data is bipartitioned. This difference leads to
//! simpler treatment of a single element, but in general requires more
//! recursion levels and more read and write operations."
//!
//! The same performance engineering is applied as for SampleSelect
//! (§IV-F): the branchless bipartition kernel of Fig. 5, the two-pass
//! shared-memory counter scheme or direct global counters (§IV-G), warp
//! aggregation of the two counters via ballots, bitonic pivot selection,
//! and dynamic-parallelism tail recursion.
//!
//! One robustness addition: the partition pass separates elements
//! *equal* to the pivot into a middle region, so inputs with heavy
//! duplication terminate in `O(log n)` levels (the analogue of
//! SampleSelect's equality buckets).

use crate::bitonic::bitonic_sort;
use crate::element::{
    as_bits32, as_bits64, elems_from_bits32, elems_from_bits64, fill_lt_keys32, fill_lt_keys64,
    SelectElement,
};
use crate::instrument::SelectReport;
use crate::obs::{self, Histogram, SpanKind};
use crate::params::{AtomicScope, SampleSelectConfig};
use crate::recursion::{base_case_select, validate_input};
use crate::rng::SplitMix64;
use crate::{SelectError, SelectResult};
use gpu_sim::arch::v100;
use gpu_sim::warp::WARP_SIZE;
use gpu_sim::{Device, KernelCost, LaunchConfig, LaunchOrigin};
use hpc_par::simd::{self, SimdLevel};

/// Pivot sample size: a small shared-memory bitonic sort picks the
/// median of this many random elements.
const PIVOT_SAMPLE: usize = 64;

/// Expected depth is ~`1.4 log2(n)`; this is a generous safety bound.
const MAX_LEVELS: u32 = 512;

/// Pivot-selection kernel: sample, bitonic-sort in shared memory, take
/// the median (the paper reuses the same bitonic kernel as SampleSelect's
/// splitter selection, §IV-D).
fn pivot_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    cfg: &SampleSelectConfig,
    rng: &mut SplitMix64,
    origin: LaunchOrigin,
) -> T {
    let s = PIVOT_SAMPLE.min(data.len());
    let mut sample: Vec<T> = (0..s).map(|_| data[rng.next_below(data.len())]).collect();
    let mut cost = KernelCost::new();
    cost.blocks = 1;
    cost.uncoalesced_bytes += (s * T::BYTES) as u64;
    let stats = bitonic_sort(&mut sample);
    stats.charge::<T>(&mut cost);
    cost.global_write_bytes += T::BYTES as u64;
    let launch = LaunchConfig {
        blocks: 1,
        threads_per_block: cfg.threads_per_block.min(64),
        shared_mem_bytes: (s * T::BYTES) as u32,
    };
    device.commit("pivot", launch, origin, cost);
    sample[s / 2]
}

/// Per-level partition counts.
struct PartitionCounts {
    smaller: u64,
    equal: u64,
    /// Per-block (smaller, equal) partials for the write pass.
    partials: Vec<(u64, u64)>,
    blocks: usize,
    chunk: usize,
}

/// The `count` pass: compare every element against the pivot and count
/// the smaller/equal elements ("it only compares the elements against a
/// single pivot element, and updates two atomic counters", §V-F).
fn quick_count_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    pivot: T,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> PartitionCounts {
    let n = data.len();
    let launch = cfg.launch_config(n, T::BYTES);
    let blocks = launch.blocks as usize;
    let chunk = launch.block_chunk(n);

    let partials_buf = device.pooled_scatter::<(u64, u64)>(blocks, "quick-count-partials");
    let partials_ref = &partials_buf;
    let level = simd::simd_level();
    let pivot_key = pivot.to_lt_key();
    let mut cost = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        KernelCost::new(),
        |range, mut cost| {
            let mut keys32 = [0u32; WARP_SIZE];
            let mut keys64 = [0u64; WARP_SIZE];
            for block in range {
                let start = (block * chunk).min(n);
                let end = ((block + 1) * chunk).min(n);
                let mut smaller = 0u64;
                let mut equal = 0u64;
                if level == SimdLevel::Off {
                    for &x in &data[start..end] {
                        if x.lt(pivot) {
                            smaller += 1;
                        } else if !pivot.lt(x) {
                            equal += 1;
                        }
                    }
                } else {
                    // Lane-parallel pivot compare: one (lt, eq) mask
                    // pair per warp of keys, popcounts instead of
                    // per-element branches. The lt-key transform makes
                    // key equality coincide with "neither side lt".
                    let mut i = start;
                    while i < end {
                        let len = (end - i).min(WARP_SIZE);
                        let (lt, eq) = if T::BYTES == 4 {
                            fill_lt_keys32(&data[i..i + len], &mut keys32[..len], level);
                            simd::pivot_masks_u32(&keys32[..len], pivot_key as u32, level)
                        } else {
                            fill_lt_keys64(&data[i..i + len], &mut keys64[..len], level);
                            simd::pivot_masks_u64(&keys64[..len], pivot_key, level)
                        };
                        smaller += lt.count_ones() as u64;
                        equal += eq.count_ones() as u64;
                        i += len;
                    }
                }
                // SAFETY: one write per block index.
                unsafe { partials_ref.write(block, (smaller, equal)) };
                if start < end {
                    let len = (end - start) as u64;
                    let warps = len.div_ceil(WARP_SIZE as u64);
                    // Unlike SampleSelect's 256-counter histogram, the
                    // two pivot counters fit in registers: each thread
                    // accumulates its `items_per_thread` unrolled
                    // elements locally and issues one ballot-aggregated
                    // atomic per counter per batch. This privatization
                    // is why QuickSelect ends up memory-bound while
                    // SampleSelect is atomics-bound (SS V-D).
                    let batches = warps.div_ceil(cfg.items_per_thread as u64);
                    cost.global_read_bytes += len * T::BYTES as u64;
                    cost.int_ops += len * 2;
                    cost.warp_intrinsics += batches * 2;
                    match cfg.atomic_scope {
                        AtomicScope::Shared => {
                            cost.shared_atomic_warp_ops += batches * 2;
                            // block partials stored for the scan
                            cost.global_write_bytes += 2 * 4;
                        }
                        AtomicScope::Global => {
                            cost.global_atomic_ops += batches * 2;
                            cost.global_atomic_hot_ops += batches;
                        }
                    }
                    cost.blocks += 1;
                }
            }
            cost
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    );
    if cfg.atomic_scope == AtomicScope::Shared {
        // The scan over per-block partials (tiny; folded into this
        // kernel's record as extra traffic rather than a separate
        // launch, matching the fused treatment in §IV-G).
        cost.global_read_bytes += blocks as u64 * 2 * 4;
        cost.global_write_bytes += blocks as u64 * 2 * 4;
    }
    device.commit("quick_count", launch, origin, cost);

    // SAFETY: every block slot written exactly once.
    let partials = unsafe { partials_buf.into_vec(blocks) };
    let smaller = partials.iter().map(|p| p.0).sum();
    let equal = partials.iter().map(|p| p.1).sum();
    PartitionCounts {
        smaller,
        equal,
        partials,
        blocks,
        chunk,
    }
}

/// The branchless bipartition write pass (Fig. 5), extended with a
/// middle region for pivot-equal elements: smaller elements grow from
/// the left, larger from the right, equals in between.
fn bipartition_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    pivot: T,
    counts: &PartitionCounts,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> Vec<T> {
    let n = data.len();
    let blocks = counts.blocks;
    let chunk = counts.chunk;
    let launch = cfg.launch_config(n, T::BYTES);

    // Exclusive scans of the per-block partials give each block its
    // disjoint write ranges in all three regions.
    let mut smaller_off = Vec::with_capacity(blocks);
    let mut equal_off = Vec::with_capacity(blocks);
    let mut larger_off = Vec::with_capacity(blocks);
    let mut s_run = 0u64;
    let mut e_run = counts.smaller;
    let mut l_run = counts.smaller + counts.equal;
    for block in 0..blocks {
        smaller_off.push(s_run);
        equal_off.push(e_run);
        larger_off.push(l_run);
        let (s, e) = counts.partials[block];
        let start = block * chunk;
        let end = ((block + 1) * chunk).min(n);
        let total = (end.max(start) - start) as u64;
        s_run += s;
        e_run += e;
        l_run += total - s - e;
    }

    let out = device.pooled_scatter::<T>(n, "bipartition-out");
    let out_ref = &out;
    let smaller_off_ref = &smaller_off;
    let equal_off_ref = &equal_off;
    let larger_off_ref = &larger_off;
    let level = simd::simd_level();
    let pivot_key = pivot.to_lt_key();
    let cost = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        KernelCost::new(),
        |range, mut cost| {
            let mut keys32 = [0u32; WARP_SIZE];
            let mut keys64 = [0u64; WARP_SIZE];
            let mut staging32 = [0u32; WARP_SIZE];
            let mut staging64 = [0u64; WARP_SIZE];
            for block in range {
                let start = block * chunk;
                let end = ((block + 1) * chunk).min(n);
                if start >= end {
                    continue;
                }
                let mut s = smaller_off_ref[block];
                let mut e = equal_off_ref[block];
                let mut l = larger_off_ref[block];
                if level == SimdLevel::Off {
                    for &x in &data[start..end] {
                        // Fig. 5's conditional-move pattern: pick the target
                        // cursor without branching on the data.
                        let slot = if x.lt(pivot) {
                            &mut s
                        } else if !pivot.lt(x) {
                            &mut e
                        } else {
                            &mut l
                        };
                        // SAFETY: region scans give each block disjoint
                        // ranges; cursors hand out unique slots within them.
                        unsafe { out_ref.write(*slot as usize, x) };
                        *slot += 1;
                    }
                } else {
                    // Three-way masked classify + stable compress per
                    // warp: the per-region staging buffers are flushed
                    // at exact size into the block's disjoint region
                    // ranges, so the in-region element order (and the
                    // write-once contract) is the same as the scalar
                    // cursor walk's.
                    let mut i = start;
                    while i < end {
                        let len = (end - i).min(WARP_SIZE);
                        let lanes = simd::mask_for_len(len);
                        let (lt, eq) = if T::BYTES == 4 {
                            fill_lt_keys32(&data[i..i + len], &mut keys32[..len], level);
                            simd::pivot_masks_u32(&keys32[..len], pivot_key as u32, level)
                        } else {
                            fill_lt_keys64(&data[i..i + len], &mut keys64[..len], level);
                            simd::pivot_masks_u64(&keys64[..len], pivot_key, level)
                        };
                        let gt = !(lt | eq) & lanes;
                        for (mask, cursor) in [(lt, &mut s), (eq, &mut e), (gt, &mut l)] {
                            if mask == 0 {
                                continue;
                            }
                            // SAFETY: region scans give each block
                            // disjoint ranges; the cursors hand out
                            // unique contiguous runs within them.
                            unsafe {
                                if T::BYTES == 4 {
                                    let cnt = simd::compress_u32(
                                        as_bits32(&data[i..i + len]),
                                        mask,
                                        &mut staging32,
                                        level,
                                    );
                                    out_ref.write_slice(
                                        *cursor as usize,
                                        elems_from_bits32::<T>(&staging32[..cnt]),
                                    );
                                } else {
                                    let cnt = simd::compress_u64(
                                        as_bits64(&data[i..i + len]),
                                        mask,
                                        &mut staging64,
                                        level,
                                    );
                                    out_ref.write_slice(
                                        *cursor as usize,
                                        elems_from_bits64::<T>(&staging64[..cnt]),
                                    );
                                }
                            }
                            *cursor += mask.count_ones() as u64;
                        }
                        i += len;
                    }
                }
                let len = (end - start) as u64;
                let warps = len.div_ceil(WARP_SIZE as u64);
                // Same privatization as the count pass: one aggregated
                // cursor reservation per region per unrolled batch.
                let batches = warps.div_ceil(cfg.items_per_thread as u64);
                cost.global_read_bytes += len * T::BYTES as u64;
                cost.global_write_bytes += len * T::BYTES as u64;
                cost.int_ops += len * 3;
                cost.warp_intrinsics += batches * 2;
                match cfg.atomic_scope {
                    AtomicScope::Shared => cost.shared_atomic_warp_ops += batches * 2,
                    AtomicScope::Global => {
                        cost.global_atomic_ops += batches * 2;
                        cost.global_atomic_hot_ops += batches;
                    }
                }
                cost.blocks += 1;
            }
            cost
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    );
    device.commit("bipartition", launch, origin, cost);

    // SAFETY: the three regions tile 0..n and every slot is written once.
    unsafe { out.into_vec(n) }
}

/// One QuickSelect bipartition level as a public entry point: count
/// against `pivot`, then scatter into `smaller ++ equal ++ larger`
/// order. Exposed for the differential conformance suite, which
/// cross-validates this vectorized pass (under the device sanitizer)
/// against a thread-level `BlockExec` reference.
///
/// Returns the partitioned data plus the `(smaller, equal)` totals.
pub fn bipartition_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    pivot: T,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> (Vec<T>, u64, u64) {
    let counts = quick_count_kernel(device, data, pivot, cfg, origin);
    let (smaller, equal) = (counts.smaller, counts.equal);
    let out = bipartition_kernel(device, data, pivot, &counts, cfg, origin);
    (out, smaller, equal)
}

/// Exact QuickSelect on a simulated device.
pub fn quick_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    cfg.validate_count_only()
        .map_err(SelectError::InvalidConfig)?;
    validate_input(data, rank, cfg)?;

    let n = data.len();
    let records_before = device.records().len();
    obs::span_enter(SpanKind::Query, "quickselect", 0, device.now().as_ns());
    let mut rng = SplitMix64::new(cfg.seed);
    let max_levels = cfg.max_levels.unwrap_or(MAX_LEVELS).min(MAX_LEVELS);
    let work_budget: Option<f64> = cfg.work_budget_factor.map(|f| f * n as f64);
    let mut work_done: f64 = 0.0;

    let mut storage: Vec<T> = Vec::new();
    let mut use_storage = false;
    let mut k = rank;
    let mut levels = 0u32;
    let mut terminated_early = false;
    let value: T;

    loop {
        let cur: &[T] = if use_storage { &storage } else { data };
        let origin = if levels == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };
        if cur.len() <= cfg.base_case_size {
            value = base_case_select(device, cur, k, cfg, origin);
            break;
        }
        if levels >= max_levels {
            return Err(SelectError::RecursionLimit);
        }
        if let Some(budget) = work_budget {
            work_done += cur.len() as f64;
            if work_done > budget {
                return Err(SelectError::RecursionLimit);
            }
        }
        levels += 1;
        let level_ix = (levels - 1) as u64;
        obs::span_enter(SpanKind::Level, "level", level_ix, device.now().as_ns());

        let pivot = pivot_kernel(device, cur, cfg, &mut rng, origin);
        let counts = quick_count_kernel(device, cur, pivot, cfg, LaunchOrigin::Device);
        let smaller = counts.smaller as usize;
        let equal = counts.equal as usize;

        if (smaller..smaller + equal).contains(&k) {
            // The rank falls among the pivot-equal elements: done
            // without even writing the partition.
            value = pivot;
            terminated_early = true;
            obs::span_exit(device.now().as_ns());
            break;
        }

        let partitioned =
            bipartition_kernel(device, cur, pivot, &counts, cfg, LaunchOrigin::Device);
        if k < smaller {
            storage = partitioned[..smaller].to_vec();
        } else {
            storage = partitioned[smaller + equal..].to_vec();
            k -= smaller + equal;
        }
        obs::observe(Histogram::LevelKeptElements, storage.len() as u64);
        obs::span_exit(device.now().as_ns());
        use_storage = true;
    }

    obs::absorb_device(device);
    obs::span_exit(device.now().as_ns());
    let report = SelectReport::from_records(
        "quickselect",
        n,
        &device.records()[records_before..],
        levels,
        terminated_early,
    );
    Ok(SelectResult { value, report })
}

/// Exact QuickSelect on a default simulated device (Tesla V100).
pub fn quick_select<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    quick_select_on_device(&mut device, data, rank, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn select(data: &[f32], rank: usize, cfg: &SampleSelectConfig) -> SelectResult<f32> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        quick_select_on_device(&mut device, data, rank, cfg).unwrap()
    }

    #[test]
    fn matches_reference_on_random_data() {
        let data = uniform(100_000, 1);
        let cfg = SampleSelectConfig::default();
        for rank in [0usize, 1, 49_999, 99_999] {
            let res = select(&data, rank, &cfg);
            assert_eq!(
                res.value,
                reference_select(&data, rank).unwrap(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn matches_reference_both_scopes() {
        let data = uniform(50_000, 2);
        let expected = reference_select(&data, 30_000).unwrap();
        for scope in [AtomicScope::Shared, AtomicScope::Global] {
            let cfg = SampleSelectConfig::default().with_atomic_scope(scope);
            assert_eq!(select(&data, 30_000, &cfg).value, expected);
        }
    }

    #[test]
    fn duplicate_heavy_input_terminates_quickly() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<f32> = (0..100_000)
            .map(|_| (rng.next_below(4) as f32) * 2.0)
            .collect();
        let cfg = SampleSelectConfig::default();
        for rank in [0usize, 50_000, 99_999] {
            let res = select(&data, rank, &cfg);
            assert_eq!(res.value, reference_select(&data, rank).unwrap());
            assert!(res.report.levels < 20, "levels = {}", res.report.levels);
        }
    }

    #[test]
    fn all_equal_terminates_early() {
        let data = vec![3.5f32; 50_000];
        let res = select(&data, 12_345, &SampleSelectConfig::default());
        assert_eq!(res.value, 3.5);
        assert!(res.report.terminated_early);
        assert_eq!(res.report.levels, 1);
        // partition never ran
        assert_eq!(res.report.kernel_launches("bipartition"), 0);
    }

    #[test]
    fn needs_more_levels_than_sampleselect() {
        // §V-F: "the QuickSelect algorithm needs a much deeper recursion
        // hierarchy".
        let data = uniform(1 << 20, 4);
        let pool = ThreadPool::new(4);
        let cfg = SampleSelectConfig::default();
        let mut device = Device::new(v100(), &pool);
        let quick = quick_select_on_device(&mut device, &data, 1 << 19, &cfg).unwrap();
        device.reset();
        let sample =
            crate::recursion::sample_select_on_device(&mut device, &data, 1 << 19, &cfg).unwrap();
        assert!(
            quick.report.levels > 2 * sample.report.levels,
            "quick {} vs sample {}",
            quick.report.levels,
            sample.report.levels
        );
        assert!(quick.report.total_launches() > sample.report.total_launches());
    }

    #[test]
    fn moves_more_data_than_sampleselect() {
        // §IV-A: QuickSelect reads/writes ~2n vs SampleSelect's (1+eps)n.
        let data = uniform(1 << 18, 5);
        let pool = ThreadPool::new(4);
        let cfg = SampleSelectConfig::default();
        let mut device = Device::new(v100(), &pool);
        quick_select_on_device(&mut device, &data, 1 << 17, &cfg).unwrap();
        let quick_bytes: u64 = device
            .records()
            .iter()
            .map(|r| r.cost.total_global_bytes())
            .sum();
        device.reset();
        crate::recursion::sample_select_on_device(&mut device, &data, 1 << 17, &cfg).unwrap();
        let sample_bytes: u64 = device
            .records()
            .iter()
            .map(|r| r.cost.total_global_bytes())
            .sum();
        assert!(
            quick_bytes > sample_bytes,
            "quick {quick_bytes} vs sample {sample_bytes}"
        );
    }

    #[test]
    fn sorted_and_reverse_sorted_inputs() {
        let asc: Vec<f32> = (0..20_000).map(|i| i as f32).collect();
        let desc: Vec<f32> = (0..20_000).map(|i| (20_000 - i) as f32).collect();
        let cfg = SampleSelectConfig::default();
        assert_eq!(select(&asc, 500, &cfg).value, 500.0);
        assert_eq!(select(&desc, 500, &cfg).value, 501.0);
    }

    #[test]
    fn propagates_errors() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let cfg = SampleSelectConfig::default();
        assert_eq!(
            quick_select_on_device::<f32>(&mut device, &[], 0, &cfg).unwrap_err(),
            SelectError::EmptyInput
        );
        assert!(matches!(
            quick_select_on_device(&mut device, &[1.0f32], 1, &cfg).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
    }

    #[test]
    fn works_on_doubles() {
        let mut rng = SplitMix64::new(6);
        let data: Vec<f64> = (0..60_000).map(|_| rng.next_f64()).collect();
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let res =
            quick_select_on_device(&mut device, &data, 42, &SampleSelectConfig::default()).unwrap();
        assert_eq!(res.value, reference_select(&data, 42).unwrap());
    }
}
