//! Production MSD RadixSelect (Alabi et al. 2012, §III/\[10\]): most
//! significant-digit radix bucketing over the binary key representation,
//! promoted from the `baselines` sketch into a first-class backend.
//!
//! Each level histograms one 8-bit digit of the (order-preserving) sort
//! key, starting from the most significant, and recurses into the digit
//! bucket containing the target rank. The recursion depth is
//! **data-independent** — at most `key_bits / 8` passes, but never fewer
//! either: the paper's key comparison is that SampleSelect reaches its
//! base case in ~2 data-dependent levels where radix methods burn a
//! fixed number of full passes. RadiK (PAPERS.md) shows the radix family
//! winning anyway at large k and under adversarial splitter regimes,
//! which is why the [`crate::planner`] treats this backend as a
//! first-class candidate instead of a strawman.
//!
//! Differences from the baselines sketch, in production order:
//!
//! * **Zero-alloc warm path**: the per-block digit histogram and warp
//!   collision scratch are leased from [`KernelScratch`] (the sketch
//!   allocated `vec![0u64; 256]` per block per pass inside the hot
//!   closure), and the partials/oracle/filter buffers come from the
//!   device [`gpu_sim::BufferPool`] — pinned by the `zero_alloc`
//!   integration test.
//! * **ABFT**: per-pass digit-histogram-sum spot checks under
//!   [`crate::verify::VerifyPolicy::Spot`], plus unconditional
//!   `bucket-for-rank` / `filter-size` corruption guards so silent bit
//!   flips surface as retryable [`SelectError::Corruption`] instead of
//!   panics. Paranoid runs get a rank certificate from the resilient
//!   driver, exactly like the other device backends.
//! * **Resilience**: honors `max_levels` / `work_budget_factor` guards
//!   so the resilient driver's fallback chain and time budget apply.
//! * **Observability**: query/level/kernel spans, bucket-occupancy and
//!   atomic-collision gauges, and pool/counter absorption.

use crate::count::{CountResult, OracleBuf};
use crate::element::{fill_sort_keys32, fill_sort_keys64, SelectElement};
use crate::filter::filter_kernel_scoped;
use crate::instrument::SelectReport;
use crate::obs::{self, Gauge, Histogram, SpanKind, Track};
use crate::params::{AtomicScope, SampleSelectConfig};
use crate::recursion::{base_case_select_with, recycle_level, validate_input};
use crate::reduce::reduce_kernel;
use crate::verify::{check_filter_size, check_histogram};
use crate::workspace::{KernelScratch, SelectWorkspace};
use crate::{SelectError, SelectResult};
use gpu_sim::arch::v100;
use gpu_sim::warp::{warp_atomic_stats, WARP_SIZE};
use gpu_sim::{Device, KernelCost, LaunchOrigin};

/// Bits per radix digit (256 buckets, one oracle byte).
pub const DIGIT_BITS: u32 = 8;

/// Buckets per digit pass.
pub const RADIX_BUCKETS: usize = 1 << DIGIT_BITS;

/// Safety net mirroring `recursion::MAX_LEVELS`; the radix recursion is
/// structurally bounded by `key_bits / 8` anyway.
const MAX_LEVELS: u32 = 64;

/// Effective key width for a type: the number of bits that can differ.
pub fn key_bits<T: SelectElement>() -> u32 {
    (T::BYTES * 8) as u32
}

/// Digit passes a full radix recursion performs on `T` keys.
pub fn radix_passes<T: SelectElement>() -> u32 {
    key_bits::<T>().div_ceil(DIGIT_BITS)
}

/// Histogram one 8-bit digit of every element's sort key.
///
/// The structural twin of [`crate::count::count_kernel_scoped`]: same
/// pooled regions (`count-partials`, `count-oracles`, `counts`), same
/// warp-exact atomic accounting, same corruption hooks — but the bucket
/// of an element is `(key >> shift) & 0xff` instead of a search-tree
/// lookup, so there is no tree traversal to charge and the oracle is
/// always one byte.
pub fn radix_digit_count_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    shift: u32,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
    scratch: &KernelScratch,
) -> CountResult {
    let n = data.len();
    let b = RADIX_BUCKETS;
    let launch = cfg.launch_config(n, T::BYTES);
    let blocks = launch.blocks as usize;
    let chunk = launch.block_chunk(n);

    let partials = device.pooled_scatter::<u64>(b * blocks, "count-partials");
    let oracles = device.pooled_scatter::<u8>(n, "count-oracles");
    let partials_ref = &partials;
    let oracles_ref = &oracles;

    let (mut cost, _lanes_total, distinct_total) = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        (KernelCost::new(), 0u64, 0u64),
        |range, acc| {
            let (mut cost, mut lanes_total, mut distinct_total) = acc;
            let mut local = scratch.lease_u64(b);
            let mut warp_scratch = scratch.lease_u32(b);
            let mut warp_buckets = [0u32; WARP_SIZE];
            let mut warp_keys32 = [0u32; WARP_SIZE];
            let mut warp_keys64 = [0u64; WARP_SIZE];
            let level = hpc_par::simd::simd_level();
            for block in range {
                let start = block * chunk;
                let end = ((block + 1) * chunk).min(n);
                local.iter_mut().for_each(|c| *c = 0);
                if start < end {
                    let mut idx = start;
                    while idx < end {
                        let wlen = WARP_SIZE.min(end - idx);
                        // Lane-parallel sort-key conversion (the float
                        // transform carries NaN/sign branches; the
                        // digit shift+mask that follows is trivially
                        // vector-friendly).
                        if level == hpc_par::SimdLevel::Off {
                            for lane in 0..wlen {
                                warp_buckets[lane] =
                                    ((data[idx + lane].to_sort_key() >> shift) & 0xff) as u32;
                            }
                        } else if T::BYTES == 4 {
                            fill_sort_keys32(
                                &data[idx..idx + wlen],
                                &mut warp_keys32[..wlen],
                                level,
                            );
                            for lane in 0..wlen {
                                warp_buckets[lane] = (warp_keys32[lane] >> shift) & 0xff;
                            }
                        } else {
                            fill_sort_keys64(
                                &data[idx..idx + wlen],
                                &mut warp_keys64[..wlen],
                                level,
                            );
                            for lane in 0..wlen {
                                warp_buckets[lane] = ((warp_keys64[lane] >> shift) & 0xff) as u32;
                            }
                        }
                        for (lane, &digit) in warp_buckets[..wlen].iter().enumerate() {
                            local[digit as usize] += 1;
                            // SAFETY: each element index is owned by
                            // exactly one block chunk.
                            unsafe { oracles_ref.write(idx + lane, digit as u8) };
                        }
                        let stats = warp_atomic_stats(&warp_buckets[..wlen], &mut warp_scratch);
                        lanes_total += stats.lanes as u64;
                        distinct_total += stats.distinct as u64;
                        match cfg.atomic_scope {
                            AtomicScope::Shared => {
                                cost.shared_atomic_warp_ops += 1;
                                if !cfg.warp_aggregation {
                                    cost.shared_atomic_replays +=
                                        stats.max_multiplicity.saturating_sub(1) as u64;
                                }
                            }
                            AtomicScope::Global => {
                                cost.global_atomic_ops += if cfg.warp_aggregation {
                                    stats.distinct as u64
                                } else {
                                    stats.lanes as u64
                                };
                            }
                        }
                        if cfg.warp_aggregation {
                            // One ballot per digit bit instead of the
                            // replay serialization (Fig. 6 analogue).
                            cost.warp_intrinsics += DIGIT_BITS as u64;
                        }
                        idx += wlen;
                    }
                    let len = (end - start) as u64;
                    cost.global_read_bytes += len * T::BYTES as u64;
                    cost.int_ops += len * 2; // shift + mask
                    cost.global_write_bytes += len; // one oracle byte each
                }
                // Store this block's partial counts (bucket-major slot).
                for (digit, &c) in local.iter().enumerate() {
                    // SAFETY: (digit, block) pairs are unique per block.
                    unsafe { partials_ref.write(digit * blocks + block, c) };
                }
                if start >= end {
                    continue;
                }
                if cfg.atomic_scope == AtomicScope::Shared {
                    // Block flushes its digit counters to global memory
                    // for the reduce kernel.
                    cost.global_write_bytes += b as u64 * 4;
                }
                cost.blocks += 1;
            }
            scratch.give_u64(local);
            scratch.give_u32(warp_scratch);
            (cost, lanes_total, distinct_total)
        },
        |mut a, b| {
            a.0.merge(&b.0);
            (a.0, a.1 + b.1, a.2 + b.2)
        },
    );

    // SAFETY: every (digit, block) slot was written exactly once above.
    let partials = unsafe { partials.into_vec(b * blocks) };
    let mut counts = device.lease_vec::<u64>(b, "counts");
    counts.resize(b, 0);
    for digit in 0..b {
        counts[digit] = partials[digit * blocks..(digit + 1) * blocks].iter().sum();
    }

    if cfg.atomic_scope == AtomicScope::Global {
        let hot = counts.iter().copied().max().unwrap_or(0);
        cost.global_atomic_hot_ops = if cfg.warp_aggregation && n > 0 {
            let factor = distinct_total as f64 / n.max(1) as f64;
            (hot as f64 * factor).ceil() as u64
        } else {
            hot
        };
    }

    device.commit("digit_count", launch, origin, cost);

    // Fault-injection hooks on the freshly materialized device buffers;
    // corruption stays silent here and is caught by the ABFT checks.
    let mut oracles = unsafe { oracles.into_vec(n) };
    device.corrupt_region("counts", counts.as_mut_slice());
    device.corrupt_region("oracles", oracles.as_mut_slice());

    CountResult {
        counts,
        partials,
        blocks,
        oracles: Some(OracleBuf::U8(oracles)),
    }
}

/// Exact RadixSelect on a simulated device: the `rank`-th smallest
/// element of `data` (0-based), with a fresh workspace.
pub fn radix_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    radix_select_with_workspace(device, data, rank, cfg, &mut SelectWorkspace::new())
}

/// [`radix_select_on_device`] with a reusable [`SelectWorkspace`]: the
/// per-pass digit histograms, warp scratch and base-case buffers live in
/// `ws`, and the level buffers (counts, partials, oracles, prefix sums,
/// filter output) are leased from the device [`gpu_sim::BufferPool`]
/// when it is armed. With a warm workspace and pool, a steady-state
/// radix query performs zero heap allocations (pinned by the
/// `zero_alloc` integration test).
pub fn radix_select_with_workspace<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
) -> Result<SelectResult<T>, SelectError> {
    let mut report = SelectReport::empty("radixselect");
    let value = radix_select_into(device, data, rank, cfg, ws, &mut report)?;
    Ok(SelectResult { value, report })
}

/// [`radix_select_with_workspace`] writing into a caller-owned report.
///
/// The report shell is re-aggregated in place, so a caller that keeps
/// the same [`SelectReport`] across queries (as the zero-alloc suite
/// and long-lived `selectd` workers do) pays **zero** heap allocations
/// for an entire warm query — kernels, level buffers, and report
/// assembly included. On error the report keeps its previous contents.
pub fn radix_select_into<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
    report: &mut SelectReport,
) -> Result<T, SelectError> {
    cfg.validate_count_only()
        .map_err(SelectError::InvalidConfig)?;
    validate_input(data, rank, cfg)?;

    let n = data.len();
    let records_before = device.records().len();
    obs::span_enter(SpanKind::Query, "radixselect", 0, device.now().as_ns());
    let max_levels = cfg.max_levels.unwrap_or(MAX_LEVELS).min(MAX_LEVELS);
    let work_budget: Option<f64> = cfg.work_budget_factor.map(|f| f * n as f64);
    let mut work_done: f64 = 0.0;

    let mut storage: Vec<T> = Vec::new();
    let mut use_storage = false;
    let mut k = rank;
    let mut levels = 0u32;
    let mut shift = key_bits::<T>();

    let (value, terminated_early) = loop {
        let cur: &[T] = if use_storage { &storage } else { data };
        let origin = if levels == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };
        debug_assert!(k < cur.len());

        if cur.len() <= cfg.base_case_size {
            obs::span_enter(
                SpanKind::Kernel,
                "base_sort",
                levels as u64,
                device.now().as_ns(),
            );
            let SelectWorkspace {
                base, sort_scratch, ..
            } = &mut *ws;
            let value = base_case_select_with(device, cur, k, cfg, origin, base, sort_scratch);
            obs::span_exit(device.now().as_ns());
            break (value, false);
        }
        if shift == 0 {
            // All key bits consumed: the remaining elements share one
            // sort key, i.e. they are all equal under the element order.
            break (cur[0], true);
        }
        if levels >= max_levels {
            return Err(SelectError::RecursionLimit);
        }
        if let Some(budget) = work_budget {
            // Low-entropy keys barely shrink the bucket (every dead
            // digit pass keeps all n elements), so the cumulative
            // elements scanned trip the budget before the depth cap.
            work_done += cur.len() as f64;
            if work_done > budget {
                return Err(SelectError::RecursionLimit);
            }
        }
        shift -= DIGIT_BITS;
        let level_ix = levels as u64;
        levels += 1;
        obs::span_enter(SpanKind::Level, "level", level_ix, device.now().as_ns());

        obs::span_enter(
            SpanKind::Kernel,
            "digit_count",
            level_ix,
            device.now().as_ns(),
        );
        let count = radix_digit_count_kernel(device, cur, shift, cfg, origin, &ws.scratch);
        obs::span_exit(device.now().as_ns());
        if obs::enabled() {
            let ts_us = device.now().as_us();
            let occupied = count.counts.iter().filter(|&&c| c != 0).count() as u64;
            obs::gauge_set(Gauge::BucketOccupancy, occupied);
            obs::track_sample(Track::BucketOccupancy, ts_us, occupied as f64);
            if let Some(rec) = device.records().last() {
                let replays = rec.cost.shared_atomic_replays * 1_000_000;
                if let Some(ppm) = replays.checked_div(rec.cost.shared_atomic_warp_ops) {
                    obs::gauge_set(Gauge::AtomicCollisionRatePpm, ppm);
                    obs::track_sample(Track::AtomicCollisionRate, ts_us, ppm as f64 / 1e6);
                }
            }
        }
        if cfg.verify.spot_checks() {
            check_histogram(&count.counts, cur.len())?;
        }
        obs::span_enter(SpanKind::Kernel, "reduce", level_ix, device.now().as_ns());
        let red = reduce_kernel(device, &count, LaunchOrigin::Device);
        obs::span_exit(device.now().as_ns());

        let digit = red.bucket_for_rank(k as u64);
        if red.bucket_size(digit) == 0 {
            // Healthy runs always land the rank in a non-empty digit
            // bucket; an empty one means the counts (or their prefix
            // sums) were corrupted after the histogram was assembled.
            return Err(SelectError::Corruption {
                invariant: "bucket-for-rank",
                detail: format!("rank {k} mapped to empty digit bucket {digit}"),
            });
        }

        let digit_u32 = digit as u32;
        obs::span_enter(SpanKind::Kernel, "filter", level_ix, device.now().as_ns());
        let next = filter_kernel_scoped(
            device,
            cur,
            &count,
            &red,
            digit_u32..digit_u32 + 1,
            cfg,
            LaunchOrigin::Device,
            &ws.scratch,
        );
        obs::span_exit(device.now().as_ns());
        obs::observe(Histogram::LevelKeptElements, next.len() as u64);
        if cfg.verify.spot_checks() {
            check_filter_size(next.len(), red.bucket_size(digit))?;
        }
        let next_rank = k - red.bucket_offsets[digit] as usize;
        if next_rank >= next.len() {
            // Unconditionally guarded (not just under `verify`): a
            // corrupted oracle or count buffer can shrink the filter
            // output below the descending rank, and indexing past it at
            // the next level would panic instead of surfacing a
            // retryable error.
            return Err(SelectError::Corruption {
                invariant: "filter-size",
                detail: format!(
                    "descending rank {next_rank} outside filtered digit bucket of {} elements",
                    next.len()
                ),
            });
        }
        let prev = std::mem::replace(&mut storage, next);
        device.recycle_vec("filter-out", prev);
        recycle_level(device, count, red);
        obs::span_exit(device.now().as_ns());
        use_storage = true;
        k = next_rank;
    };

    // The last level's filtered bucket goes back to the pool for the
    // next query.
    device.recycle_vec("filter-out", storage);

    obs::absorb_device(device);
    obs::pool_sample(device);
    obs::span_exit(device.now().as_ns());

    report.refill_from_records(
        "radixselect",
        n,
        &device.records()[records_before..],
        levels,
        terminated_early,
    );
    Ok(value)
}

/// RadixSelect on a default simulated device (Tesla V100 on the
/// process-global thread pool).
pub fn radix_select<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    radix_select_on_device(&mut device, data, rank, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use crate::rng::SplitMix64;
    use gpu_sim::FaultPlan;
    use hpc_par::ThreadPool;

    fn select<T: SelectElement>(data: &[T], rank: usize) -> SelectResult<T> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        radix_select_on_device(&mut device, data, rank, &SampleSelectConfig::default()).unwrap()
    }

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32 * 2.0 - 1.0).collect()
    }

    #[test]
    fn matches_reference_on_floats() {
        let data = uniform(100_000, 1);
        for rank in [0usize, 1, 50_000, 99_999] {
            assert_eq!(
                select(&data, rank).value,
                reference_select(&data, rank).unwrap(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn matches_reference_on_integers() {
        let mut rng = SplitMix64::new(2);
        let data: Vec<u32> = (0..80_000).map(|_| rng.next_u64() as u32).collect();
        assert_eq!(
            select(&data, 40_000).value,
            reference_select(&data, 40_000).unwrap()
        );
        let signed: Vec<i32> = (0..80_000).map(|_| rng.next_u64() as i32).collect();
        assert_eq!(
            select(&signed, 12_345).value,
            reference_select(&signed, 12_345).unwrap()
        );
    }

    #[test]
    fn depth_bounded_by_key_bytes() {
        let f32s = uniform(1 << 20, 3);
        let res = select(&f32s, 1 << 19);
        assert!(res.report.levels <= 4, "f32 levels = {}", res.report.levels);
        let mut rng = SplitMix64::new(4);
        let f64s: Vec<f64> = (0..500_000).map(|_| rng.next_f64()).collect();
        let res = select(&f64s, 250_000);
        assert!(res.report.levels <= 8, "f64 levels = {}", res.report.levels);
    }

    #[test]
    fn all_equal_input_exhausts_key_bits() {
        // Identical keys: every digit pass keeps everything, so the
        // recursion burns all 4 passes and exits on bit exhaustion.
        let data = vec![7.5f32; 20_000];
        let res = select(&data, 10_000);
        assert_eq!(res.value, 7.5);
        assert!(res.report.terminated_early);
        assert_eq!(res.report.levels, 4);
    }

    #[test]
    fn negative_floats_ordered_correctly() {
        let vals = [-3.0f32, -1.0, -2.0, 0.0, 2.0, 1.0, -0.5];
        let big: Vec<f32> = (0..50_000)
            .map(|i| vals[i % 7] + (i / 7) as f32 * 1e-7)
            .collect();
        assert_eq!(select(&big, 10).value, reference_select(&big, 10).unwrap());
    }

    #[test]
    fn report_contains_radix_kernels() {
        let data = uniform(200_000, 5);
        let res = select(&data, 100_000);
        assert_eq!(res.report.algorithm, "radixselect");
        for name in ["digit_count", "reduce", "filter", "base_sort"] {
            assert!(
                res.report.kernel_launches(name) > 0,
                "missing kernel {name}"
            );
        }
        assert_eq!(res.report.kernel_launches("sample"), 0);
    }

    #[test]
    fn workspace_path_is_bit_identical_to_fresh() {
        let data = uniform(150_000, 6);
        let rank = 75_000;
        let pool = ThreadPool::new(2);

        let mut fresh_dev = Device::new(v100(), &pool);
        let fresh =
            radix_select_on_device(&mut fresh_dev, &data, rank, &SampleSelectConfig::default())
                .unwrap();

        let mut pooled_dev = Device::new(v100(), &pool);
        pooled_dev.enable_buffer_pool();
        let mut ws: SelectWorkspace<f32> = SelectWorkspace::new();
        for _ in 0..2 {
            radix_select_with_workspace(
                &mut pooled_dev,
                &data,
                rank,
                &SampleSelectConfig::default(),
                &mut ws,
            )
            .unwrap();
            pooled_dev.reset();
        }
        let pooled = radix_select_with_workspace(
            &mut pooled_dev,
            &data,
            rank,
            &SampleSelectConfig::default(),
            &mut ws,
        )
        .unwrap();

        assert_eq!(fresh.value.to_bits(), pooled.value.to_bits());
        assert_eq!(fresh.report.total_time, pooled.report.total_time);
        assert_eq!(fresh.report.levels, pooled.report.levels);
    }

    #[test]
    fn errors_propagate() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        assert_eq!(
            radix_select_on_device::<f32>(&mut device, &[], 0, &SampleSelectConfig::default())
                .unwrap_err(),
            SelectError::EmptyInput
        );
        assert_eq!(
            radix_select_on_device(&mut device, &[1.0f32], 1, &SampleSelectConfig::default())
                .unwrap_err(),
            SelectError::RankOutOfRange { rank: 1, len: 1 }
        );
    }

    #[test]
    fn max_levels_guard_trips_on_tight_cap() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(100_000, 9);
        let cfg = SampleSelectConfig::default().with_max_levels(0);
        assert_eq!(
            radix_select_on_device(&mut device, &data, 50_000, &cfg).unwrap_err(),
            SelectError::RecursionLimit
        );
        let cfg = SampleSelectConfig::default().with_max_levels(8);
        radix_select_on_device(&mut device, &data, 50_000, &cfg).unwrap();
    }

    #[test]
    fn work_budget_guard_trips_on_low_entropy_keys() {
        // Keys whose top three digits never differ: every early pass
        // keeps all n elements, so the scanned-work budget trips.
        let data: Vec<u32> = (0..50_000u32).map(|i| i % 251).collect();
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let cfg = SampleSelectConfig::default().with_work_budget_factor(1.5);
        assert_eq!(
            radix_select_on_device(&mut device, &data, 25_000, &cfg).unwrap_err(),
            SelectError::RecursionLimit
        );
        let cfg = SampleSelectConfig::default().with_work_budget_factor(8.0);
        let res = radix_select_on_device(&mut device, &data, 25_000, &cfg).unwrap();
        assert_eq!(res.value, reference_select(&data, 25_000).unwrap());
    }

    #[test]
    fn spot_checks_catch_injected_histogram_corruption() {
        use crate::verify::VerifyPolicy;
        let data = uniform(100_000, 11);
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        // Corruptible-access index 0 is the level-0 `counts` buffer
        // (radix draws no splitter sample, so counts materialize first).
        device.set_fault_plan(FaultPlan::new(7).corrupt_accesses_at(&[0]));
        let cfg = SampleSelectConfig::default().with_verify(VerifyPolicy::Spot);
        let err = radix_select_on_device(&mut device, &data, 50_000, &cfg).unwrap_err();
        assert!(
            matches!(err, SelectError::Corruption { .. }),
            "expected corruption, got {err:?}"
        );
    }
}
