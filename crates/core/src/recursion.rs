//! The exact SampleSelect driver (Fig. 1 / §IV-E): recursive bucket
//! selection with the recursion kept "on the device".
//!
//! Each level runs `sample → count → reduce → select_bucket → filter`
//! and descends into the bucket containing the target rank. Because the
//! recursion depth is not known a priori and host↔device round trips are
//! expensive, the paper keeps the control flow on the GPU with CUDA
//! Dynamic Parallelism tail launches; the simulator mirrors that with a
//! [`TailLaunchQueue`] whose follow-up launches are charged the (lower)
//! device-launch latency.

use crate::bitonic::bitonic_select_with_scratch;
use crate::count::{count_kernel_scoped, CountResult, OracleBuf};
use crate::element::SelectElement;
use crate::filter::filter_kernel_scoped;
use crate::instrument::SelectReport;
use crate::obs::{self, Gauge, Histogram, SpanKind, Track};
use crate::params::SampleSelectConfig;
use crate::reduce::{reduce_kernel, ReduceResult};
use crate::rng::SplitMix64;
use crate::splitter::sample_kernel_into;
use crate::verify::{check_filter_size, check_histogram};
use crate::workspace::SelectWorkspace;
use crate::{SelectError, SelectResult};
use gpu_sim::{Device, KernelCost, LaunchConfig, LaunchOrigin, TailLaunchQueue};

/// Safety net: the expected depth is `log_b(n / base) + 1`, i.e. 2-3 for
/// every practical input; anything past this indicates a logic error.
const MAX_LEVELS: u32 = 64;

/// One pending recursion level (the descriptor a device-side
/// `select_bucket` kernel would compute before tail-launching).
struct LevelTask {
    rank: usize,
    level: u32,
}

/// Validate common select preconditions; shared with the other drivers.
pub fn validate_input<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<(), SelectError> {
    if data.is_empty() {
        return Err(SelectError::EmptyInput);
    }
    if rank >= data.len() {
        return Err(SelectError::RankOutOfRange {
            rank,
            len: data.len(),
        });
    }
    if cfg.check_input {
        if let Some(index) = data.iter().position(|x| x.is_nan()) {
            return Err(SelectError::NanInput { index });
        }
    }
    Ok(())
}

/// Charge and record the base-case sorting kernel (§IV-D): load the
/// remaining elements into shared memory, bitonic-sort, return rank `k`.
pub fn base_case_select<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> T {
    base_case_select_with(
        device,
        data,
        k,
        cfg,
        origin,
        &mut Vec::new(),
        &mut Vec::new(),
    )
}

/// [`base_case_select`] with caller-owned element scratch: `buf` receives
/// the working copy and `sort_scratch` the padded bitonic buffer, so a
/// warm workspace makes the base case allocation-free.
pub fn base_case_select_with<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
    buf: &mut Vec<T>,
    sort_scratch: &mut Vec<T>,
) -> T {
    buf.clear();
    buf.extend_from_slice(data);
    let (value, stats) = bitonic_select_with_scratch(buf, k, sort_scratch);
    let mut cost = KernelCost::new();
    cost.blocks = 1;
    cost.global_read_bytes += (data.len() * T::BYTES) as u64;
    stats.charge::<T>(&mut cost);
    let launch = LaunchConfig {
        blocks: 1,
        threads_per_block: cfg.threads_per_block,
        shared_mem_bytes: (stats.padded_len * T::BYTES) as u32,
    };
    device.commit("base_sort", launch, origin, cost);
    value
}

/// Charge the tiny device-side kernel that picks the bucket containing
/// the rank and computes the launch parameters for the next level
/// (§IV-E: "additional kernels that select the bucket containing the
/// kth-smallest element, and compute the kernel launch parameters").
fn select_bucket_kernel(device: &mut Device, num_buckets: usize, origin: LaunchOrigin) {
    let mut cost = KernelCost::new();
    cost.blocks = 1;
    cost.global_read_bytes += num_buckets as u64 * 4;
    cost.int_ops += num_buckets as u64;
    let launch = LaunchConfig {
        blocks: 1,
        threads_per_block: 32,
        shared_mem_bytes: 0,
    };
    device.commit("select_bucket", launch, origin, cost);
}

/// Hand a finished level's device buffers back to the buffer pool (a
/// no-op drop when the pool is disarmed). Regions poisoned by injected
/// corruption are dropped by the pool instead of being recycled.
pub(crate) fn recycle_level(device: &mut Device, count: CountResult, red: ReduceResult) {
    recycle_count(device, count);
    device.recycle_vec("reduce-offsets", red.offsets);
    device.recycle_vec("bucket-offsets", red.bucket_offsets);
}

/// Return a dead count-kernel result's buffers to the device pool
/// (used standalone by the streaming histogram pass, which has no
/// reduce result).
pub(crate) fn recycle_count(device: &mut Device, count: CountResult) {
    device.recycle_vec("counts", count.counts);
    device.recycle_vec("count-partials", count.partials);
    match count.oracles {
        Some(OracleBuf::U8(v)) => device.recycle_vec("oracles", v),
        Some(OracleBuf::U16(v)) => device.recycle_vec("oracles", v),
        None => {}
    }
}

/// Exact SampleSelect on a simulated device: the `rank`-th smallest
/// element of `data` (0-based).
pub fn sample_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    sample_select_with_workspace(device, data, rank, cfg, &mut SelectWorkspace::new())
}

/// [`sample_select_on_device`] with a reusable [`SelectWorkspace`]: all
/// host-side element scratch (sample, splitters, sort buffers, base-case
/// copy, search tree) lives in `ws` and is reused across levels and
/// across queries, and the level buffers (counts, partials, oracles,
/// prefix sums, filter output) are leased from and recycled to the
/// device [`gpu_sim::BufferPool`] when it is armed. With a warm
/// workspace and pool the steady-state recursion performs zero heap
/// allocations in the kernels; the result is bit-identical to the
/// workspace-less path (pinned by a property test).
pub fn sample_select_with_workspace<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
) -> Result<SelectResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    validate_input(data, rank, cfg)?;

    let n = data.len();
    let records_before = device.records().len();
    obs::span_enter(SpanKind::Query, "sampleselect", 0, device.now().as_ns());
    let mut rng = SplitMix64::new(cfg.seed);
    let max_levels = cfg.max_levels.unwrap_or(MAX_LEVELS).min(MAX_LEVELS);
    let work_budget: Option<f64> = cfg.work_budget_factor.map(|f| f * n as f64);
    let mut work_done: f64 = 0.0;

    // Device-side tail recursion: every level enqueues at most one
    // follow-up, preserving the paper's launch-ordering argument.
    let mut queue: TailLaunchQueue<LevelTask> = TailLaunchQueue::new();
    queue.push(LevelTask { rank, level: 0 });

    let mut storage: Vec<T> = Vec::new();
    let mut use_storage = false;
    let mut levels = 0u32;
    let mut outcome: Option<(T, bool)> = None;

    while let Some(task) = queue.pop() {
        let origin = if task.level == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };
        let cur: &[T] = if use_storage { &storage } else { data };
        let k = task.rank;
        debug_assert!(k < cur.len());

        if cur.len() <= cfg.base_case_size.max(cfg.sample_size()) {
            obs::span_enter(
                SpanKind::Kernel,
                "base_sort",
                task.level as u64,
                device.now().as_ns(),
            );
            let SelectWorkspace {
                base, sort_scratch, ..
            } = &mut *ws;
            let value = base_case_select_with(device, cur, k, cfg, origin, base, sort_scratch);
            obs::span_exit(device.now().as_ns());
            outcome = Some((value, false));
            break;
        }
        if task.level >= max_levels {
            return Err(SelectError::RecursionLimit);
        }
        if let Some(budget) = work_budget {
            // Degenerate splitters barely shrink the bucket, so the
            // cumulative elements scanned blow past the budget long
            // before the depth cap trips.
            work_done += cur.len() as f64;
            if work_done > budget {
                return Err(SelectError::RecursionLimit);
            }
        }
        levels += 1;
        let level_ix = task.level as u64;
        obs::span_enter(SpanKind::Level, "level", level_ix, device.now().as_ns());

        // Splitter order is checked inside `sample_kernel` (always on:
        // an unsorted tree is unusable, not merely inaccurate).
        obs::span_enter(SpanKind::Kernel, "sample", level_ix, device.now().as_ns());
        sample_kernel_into(device, cur, cfg, &mut rng, origin, ws)?;
        obs::span_exit(device.now().as_ns());
        let tree = ws.tree().expect("sample_kernel_into built a tree");
        obs::span_enter(SpanKind::Kernel, "count", level_ix, device.now().as_ns());
        let count = count_kernel_scoped(device, cur, tree, cfg, true, origin, &ws.scratch);
        obs::span_exit(device.now().as_ns());
        if obs::enabled() {
            // Derived samples computed only when a session is installed
            // (the occupancy scan would otherwise be pure overhead).
            let ts_us = device.now().as_us();
            let occupied = count.counts.iter().filter(|&&c| c != 0).count() as u64;
            obs::gauge_set(Gauge::BucketOccupancy, occupied);
            obs::track_sample(Track::BucketOccupancy, ts_us, occupied as f64);
            if let Some(rec) = device.records().last() {
                let replays = rec.cost.shared_atomic_replays * 1_000_000;
                if let Some(ppm) = replays.checked_div(rec.cost.shared_atomic_warp_ops) {
                    obs::gauge_set(Gauge::AtomicCollisionRatePpm, ppm);
                    obs::track_sample(Track::AtomicCollisionRate, ts_us, ppm as f64 / 1e6);
                }
            }
        }
        if cfg.verify.spot_checks() {
            check_histogram(&count.counts, cur.len())?;
        }
        obs::span_enter(SpanKind::Kernel, "reduce", level_ix, device.now().as_ns());
        let red = reduce_kernel(device, &count, LaunchOrigin::Device);
        select_bucket_kernel(device, tree.num_buckets(), LaunchOrigin::Device);
        obs::span_exit(device.now().as_ns());

        let bucket = red.bucket_for_rank(k as u64);
        if red.bucket_size(bucket) == 0 {
            // Healthy runs always land the rank in a non-empty bucket;
            // an empty one means the counts (or their prefix sums) were
            // corrupted after the histogram was assembled.
            return Err(SelectError::Corruption {
                invariant: "bucket-for-rank",
                detail: format!("rank {k} mapped to empty bucket {bucket}"),
            });
        }

        if tree.is_equality_bucket(bucket) {
            // §IV-C: all elements of this bucket equal its lower-bound
            // splitter — terminate early.
            outcome = Some((tree.equality_value(bucket), true));
            recycle_level(device, count, red);
            obs::span_exit(device.now().as_ns());
            break;
        }

        let bucket_u32 = bucket as u32;
        obs::span_enter(SpanKind::Kernel, "filter", level_ix, device.now().as_ns());
        let next = filter_kernel_scoped(
            device,
            cur,
            &count,
            &red,
            bucket_u32..bucket_u32 + 1,
            cfg,
            LaunchOrigin::Device,
            &ws.scratch,
        );
        obs::span_exit(device.now().as_ns());
        obs::observe(Histogram::LevelKeptElements, next.len() as u64);
        if cfg.verify.spot_checks() {
            check_filter_size(next.len(), red.bucket_size(bucket))?;
        }
        let next_rank = k - red.bucket_offsets[bucket] as usize;
        if next_rank >= next.len() {
            // Unconditionally guarded (not just under `verify`): a
            // corrupted oracle or count buffer can shrink the filter
            // output below the descending rank, and indexing past it at
            // the next level would panic instead of surfacing a
            // retryable error.
            return Err(SelectError::Corruption {
                invariant: "filter-size",
                detail: format!(
                    "descending rank {next_rank} outside filtered bucket of {} elements",
                    next.len()
                ),
            });
        }
        let prev = std::mem::replace(&mut storage, next);
        device.recycle_vec("filter-out", prev);
        recycle_level(device, count, red);
        obs::span_exit(device.now().as_ns());
        use_storage = true;
        queue.push(LevelTask {
            rank: next_rank,
            level: task.level + 1,
        });
    }

    // The last level's filtered bucket goes back to the pool for the
    // next query.
    device.recycle_vec("filter-out", storage);

    obs::absorb_device(device);
    obs::pool_sample(device);
    obs::span_exit(device.now().as_ns());

    let (value, terminated_early) = outcome.expect("recursion ended without producing a value");
    let report = SelectReport::from_records(
        "sampleselect",
        n,
        &device.records()[records_before..],
        levels,
        terminated_early,
    );
    Ok(SelectResult { value, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use crate::params::AtomicScope;
    use gpu_sim::arch::{k20xm, v100};
    use hpc_par::ThreadPool;

    fn select_f32(data: &[f32], rank: usize, cfg: &SampleSelectConfig) -> SelectResult<f32> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        sample_select_on_device(&mut device, data, rank, cfg).unwrap()
    }

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    #[test]
    fn matches_reference_on_random_data() {
        let cfg = SampleSelectConfig::default();
        let data = uniform(100_000, 1);
        for rank in [0usize, 1, 50_000, 99_998, 99_999] {
            let result = select_f32(&data, rank, &cfg);
            assert_eq!(
                result.value,
                reference_select(&data, rank).unwrap(),
                "rank {rank}"
            );
        }
    }

    #[test]
    fn matches_reference_for_all_configs() {
        let data = uniform(30_000, 2);
        let rank = 12_345;
        let expected = reference_select(&data, rank).unwrap();
        for scope in [AtomicScope::Shared, AtomicScope::Global] {
            for agg in [false, true] {
                for buckets in [64usize, 256] {
                    let cfg = SampleSelectConfig::default()
                        .with_buckets(buckets)
                        .with_atomic_scope(scope)
                        .with_warp_aggregation(agg);
                    let result = select_f32(&data, rank, &cfg);
                    assert_eq!(
                        result.value, expected,
                        "scope {scope:?} agg {agg} b {buckets}"
                    );
                }
            }
        }
    }

    #[test]
    fn handles_duplicate_heavy_input_via_equality_buckets() {
        // d = 16 distinct values over 100k elements: most buckets become
        // equality buckets and the recursion terminates early.
        let mut rng = SplitMix64::new(3);
        let data: Vec<f32> = (0..100_000)
            .map(|_| (rng.next_below(16) as f32) * 2.5)
            .collect();
        let cfg = SampleSelectConfig::default();
        for rank in [0usize, 31_337, 99_999] {
            let result = select_f32(&data, rank, &cfg);
            assert_eq!(result.value, reference_select(&data, rank).unwrap());
        }
    }

    #[test]
    fn all_equal_input_terminates_early() {
        let data = vec![7.25f32; 50_000];
        let result = select_f32(&data, 25_000, &SampleSelectConfig::default());
        assert_eq!(result.value, 7.25);
        assert!(result.report.terminated_early);
        assert_eq!(result.report.levels, 1);
    }

    #[test]
    fn small_input_goes_straight_to_base_case() {
        let data: Vec<f32> = (0..100).map(|i| (100 - i) as f32).collect();
        let result = select_f32(&data, 10, &SampleSelectConfig::default());
        assert_eq!(result.value, 11.0);
        assert_eq!(result.report.levels, 0);
        assert_eq!(result.report.kernel_launches("base_sort"), 1);
        assert_eq!(result.report.kernel_launches("count"), 0);
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        // 2^20 elements with 256 buckets: one level reduces to ~4k,
        // which is under sample_size, so exactly one level + base case.
        let data = uniform(1 << 20, 4);
        let result = select_f32(&data, 500_000, &SampleSelectConfig::default());
        assert!(
            result.report.levels <= 2,
            "levels = {}",
            result.report.levels
        );
        assert_eq!(result.value, reference_select(&data, 500_000).unwrap());
    }

    #[test]
    fn error_on_empty_input() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let err =
            sample_select_on_device::<f32>(&mut device, &[], 0, &SampleSelectConfig::default())
                .unwrap_err();
        assert_eq!(err, SelectError::EmptyInput);
    }

    #[test]
    fn error_on_rank_out_of_range() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let err = sample_select_on_device(
            &mut device,
            &[1.0f32, 2.0],
            2,
            &SampleSelectConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SelectError::RankOutOfRange { rank: 2, len: 2 });
    }

    #[test]
    fn error_on_nan_with_check_enabled() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let cfg = SampleSelectConfig {
            check_input: true,
            ..SampleSelectConfig::default()
        };
        let data = vec![1.0f32, f32::NAN, 3.0];
        let err = sample_select_on_device(&mut device, &data, 0, &cfg).unwrap_err();
        assert_eq!(err, SelectError::NanInput { index: 1 });
    }

    #[test]
    fn error_on_invalid_config() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let cfg = SampleSelectConfig::default().with_buckets(512); // needs wide oracles
        let err = sample_select_on_device(&mut device, &[1.0f32; 10], 0, &cfg).unwrap_err();
        assert!(matches!(err, SelectError::InvalidConfig(_)));
    }

    #[test]
    fn max_levels_guard_trips_on_tight_cap() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(100_000, 9);
        let cfg = SampleSelectConfig::default().with_max_levels(0);
        let err = sample_select_on_device(&mut device, &data, 50_000, &cfg).unwrap_err();
        assert_eq!(err, SelectError::RecursionLimit);
        // A generous cap does not interfere.
        let cfg = SampleSelectConfig::default().with_max_levels(32);
        sample_select_on_device(&mut device, &data, 50_000, &cfg).unwrap();
    }

    #[test]
    fn work_budget_guard_trips_when_exhausted() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(100_000, 10);
        // First level alone scans n elements > 0.5 * n.
        let cfg = SampleSelectConfig::default().with_work_budget_factor(0.5);
        let err = sample_select_on_device(&mut device, &data, 50_000, &cfg).unwrap_err();
        assert_eq!(err, SelectError::RecursionLimit);
        // A healthy run needs barely more than n.
        let cfg = SampleSelectConfig::default().with_work_budget_factor(2.0);
        sample_select_on_device(&mut device, &data, 50_000, &cfg).unwrap();
    }

    #[test]
    fn report_contains_all_level_kernels() {
        let data = uniform(200_000, 5);
        let result = select_f32(&data, 100_000, &SampleSelectConfig::default());
        for name in [
            "sample",
            "count",
            "reduce",
            "select_bucket",
            "filter",
            "base_sort",
        ] {
            assert!(
                result.report.kernel_launches(name) > 0,
                "missing kernel {name}"
            );
        }
        assert!(result.report.total_time.as_ns() > 0.0);
        assert!(result.report.throughput() > 0.0);
    }

    #[test]
    fn deeper_levels_use_device_launches() {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(1 << 20, 6);
        sample_select_on_device(&mut device, &data, 1 << 19, &SampleSelectConfig::default())
            .unwrap();
        let device_launches = device
            .records()
            .iter()
            .filter(|r| r.origin == LaunchOrigin::Device)
            .count();
        assert!(
            device_launches > 0,
            "tail recursion must launch from device"
        );
        // level-0 sample and count come from the host
        assert_eq!(device.records()[0].origin, LaunchOrigin::Host);
    }

    #[test]
    fn works_on_integers_and_doubles() {
        let mut rng = SplitMix64::new(7);
        let ints: Vec<u32> = (0..50_000).map(|_| rng.next_u64() as u32).collect();
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let r = sample_select_on_device(&mut device, &ints, 25_000, &SampleSelectConfig::default())
            .unwrap();
        assert_eq!(r.value, reference_select(&ints, 25_000).unwrap());

        let doubles: Vec<f64> = (0..50_000).map(|_| rng.next_f64()).collect();
        let r = sample_select_on_device(&mut device, &doubles, 100, &SampleSelectConfig::default())
            .unwrap();
        assert_eq!(r.value, reference_select(&doubles, 100).unwrap());
    }

    #[test]
    fn kepler_and_volta_agree_functionally() {
        let data = uniform(150_000, 8);
        let pool = ThreadPool::new(4);
        let cfg_k = SampleSelectConfig::tuned_for(&k20xm());
        let cfg_v = SampleSelectConfig::tuned_for(&v100());
        let mut dk = Device::new(k20xm(), &pool);
        let mut dv = Device::new(v100(), &pool);
        let rk = sample_select_on_device(&mut dk, &data, 75_000, &cfg_k).unwrap();
        let rv = sample_select_on_device(&mut dv, &data, 75_000, &cfg_v).unwrap();
        assert_eq!(rk.value, rv.value);
        assert_eq!(rk.value, reference_select(&data, 75_000).unwrap());
    }
}
