//! The `reduce` kernel (§IV-G, step 2): an exclusive prefix sum over the
//! block-local partial bucket counts.
//!
//! The scanned values serve two purposes at once:
//!
//! 1. the per-bucket start offsets `r_i` (Fig. 1's `prefix_sum(counts)`)
//!    used to pick the bucket containing the target rank, and
//! 2. the per-(bucket, block) write offsets the `filter` kernel uses to
//!    place elements contiguously without global collisions.

use crate::count::CountResult;
use gpu_sim::{Device, KernelCost, LaunchConfig, LaunchOrigin, SanitizerFinding, SanitizerKind};

/// Result of the reduce kernel.
#[derive(Debug, Clone)]
pub struct ReduceResult {
    /// Exclusive scan over the bucket-major partials
    /// (`offsets[bucket * blocks + block]` = global output position of
    /// the first element of `bucket` found by `block`).
    pub offsets: Vec<u64>,
    /// Start rank of each bucket (`r_i`, length `b + 1`;
    /// `bucket_offsets[b] == n`).
    pub bucket_offsets: Vec<u64>,
    /// Grid size the partials came from.
    pub blocks: usize,
}

impl ReduceResult {
    /// Elements in bucket `i`.
    pub fn bucket_size(&self, bucket: usize) -> u64 {
        self.bucket_offsets[bucket + 1] - self.bucket_offsets[bucket]
    }

    /// The bucket containing global rank `k` (Fig. 1, line 13).
    pub fn bucket_for_rank(&self, rank: u64) -> usize {
        hpc_par::scan::bucket_for_rank(&self.bucket_offsets[..self.bucket_offsets.len() - 1], rank)
    }
}

/// Run the reduce kernel over a count result.
pub fn reduce_kernel(
    device: &mut Device,
    count: &CountResult,
    origin: LaunchOrigin,
) -> ReduceResult {
    let blocks = count.blocks;
    let b = count.counts.len();
    let mut offsets = device.lease_vec::<u64>(count.partials.len(), "reduce-offsets");
    offsets.extend_from_slice(&count.partials);
    let total = hpc_par::parallel_exclusive_scan(device.pool(), &mut offsets);

    // Sanitize mode: an exclusive scan of non-negative partials must be
    // monotone and end at the running total — a violated window means
    // the partials (or the scan itself) were corrupted, which would send
    // the filter kernel's disjoint write ranges overlapping. Reported as
    // out-of-bounds findings on the reduce record.
    if let Some(sink) = device.sanitizer_sink() {
        for (i, w) in offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                sink.record(SanitizerFinding {
                    kind: SanitizerKind::OutOfBounds,
                    index: i + 1,
                    phase: 0,
                    thread: None,
                    other_thread: None,
                    context: "reduce-scan".to_string(),
                });
            }
        }
        if offsets.last().copied().unwrap_or(0) > total {
            sink.record(SanitizerFinding {
                kind: SanitizerKind::OutOfBounds,
                index: offsets.len(),
                phase: 0,
                thread: None,
                other_thread: None,
                context: "reduce-scan".to_string(),
            });
        }
    }

    let mut bucket_offsets = device.lease_vec::<u64>(b + 1, "bucket-offsets");
    bucket_offsets.reserve(b + 1);
    for bucket in 0..b {
        bucket_offsets.push(offsets[bucket * blocks]);
    }
    bucket_offsets.push(total);

    // Cost: the scan reads and writes the partial array once (work-
    // efficient scan; the logarithmic sweep factor is folded into the
    // int-op charge).
    let len = (b * blocks) as u64;
    let mut cost = KernelCost::new();
    cost.global_read_bytes += len * 4;
    cost.global_write_bytes += len * 4;
    cost.int_ops += len * 2;
    cost.blocks = blocks.min(64) as u64;

    let launch = LaunchConfig {
        blocks: blocks.min(64) as u32,
        threads_per_block: 256,
        shared_mem_bytes: 0,
    };
    device.commit("reduce", launch, origin, cost);

    ReduceResult {
        offsets,
        bucket_offsets,
        blocks,
    }
}

/// Totals-only reduce for the count-only (approximate) pipeline: scan
/// just the `b` bucket totals instead of the full `b x blocks` partial
/// array. The approximate variant never filters, so per-block offsets
/// are not needed — this is why Fig. 9's "count w.o. write" bar has a
/// cheaper reduce segment than the recording variant ("the following
/// reduction becomes more expensive, as additionally to the total bucket
/// counts, also the partial sums need to be computed", SS V-F).
pub fn reduce_totals_kernel(
    device: &mut Device,
    count: &CountResult,
    origin: LaunchOrigin,
) -> ReduceResult {
    let b = count.counts.len();
    let mut bucket_offsets = device.lease_vec::<u64>(b + 1, "bucket-offsets");
    bucket_offsets.extend_from_slice(&count.counts);
    let total = hpc_par::exclusive_scan(&mut bucket_offsets);
    bucket_offsets.push(total);

    let mut cost = KernelCost::new();
    cost.global_read_bytes += b as u64 * 4;
    cost.global_write_bytes += b as u64 * 4;
    cost.int_ops += b as u64 * 2;
    cost.blocks = 1;
    let launch = LaunchConfig {
        blocks: 1,
        threads_per_block: 256,
        shared_mem_bytes: 0,
    };
    device.commit("reduce", launch, origin, cost);

    ReduceResult {
        offsets: Vec::new(),
        bucket_offsets,
        blocks: count.blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_kernel;
    use crate::params::SampleSelectConfig;
    use crate::rng::SplitMix64;
    use crate::searchtree::SearchTree;
    use gpu_sim::arch::v100;
    use hpc_par::ThreadPool;

    fn make_count(data: &[f32]) -> (CountResult, ThreadPool) {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let tree = SearchTree::build(&[10.0f32, 20.0, 30.0]);
        let cfg = SampleSelectConfig::default().with_buckets(4);
        let res = count_kernel(&mut device, data, &tree, &cfg, true, LaunchOrigin::Host);
        (res, pool)
    }

    #[test]
    fn bucket_offsets_are_exclusive_scan_of_counts() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<f32> = (0..50_000).map(|_| rng.next_f64() as f32 * 40.0).collect();
        let (count, pool) = make_count(&data);
        let mut device = Device::new(v100(), &pool);
        let red = reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        assert_eq!(red.bucket_offsets.len(), 5);
        assert_eq!(red.bucket_offsets[0], 0);
        let mut running = 0;
        for i in 0..4 {
            assert_eq!(red.bucket_offsets[i], running);
            running += count.counts[i];
            assert_eq!(red.bucket_size(i), count.counts[i]);
        }
        assert_eq!(red.bucket_offsets[4], data.len() as u64);
    }

    #[test]
    fn offsets_monotone_and_consistent() {
        let mut rng = SplitMix64::new(4);
        let data: Vec<f32> = (0..80_000).map(|_| rng.next_f64() as f32 * 40.0).collect();
        let (count, pool) = make_count(&data);
        let mut device = Device::new(v100(), &pool);
        let red = reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        assert!(red.offsets.windows(2).all(|w| w[0] <= w[1]));
        // offsets[bucket*blocks + block] + partial == next offset
        let blocks = count.blocks;
        for bucket in 0..4 {
            for block in 0..blocks {
                let i = bucket * blocks + block;
                let next = if i + 1 < red.offsets.len() {
                    red.offsets[i + 1]
                } else {
                    data.len() as u64
                };
                assert_eq!(red.offsets[i] + count.partials[i], next);
            }
        }
    }

    #[test]
    fn bucket_for_rank_picks_containing_bucket() {
        let data = vec![5.0f32, 15.0, 15.5, 25.0, 25.5, 25.9, 35.0];
        let (count, pool) = make_count(&data);
        let mut device = Device::new(v100(), &pool);
        let red = reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        // counts: [1, 2, 3, 1]; offsets [0, 1, 3, 6]
        assert_eq!(red.bucket_for_rank(0), 0);
        assert_eq!(red.bucket_for_rank(1), 1);
        assert_eq!(red.bucket_for_rank(2), 1);
        assert_eq!(red.bucket_for_rank(3), 2);
        assert_eq!(red.bucket_for_rank(5), 2);
        assert_eq!(red.bucket_for_rank(6), 3);
    }

    #[test]
    fn totals_only_reduce_matches_bucket_offsets() {
        let mut rng = SplitMix64::new(6);
        let data: Vec<f32> = (0..50_000).map(|_| rng.next_f64() as f32 * 40.0).collect();
        let (count, pool) = make_count(&data);
        let mut device = Device::new(v100(), &pool);
        let full = reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        let cheap = reduce_totals_kernel(&mut device, &count, LaunchOrigin::Device);
        assert_eq!(full.bucket_offsets, cheap.bucket_offsets);
        // the totals-only variant moves far less data
        let recs = device.records();
        assert!(recs[1].cost.global_read_bytes < recs[0].cost.global_read_bytes / 4);
    }

    #[test]
    fn reduce_records_kernel_cost() {
        let data = vec![1.0f32; 1000];
        let (count, pool) = make_count(&data);
        let mut device = Device::new(v100(), &pool);
        reduce_kernel(&mut device, &count, LaunchOrigin::Device);
        let rec = &device.records()[0];
        assert_eq!(rec.name, "reduce");
        let len = (4 * count.blocks) as u64;
        assert_eq!(rec.cost.global_read_bytes, len * 4);
        assert_eq!(rec.cost.global_write_bytes, len * 4);
    }
}
