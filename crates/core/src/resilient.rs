//! Resilient selection: retry, fallback, and graceful degradation on
//! top of the plain drivers.
//!
//! Real GPU deployments fail in ways the paper's measurement setting
//! never sees: kernel launches error out, device memory runs dry, and
//! I/O feeding an out-of-core run stalls. This module wraps the
//! SampleSelect / QuickSelect / streaming drivers with a policy layer
//! that keeps returning *correct* answers under injected faults
//! ([`gpu_sim::FaultPlan`]):
//!
//! * **Retry** — a transient device fault (an injected launch failure or
//!   allocation failure latched by the [`Device`]) discards the
//!   attempt's result, backs the simulated clock off exponentially, and
//!   reruns with a *re-seeded* splitter sample so the retry does not
//!   deterministically replay the same schedule.
//! * **Fallback** — a recursion that fails to converge (depth or work
//!   budget exhausted — the signature of degenerate splitters) switches
//!   backend: SampleSelect → QuickSelect → CPU sort. The CPU sort
//!   terminates unconditionally, so the chain always produces the exact
//!   answer.
//! * **Degradation** — under a time budget, once the simulated clock
//!   passes the deadline the driver stops pursuing the exact answer and
//!   returns the single-pass approximate result, tagged with its exact
//!   achieved rank and rank error ([`Outcome::Approximate`]).
//!
//! Every action is recorded in [`ResilienceEvents`] on the returned
//! report; with a fixed [`gpu_sim::FaultPlan`] seed the whole event log
//! is deterministic.

use crate::approx::approx_select_on_device;
use crate::element::{reference_select, SelectElement};
use crate::instrument::{ResilienceEvents, SelectReport};
use crate::obs::{self, SpanKind};
use crate::params::SampleSelectConfig;
use crate::quickselect::quick_select_on_device;
use crate::recursion::{sample_select_on_device, validate_input};
use crate::rng::SplitMix64;
use crate::streaming::{streaming_select, ChunkSource};
use crate::verify::certify_rank;
use crate::{SelectError, SelectResult};
use gpu_sim::arch::v100;
use gpu_sim::{Device, SimTime};

/// How transient faults are retried.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries per backend after the initial attempt.
    pub max_retries: u32,
    /// Simulated backoff before the first retry.
    pub backoff: SimTime,
    /// Backoff growth per retry (exponential backoff at 2.0).
    pub backoff_multiplier: f64,
    /// Ceiling on a single backoff: exponential growth stops here, so a
    /// long retry chain degrades the clock linearly instead of
    /// geometrically.
    pub max_backoff: SimTime,
    /// Seed for the decorrelated backoff jitter. Two retry chains with
    /// the same policy but different *salts* (backend, shard index)
    /// de-synchronize, while any (seed, salt, attempt) triple always
    /// produces the same delay — retries stay bit-reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff: SimTime::from_us(50.0),
            backoff_multiplier: 2.0,
            max_backoff: SimTime::from_ms(5.0),
            jitter_seed: 0x5EED_BA5E_0DDB_A115,
        }
    }
}

impl RetryPolicy {
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// The backoff before retry `attempt` (0-based) of the chain identified
/// by `salt`: exponential growth clamped to `max_backoff`, then scaled
/// by a seeded jitter factor in `[0.5, 1.5)`.
///
/// Without the jitter, K shards hitting the same transient fault all
/// re-launch at the same simulated instant (a thundering herd on the
/// coordinator and the interconnect); decorrelating per (salt, attempt)
/// spreads them out while keeping every delay a pure function of the
/// policy seed.
pub fn jittered_backoff(policy: &RetryPolicy, salt: u64, attempt: u32) -> SimTime {
    let mut backoff = policy.backoff;
    for _ in 0..attempt {
        backoff = backoff * policy.backoff_multiplier;
    }
    if backoff > policy.max_backoff {
        backoff = policy.max_backoff;
    }
    let mut rng = SplitMix64::new(
        policy
            .jitter_seed
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(attempt as u64),
    );
    let factor = 0.5 + rng.next_f64();
    let jittered = backoff * factor;
    if jittered > policy.max_backoff {
        policy.max_backoff
    } else {
        jittered
    }
}

/// Policy knobs of the resilient driver.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Transient-fault retry policy.
    pub retry: RetryPolicy,
    /// Simulated-time budget. Once the device clock passes
    /// `start + budget`, the driver degrades to the approximate variant
    /// instead of starting another exact attempt.
    pub time_budget: Option<SimTime>,
    /// Recursion-depth guard handed to the inner drivers (overrides
    /// [`SampleSelectConfig::max_levels`] when set): tripping it
    /// triggers a backend fallback instead of an error.
    pub max_levels: Option<u32>,
    /// Work-budget guard handed to the inner drivers (overrides
    /// [`SampleSelectConfig::work_budget_factor`] when set).
    pub work_budget_factor: Option<f64>,
}

impl ResilienceConfig {
    pub fn with_time_budget(mut self, budget: SimTime) -> Self {
        self.time_budget = Some(budget);
        self
    }

    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.retry.max_retries = retries;
        self
    }

    pub fn with_max_levels(mut self, levels: u32) -> Self {
        self.max_levels = Some(levels);
        self
    }

    pub fn with_work_budget_factor(mut self, factor: f64) -> Self {
        self.work_budget_factor = Some(factor);
        self
    }
}

/// Which implementation produced the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The paper's SampleSelect (first choice of the default chain).
    SampleSelect,
    /// The engineered QuickSelect reference (first fallback).
    QuickSelect,
    /// MSD RadixSelect ([`crate::radix`]) — only enters a chain when the
    /// [`crate::planner`] puts it first; never a default fallback, since
    /// its fixed `key_bits / 8` passes are the wrong medicine for the
    /// degenerate inputs that make the adaptive recursions fail.
    RadixSelect,
    /// Host-side sort-and-index (last resort; cannot fail).
    CpuSort,
}

impl Backend {
    pub fn name(self) -> &'static str {
        match self {
            Backend::SampleSelect => "sampleselect",
            Backend::QuickSelect => "quickselect",
            Backend::RadixSelect => "radixselect",
            Backend::CpuSort => "cpu-sort",
        }
    }

    fn report_label(self) -> &'static str {
        match self {
            Backend::SampleSelect => "resilient-sampleselect",
            Backend::QuickSelect => "resilient-quickselect",
            Backend::RadixSelect => "resilient-radixselect",
            Backend::CpuSort => "resilient-cpu-sort",
        }
    }

    fn salt(self) -> u64 {
        match self {
            Backend::SampleSelect => 1,
            Backend::QuickSelect => 2,
            Backend::CpuSort => 3,
            Backend::RadixSelect => 4,
        }
    }
}

/// The default fallback chain: the paper's algorithm, the engineered
/// reference, then the host sort that cannot fail.
pub const DEFAULT_CHAIN: [Backend; 3] = [
    Backend::SampleSelect,
    Backend::QuickSelect,
    Backend::CpuSort,
];

/// The answer, tagged with its accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome<T> {
    /// The exact `rank`-th smallest element.
    Exact(T),
    /// A nearby splitter returned under a time budget, with its exact
    /// rank (splitter ranks are free — §II-C) and distance to target.
    Approximate {
        value: T,
        achieved_rank: u64,
        rank_error: u64,
    },
}

impl<T: Copy> Outcome<T> {
    /// The selected value, exact or approximate.
    pub fn value(&self) -> T {
        match self {
            Outcome::Exact(v) => *v,
            Outcome::Approximate { value, .. } => *value,
        }
    }

    pub fn is_exact(&self) -> bool {
        matches!(self, Outcome::Exact(_))
    }
}

/// Result of a resilient selection run.
#[derive(Debug, Clone)]
pub struct ResilientResult<T> {
    /// The selected value and its accuracy tag.
    pub outcome: Outcome<T>,
    /// The backend that produced it.
    pub backend: Backend,
    /// Measurement report over *all* attempts (including discarded
    /// ones), with the resilience event log attached.
    pub report: SelectReport,
}

/// Deterministically derive the seed of retry `attempt` from the base
/// seed, so a retry draws a fresh splitter sample without becoming
/// run-to-run nondeterministic.
fn retry_seed(base: u64, backend: Backend, attempt: u32) -> u64 {
    let salt = backend.salt();
    base ^ (0x9E37_79B9_7F4A_7C15u64
        .wrapping_mul(attempt as u64 + 1)
        .wrapping_add(salt))
}

fn backoff_and_count(
    device: &mut Device,
    policy: &RetryPolicy,
    attempt: u32,
    events: &mut ResilienceEvents,
    backend: Backend,
) {
    let backoff = jittered_backoff(policy, backend.salt(), attempt);
    events.retry(format!(
        "{} attempt {} re-seeded after {}",
        backend.name(),
        attempt + 2,
        backoff
    ));
    device.advance_time(backoff);
}

/// Exact selection with retry, fallback, and degradation. See the
/// module docs for the policy; `cfg` seeds the first attempt and `rcfg`
/// controls the resilience behaviour.
pub fn resilient_select_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    rcfg: &ResilienceConfig,
) -> Result<ResilientResult<T>, SelectError> {
    resilient_select_with_chain(device, data, rank, cfg, rcfg, &DEFAULT_CHAIN)
}

/// [`resilient_select_on_device`] with the fallback chain reordered so
/// the [`crate::planner`]'s chosen backend runs first. The planner's
/// pick gets the retry budget and the certificate; if it fails to
/// converge or faults persistently, the default chain takes over, so a
/// bad plan costs time but never an answer.
pub fn resilient_select_planned<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    rcfg: &ResilienceConfig,
    planned: crate::planner::PlannedBackend,
) -> Result<ResilientResult<T>, SelectError> {
    use crate::planner::PlannedBackend;
    let first = match planned {
        // A top-k plan reaching the rank path means "threshold via the
        // sample recursion" — same kernels, same chain head.
        // (the approximate top-k's local and finish phases are the same
        // sample recursion, so it shares the chain head too).
        PlannedBackend::Sample | PlannedBackend::TopK | PlannedBackend::ApproxTopK => {
            Backend::SampleSelect
        }
        PlannedBackend::Quick => Backend::QuickSelect,
        PlannedBackend::Radix => Backend::RadixSelect,
    };
    let mut chain = [
        first,
        Backend::SampleSelect,
        Backend::QuickSelect,
        Backend::CpuSort,
    ];
    let mut len = 1;
    for b in DEFAULT_CHAIN {
        if b != first {
            chain[len] = b;
            len += 1;
        }
    }
    resilient_select_with_chain(device, data, rank, cfg, rcfg, &chain[..len])
}

fn resilient_select_with_chain<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    rcfg: &ResilienceConfig,
    chain: &[Backend],
) -> Result<ResilientResult<T>, SelectError> {
    debug_assert_eq!(chain.last(), Some(&Backend::CpuSort));
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    validate_input(data, rank, cfg)?;

    let n = data.len();
    let records_before = device.records().len();
    let outer_depth = obs::span_depth();
    obs::span_enter(SpanKind::Query, "resilient", 0, device.now().as_ns());
    let mut events = ResilienceEvents::default();
    // Don't let a fault latched by earlier, unrelated work on this
    // device masquerade as ours.
    device.take_fault();

    let mut base_cfg = cfg.clone();
    if rcfg.max_levels.is_some() {
        base_cfg.max_levels = rcfg.max_levels;
    }
    if rcfg.work_budget_factor.is_some() {
        base_cfg.work_budget_factor = rcfg.work_budget_factor;
    }

    let deadline = rcfg.time_budget.map(|b| device.now() + b);
    let over_deadline = |device: &Device| deadline.is_some_and(|dl| device.now() >= dl);

    for backend in chain.iter().copied() {
        let mut attempt = 0u32;
        loop {
            if over_deadline(device) {
                obs::span_close_to(outer_depth, device.now().as_ns());
                return degrade_to_approx(
                    device,
                    data,
                    rank,
                    &base_cfg,
                    records_before,
                    events,
                    "time budget exceeded before an exact attempt could start",
                );
            }

            let attempt_cfg = base_cfg.clone().with_seed(if attempt == 0 {
                base_cfg.seed
            } else {
                retry_seed(base_cfg.seed, backend, attempt)
            });

            let attempt_depth = obs::span_depth();
            obs::span_enter(
                SpanKind::Attempt,
                backend.name(),
                attempt as u64,
                device.now().as_ns(),
            );
            let result: Result<SelectResult<T>, SelectError> = match backend {
                Backend::SampleSelect => sample_select_on_device(device, data, rank, &attempt_cfg),
                Backend::QuickSelect => quick_select_on_device(device, data, rank, &attempt_cfg),
                Backend::RadixSelect => {
                    crate::radix::radix_select_on_device(device, data, rank, &attempt_cfg)
                }
                Backend::CpuSort => {
                    let value = reference_select(data, rank)
                        .expect("validated input always has a rank-th element");
                    let report = SelectReport::from_records(
                        backend.report_label(),
                        n,
                        &device.records()[records_before..],
                        0,
                        false,
                    );
                    Ok(SelectResult { value, report })
                }
            };
            // Drain the latch unconditionally: a fault invalidates even a
            // seemingly successful attempt (its kernels ran incomplete).
            let fault = device.take_fault();
            if let Some(f) = &fault {
                events.fault(f.to_string());
            }
            // Close the attempt span, unwinding any spans a failed
            // inner driver left open.
            obs::span_close_to(attempt_depth, device.now().as_ns());

            match (result, fault) {
                (Ok(inner), None) => {
                    // Before declaring the answer exact, a paranoid
                    // policy demands an independent rank certificate
                    // (one counting pass over the untouched input) —
                    // the only check that catches a *self-consistent*
                    // corruption of the intermediate buffers. The CPU
                    // sort reads the input directly and needs none.
                    if base_cfg.verify.certify() && backend != Backend::CpuSort {
                        match certify_rank(
                            device,
                            data,
                            inner.value,
                            rank,
                            &base_cfg,
                            gpu_sim::LaunchOrigin::Host,
                        ) {
                            Ok(()) => events
                                .certify(format!("rank {rank} certified on {}", backend.name())),
                            Err(SelectError::Corruption { invariant, detail }) => {
                                events.corruption(format!("{invariant}: {detail}"));
                                if attempt < rcfg.retry.max_retries {
                                    backoff_and_count(
                                        device,
                                        &rcfg.retry,
                                        attempt,
                                        &mut events,
                                        backend,
                                    );
                                    attempt += 1;
                                    continue;
                                }
                                events.fallback(format!(
                                    "{}: retries exhausted under persistent faults",
                                    backend.name()
                                ));
                                break;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    obs::absorb_device(device);
                    obs::pool_sample(device);
                    obs::span_close_to(outer_depth, device.now().as_ns());
                    let report = SelectReport::from_records(
                        backend.report_label(),
                        n,
                        &device.records()[records_before..],
                        inner.report.levels,
                        inner.report.terminated_early,
                    )
                    .with_resilience(events);
                    return Ok(ResilientResult {
                        outcome: Outcome::Exact(inner.value),
                        backend,
                        report,
                    });
                }
                (Err(SelectError::RecursionLimit), _) => {
                    events.fallback(format!(
                        "{}: recursion failed to converge (degenerate splitters?)",
                        backend.name()
                    ));
                    break; // next backend
                }
                (Ok(_), Some(_)) | (Err(_), Some(_)) => {
                    // Transient device fault: retry this backend, then
                    // give up on it.
                    if attempt < rcfg.retry.max_retries {
                        backoff_and_count(device, &rcfg.retry, attempt, &mut events, backend);
                        attempt += 1;
                    } else {
                        events.fallback(format!(
                            "{}: retries exhausted under persistent faults",
                            backend.name()
                        ));
                        break;
                    }
                }
                (Err(e), None) if e.is_transient() => {
                    if let SelectError::Corruption { invariant, detail } = &e {
                        events.corruption(format!("{invariant}: {detail}"));
                    }
                    if attempt < rcfg.retry.max_retries {
                        backoff_and_count(device, &rcfg.retry, attempt, &mut events, backend);
                        attempt += 1;
                    } else {
                        events.fallback(format!(
                            "{}: retries exhausted under persistent faults",
                            backend.name()
                        ));
                        break;
                    }
                }
                (Err(e), None) => return Err(e), // permanent: bad input/config
            }
        }
    }
    unreachable!("the CPU sort backend cannot fail on validated input")
}

/// Time budget exhausted: return the single-pass approximate result,
/// tagged with its accuracy. If even that pass faults, fall through to
/// the (budget-ignoring) CPU sort — a late exact answer still beats no
/// answer.
fn degrade_to_approx<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    records_before: usize,
    mut events: ResilienceEvents,
    reason: &str,
) -> Result<ResilientResult<T>, SelectError> {
    events.degrade(reason);
    let n = data.len();
    let approx = approx_select_on_device(device, data, rank, cfg);
    let fault = device.take_fault();
    if let Some(f) = &fault {
        events.fault(f.to_string());
    }
    obs::absorb_device(device);
    obs::pool_sample(device);
    match (approx, fault) {
        (Ok(a), None) => {
            let report = SelectReport::from_records(
                "resilient-approx",
                n,
                &device.records()[records_before..],
                a.report.levels,
                a.report.terminated_early,
            )
            .with_resilience(events);
            Ok(ResilientResult {
                outcome: Outcome::Approximate {
                    value: a.value,
                    achieved_rank: a.achieved_rank,
                    rank_error: a.rank_error,
                },
                backend: Backend::SampleSelect,
                report,
            })
        }
        _ => {
            events.fallback("approximate pass faulted; CPU sort as last resort");
            let value =
                reference_select(data, rank).expect("validated input always has a rank-th element");
            let report = SelectReport::from_records(
                Backend::CpuSort.report_label(),
                n,
                &device.records()[records_before..],
                0,
                false,
            )
            .with_resilience(events);
            Ok(ResilientResult {
                outcome: Outcome::Exact(value),
                backend: Backend::CpuSort,
                report,
            })
        }
    }
}

/// [`resilient_select_on_device`] on a default simulated device (Tesla
/// V100 on the process-global thread pool).
pub fn resilient_select<T: SelectElement>(
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    rcfg: &ResilienceConfig,
) -> Result<ResilientResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    resilient_select_on_device(&mut device, data, rank, cfg, rcfg)
}

/// Resilient out-of-core selection: [`streaming_select`] already retries
/// individual chunk loads; this wrapper additionally retries whole runs
/// on device faults, falls back to a host-side sort of the materialized
/// chunks, and degrades to the approximate variant under a time budget.
pub fn resilient_streaming_select<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    rank: usize,
    cfg: &SampleSelectConfig,
    rcfg: &ResilienceConfig,
) -> Result<ResilientResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    let n = source.total_len();
    if n == 0 {
        return Err(SelectError::EmptyInput);
    }
    if rank >= n {
        return Err(SelectError::RankOutOfRange { rank, len: n });
    }

    let records_before = device.records().len();
    let outer_depth = obs::span_depth();
    obs::span_enter(
        SpanKind::Query,
        "resilient-streaming",
        0,
        device.now().as_ns(),
    );
    let mut events = ResilienceEvents::default();
    device.take_fault();

    let mut base_cfg = cfg.clone();
    if rcfg.max_levels.is_some() {
        base_cfg.max_levels = rcfg.max_levels;
    }
    if rcfg.work_budget_factor.is_some() {
        base_cfg.work_budget_factor = rcfg.work_budget_factor;
    }

    let deadline = rcfg.time_budget.map(|b| device.now() + b);
    let over_deadline = |device: &Device| deadline.is_some_and(|dl| device.now() >= dl);

    let mut attempt = 0u32;
    let fallback_reason: String;
    loop {
        if over_deadline(device) {
            obs::span_close_to(outer_depth, device.now().as_ns());
            let data = materialize(source)?;
            return degrade_to_approx(
                device,
                &data,
                rank,
                &base_cfg,
                records_before,
                events,
                "time budget exceeded before a streaming attempt could start",
            );
        }
        let attempt_cfg = base_cfg.clone().with_seed(if attempt == 0 {
            base_cfg.seed
        } else {
            retry_seed(base_cfg.seed, Backend::SampleSelect, attempt)
        });

        let attempt_depth = obs::span_depth();
        obs::span_enter(
            SpanKind::Attempt,
            "streaming",
            attempt as u64,
            device.now().as_ns(),
        );
        let result = streaming_select(device, source, rank, &attempt_cfg);
        let fault = device.take_fault();
        if let Some(f) = &fault {
            events.fault(f.to_string());
        }
        obs::span_close_to(attempt_depth, device.now().as_ns());

        match (result, fault) {
            (Ok(res), None) => {
                if base_cfg.verify.certify() {
                    // Streaming certification re-reads the source (the
                    // input is out-of-core, so the certificate is the
                    // one pass that touches all of it again).
                    let data = materialize(source)?;
                    match certify_rank(
                        device,
                        &data,
                        res.value,
                        rank,
                        &base_cfg,
                        gpu_sim::LaunchOrigin::Host,
                    ) {
                        Ok(()) => events.certify(format!("rank {rank} certified on streaming")),
                        Err(SelectError::Corruption { invariant, detail }) => {
                            events.corruption(format!("{invariant}: {detail}"));
                            if attempt < rcfg.retry.max_retries {
                                backoff_and_count(
                                    device,
                                    &rcfg.retry,
                                    attempt,
                                    &mut events,
                                    Backend::SampleSelect,
                                );
                                attempt += 1;
                                continue;
                            }
                            fallback_reason =
                                "streaming retries exhausted under persistent faults".to_string();
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
                // Keep the chunk-level retries the streaming driver
                // already recorded.
                events.merge(&res.report.resilience);
                obs::absorb_device(device);
                obs::pool_sample(device);
                obs::span_close_to(outer_depth, device.now().as_ns());
                let report = SelectReport::from_records(
                    "resilient-streaming",
                    n,
                    &device.records()[records_before..],
                    res.report.levels,
                    res.report.terminated_early,
                )
                .with_resilience(events);
                return Ok(ResilientResult {
                    outcome: Outcome::Exact(res.value),
                    backend: Backend::SampleSelect,
                    report,
                });
            }
            (Err(SelectError::RecursionLimit), _) => {
                fallback_reason =
                    "streaming recursion failed to converge; host-side sort".to_string();
                break;
            }
            (Ok(_), Some(_)) | (Err(_), Some(_)) => {
                if attempt < rcfg.retry.max_retries {
                    backoff_and_count(
                        device,
                        &rcfg.retry,
                        attempt,
                        &mut events,
                        Backend::SampleSelect,
                    );
                    attempt += 1;
                } else {
                    fallback_reason =
                        "streaming retries exhausted under persistent faults".to_string();
                    break;
                }
            }
            (Err(e), None) if e.is_transient() => {
                if let SelectError::Corruption { invariant, detail } = &e {
                    events.corruption(format!("{invariant}: {detail}"));
                }
                if attempt < rcfg.retry.max_retries {
                    backoff_and_count(
                        device,
                        &rcfg.retry,
                        attempt,
                        &mut events,
                        Backend::SampleSelect,
                    );
                    attempt += 1;
                } else {
                    fallback_reason =
                        "streaming retries exhausted under persistent faults".to_string();
                    break;
                }
            }
            (Err(e), None) => return Err(e),
        }
    }

    events.fallback(fallback_reason);
    let data = materialize(source)?;
    let value =
        reference_select(&data, rank).expect("validated input always has a rank-th element");
    obs::absorb_device(device);
    obs::pool_sample(device);
    obs::span_close_to(outer_depth, device.now().as_ns());
    let report = SelectReport::from_records(
        Backend::CpuSort.report_label(),
        n,
        &device.records()[records_before..],
        0,
        false,
    )
    .with_resilience(events);
    Ok(ResilientResult {
        outcome: Outcome::Exact(value),
        backend: Backend::CpuSort,
        report,
    })
}

/// Load every chunk into host memory for the CPU fallback, retrying
/// transient failures a bounded number of times per chunk.
fn materialize<T: SelectElement, S: ChunkSource<T>>(source: &S) -> Result<Vec<T>, SelectError> {
    let mut data = Vec::with_capacity(source.total_len());
    for c in 0..source.num_chunks() {
        let mut tries = 0u32;
        let chunk = loop {
            match source.load_chunk(c) {
                Ok(chunk) => break chunk,
                Err(err) if err.transient && tries < crate::streaming::CHUNK_MAX_RETRIES => {
                    tries += 1;
                }
                Err(err) => return Err(SelectError::ChunkLoad(err)),
            }
        };
        data.extend(chunk);
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use gpu_sim::FaultPlan;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn run_with_plan(
        data: &[f32],
        rank: usize,
        plan: Option<FaultPlan>,
        rcfg: &ResilienceConfig,
    ) -> ResilientResult<f32> {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        if let Some(plan) = plan {
            device.set_fault_plan(plan);
        }
        resilient_select_on_device(
            &mut device,
            data,
            rank,
            &SampleSelectConfig::default(),
            rcfg,
        )
        .unwrap()
    }

    #[test]
    fn fault_free_run_is_clean_and_exact() {
        let data = uniform(100_000, 1);
        let res = run_with_plan(&data, 50_000, None, &ResilienceConfig::default());
        assert_eq!(
            res.outcome,
            Outcome::Exact(reference_select(&data, 50_000).unwrap())
        );
        assert_eq!(res.backend, Backend::SampleSelect);
        assert!(res.report.resilience.is_clean());
        assert_eq!(res.report.algorithm, "resilient-sampleselect");
    }

    #[test]
    fn injected_launch_failure_is_retried_to_exact() {
        let data = uniform(100_000, 2);
        let plan = FaultPlan::new(42).fail_launches_at(&[1]);
        let res = run_with_plan(&data, 50_000, Some(plan), &ResilienceConfig::default());
        assert_eq!(
            res.outcome,
            Outcome::Exact(reference_select(&data, 50_000).unwrap())
        );
        assert_eq!(res.report.resilience.faults_observed, 1);
        assert_eq!(res.report.resilience.retries, 1);
        assert_eq!(res.report.resilience.fallbacks, 0);
    }

    #[test]
    fn persistent_faults_fall_back_to_cpu() {
        let data = uniform(50_000, 3);
        // Every launch fails: no device backend can ever finish.
        let plan = FaultPlan::new(7).launch_failures(1.0);
        let rcfg = ResilienceConfig::default().with_max_retries(1);
        let res = run_with_plan(&data, 25_000, Some(plan), &rcfg);
        assert_eq!(
            res.outcome,
            Outcome::Exact(reference_select(&data, 25_000).unwrap())
        );
        assert_eq!(res.backend, Backend::CpuSort);
        // two device backends × (1 retry + 1 fallback)
        assert_eq!(res.report.resilience.retries, 2);
        assert_eq!(res.report.resilience.fallbacks, 2);
    }

    #[test]
    fn zero_time_budget_degrades_to_approximate() {
        let data = uniform(100_000, 4);
        let rcfg = ResilienceConfig::default().with_time_budget(SimTime::ZERO);
        let res = run_with_plan(&data, 50_000, None, &rcfg);
        match res.outcome {
            Outcome::Approximate {
                value,
                achieved_rank,
                rank_error,
            } => {
                // the tag must be honest: achieved_rank is the value's
                // true rank, rank_error its distance to the target
                let true_rank = data.iter().filter(|&&x| x < value).count() as u64;
                assert_eq!(achieved_rank, true_rank);
                assert_eq!(rank_error, true_rank.abs_diff(50_000));
            }
            Outcome::Exact(_) => panic!("expected approximate degradation"),
        }
        assert_eq!(res.report.resilience.degradations, 1);
        assert_eq!(res.report.algorithm, "resilient-approx");
        assert!(!res.outcome.is_exact());
    }

    #[test]
    fn same_fault_seed_gives_identical_event_log() {
        let data = uniform(80_000, 5);
        let mk = || {
            let plan = FaultPlan::new(99)
                .launch_failures(0.3)
                .max_launch_failures(4);
            run_with_plan(&data, 40_000, Some(plan), &ResilienceConfig::default())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.report.resilience, b.report.resilience);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.backend, b.backend);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let err = resilient_select_on_device::<f32>(
            &mut device,
            &[],
            0,
            &SampleSelectConfig::default(),
            &ResilienceConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, SelectError::EmptyInput);

        let data = uniform(1000, 6);
        let err = resilient_select_on_device(
            &mut device,
            &data,
            5000,
            &SampleSelectConfig::default(),
            &ResilienceConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SelectError::RankOutOfRange { .. }));
    }

    #[test]
    fn tight_guards_trigger_fallback_chain() {
        let data = uniform(100_000, 7);
        // A zero-level cap makes both device recursions give up at once.
        let rcfg = ResilienceConfig::default().with_max_levels(0);
        let res = run_with_plan(&data, 50_000, None, &rcfg);
        assert_eq!(
            res.outcome,
            Outcome::Exact(reference_select(&data, 50_000).unwrap())
        );
        assert_eq!(res.backend, Backend::CpuSort);
        assert_eq!(res.report.resilience.fallbacks, 2);
        assert_eq!(res.report.resilience.retries, 0);
    }

    #[test]
    fn resilient_streaming_retries_device_faults() {
        use crate::streaming::SliceChunks;
        let data = uniform(1 << 17, 8);
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        device.set_fault_plan(FaultPlan::new(11).fail_launches_at(&[2]));
        let source = SliceChunks::new(&data, 1 << 15);
        let res = resilient_streaming_select(
            &mut device,
            &source,
            1 << 16,
            &SampleSelectConfig::default(),
            &ResilienceConfig::default(),
        )
        .unwrap();
        assert_eq!(
            res.outcome,
            Outcome::Exact(reference_select(&data, 1 << 16).unwrap())
        );
        assert_eq!(res.report.resilience.faults_observed, 1);
        assert!(res.report.resilience.retries >= 1);
        assert_eq!(res.report.algorithm, "resilient-streaming");
    }

    #[test]
    fn outcome_value_accessor() {
        assert_eq!(Outcome::Exact(3.5f32).value(), 3.5);
        let approx = Outcome::Approximate {
            value: 1.25f32,
            achieved_rank: 10,
            rank_error: 2,
        };
        assert_eq!(approx.value(), 1.25);
        assert!(!approx.is_exact());
    }

    #[test]
    fn backoff_jitter_desynchronizes_equal_policies() {
        // Two shards sharing one RetryPolicy must not retry in lockstep:
        // with distinct salts, at least one attempt in the chain gets a
        // different delay (the thundering-herd regression).
        let policy = RetryPolicy::default();
        let chain_a: Vec<f64> = (0..4)
            .map(|a| jittered_backoff(&policy, 0, a).as_ns())
            .collect();
        let chain_b: Vec<f64> = (0..4)
            .map(|a| jittered_backoff(&policy, 1, a).as_ns())
            .collect();
        assert_ne!(chain_a, chain_b, "same-policy shards retried in lockstep");
    }

    #[test]
    fn backoff_jitter_is_reproducible_and_bounded() {
        let policy = RetryPolicy::default();
        for salt in 0..8u64 {
            for attempt in 0..6u32 {
                let a = jittered_backoff(&policy, salt, attempt);
                let b = jittered_backoff(&policy, salt, attempt);
                assert_eq!(
                    a, b,
                    "jitter must be a pure function of (seed, salt, attempt)"
                );
                assert!(a <= policy.max_backoff);
                assert!(a >= policy.backoff * 0.5);
            }
        }
        // A different policy seed moves the whole schedule.
        let reseeded = RetryPolicy::default().with_jitter_seed(42);
        assert_ne!(
            jittered_backoff(&policy, 0, 0),
            jittered_backoff(&reseeded, 0, 0)
        );
    }
}
