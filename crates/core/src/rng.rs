//! A tiny deterministic RNG for splitter sampling.
//!
//! The core crate does not depend on `rand`: the sample kernel only
//! needs uniform indices, and keeping the generator in-tree makes the
//! simulated runs bit-reproducible across platforms. SplitMix64 is the
//! standard 64-bit mixer (Steele et al.), statistically strong enough
//! for sampling positions.

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..bound` (Lemire's multiply-shift; bias is
    /// negligible for the bounds used here and irrelevant for sampling).
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Current internal state, for checkpointing a run mid-stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Resume a generator from a checkpointed [`SplitMix64::state`]; the
    /// restored generator continues the exact same sequence.
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_sequence() {
        let mut a = SplitMix64::new(42);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SplitMix64::new(99);
        let mut hist = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            hist[rng.next_below(10)] += 1;
        }
        for &h in &hist {
            // each bin expected 10_000; allow +-5%
            assert!((9_500..=10_500).contains(&h), "bin count {h}");
        }
    }
}
