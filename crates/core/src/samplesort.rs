//! A complete sorting algorithm built from the SampleSelect kernels —
//! the paper's second future-work item (§VI: "the extension to a
//! complete sorting algorithm").
//!
//! This is precisely (super-scalar) sample sort: instead of descending
//! into the single bucket containing a target rank, *every* bucket is
//! extracted (the fused filter with range `0..b`, which orders the data
//! by bucket) and sorted recursively. Equality buckets need no further
//! work — every element in them is identical — so duplicate-heavy inputs
//! get faster, not slower.

use crate::bitonic::bitonic_sort;
use crate::count::count_kernel;
use crate::element::SelectElement;
use crate::filter::filter_kernel;
use crate::instrument::SelectReport;
use crate::params::SampleSelectConfig;
use crate::recursion::base_case_select;
use crate::reduce::reduce_kernel;
use crate::rng::SplitMix64;
use crate::SelectError;
use gpu_sim::arch::v100;
use gpu_sim::{Device, LaunchOrigin};

/// Result of a device sort.
#[derive(Debug, Clone)]
pub struct SortResult<T> {
    /// The input, ascending.
    pub sorted: Vec<T>,
    /// Measurement report.
    pub report: SelectReport,
}

const MAX_DEPTH: u32 = 48;

/// Sort `data` ascending on a simulated device using recursive sample
/// partitioning.
pub fn sample_sort_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    cfg: &SampleSelectConfig,
) -> Result<SortResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    let n = data.len();
    let records_before = device.records().len();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut max_depth = 0u32;
    let sorted = sort_rec(device, data, cfg, &mut rng, 0, &mut max_depth)?;
    let report = SelectReport::from_records(
        "samplesort",
        n,
        &device.records()[records_before..],
        max_depth,
        false,
    );
    Ok(SortResult { sorted, report })
}

fn sort_rec<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    cfg: &SampleSelectConfig,
    rng: &mut SplitMix64,
    level: u32,
    max_depth: &mut u32,
) -> Result<Vec<T>, SelectError> {
    *max_depth = (*max_depth).max(level);
    if level >= MAX_DEPTH {
        return Err(SelectError::RecursionLimit);
    }
    let origin = if level == 0 {
        LaunchOrigin::Host
    } else {
        LaunchOrigin::Device
    };
    // Sorting switches to the bitonic base case earlier than selection:
    // per-segment kernel-launch overhead dominates tiny partitions, so a
    // segment is sorted block-locally as soon as it fits a (generous)
    // shared-memory tile — as real sample-sort implementations do.
    let sort_base = cfg.base_case_size.max(cfg.sample_size() * 16);
    if data.len() <= sort_base {
        let mut buf = data.to_vec();
        if buf.len() > 1 {
            // charge the kernel; sort functionally
            let _ = base_case_select(device, data, 0, cfg, origin);
            bitonic_sort(&mut buf);
        }
        return Ok(buf);
    }

    let tree = crate::splitter::sample_kernel(device, data, cfg, rng, origin)?;
    let count = count_kernel(device, data, &tree, cfg, true, origin);
    let red = reduce_kernel(device, &count, LaunchOrigin::Device);
    let b = tree.num_buckets() as u32;

    // One fused filter pass extracts everything, ordered by bucket.
    let partitioned = filter_kernel(device, data, &count, &red, 0..b, cfg, LaunchOrigin::Device);
    debug_assert_eq!(partitioned.len(), data.len());

    let mut out = Vec::with_capacity(data.len());
    for bucket in 0..b as usize {
        let lo = red.bucket_offsets[bucket] as usize;
        let hi = red.bucket_offsets[bucket + 1] as usize;
        if lo == hi {
            continue;
        }
        let segment = &partitioned[lo..hi];
        if tree.is_equality_bucket(bucket) {
            // All equal: already sorted.
            out.extend_from_slice(segment);
        } else {
            // Degenerate splits (sample fails to separate anything) are
            // safe: the next level resamples, and equality buckets bound
            // the depth for duplicate-only content.
            let sub = sort_rec(device, segment, cfg, rng, level + 1, max_depth)?;
            out.extend(sub);
        }
    }
    Ok(out)
}

/// Sort on a default simulated device (Tesla V100).
pub fn sample_sort<T: SelectElement>(
    data: &[T],
    cfg: &SampleSelectConfig,
) -> Result<SortResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    sample_sort_on_device(&mut device, data, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::sort_elements;
    use hpc_par::ThreadPool;

    fn check<T: SelectElement + PartialEq>(data: &[T]) -> SortResult<T> {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let res = sample_sort_on_device(&mut device, data, &SampleSelectConfig::default()).unwrap();
        let mut expected = data.to_vec();
        sort_elements(&mut expected);
        assert_eq!(res.sorted.len(), expected.len());
        assert!(
            res.sorted
                .iter()
                .zip(expected.iter())
                .all(|(a, b)| a.total_cmp(*b) == std::cmp::Ordering::Equal),
            "sorted output mismatch"
        );
        res
    }

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    #[test]
    fn sorts_random_data() {
        check(&uniform(200_000, 1));
    }

    #[test]
    fn sorts_small_inputs_via_base_case() {
        check(&uniform(100, 2));
        check(&[3.0f32]);
        check::<f32>(&[]);
    }

    #[test]
    fn sorts_duplicate_heavy_input_fast() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<f32> = (0..150_000)
            .map(|_| (rng.next_below(8) as f32) * 0.5)
            .collect();
        let res = check(&data);
        // equality buckets terminate duplicates at level 1
        assert!(res.report.levels <= 1, "levels = {}", res.report.levels);
    }

    #[test]
    fn sorts_presorted_and_reversed() {
        let asc: Vec<u32> = (0..50_000).collect();
        check(&asc);
        let desc: Vec<u32> = (0..50_000).rev().collect();
        check(&desc);
    }

    #[test]
    fn sorts_integers_and_doubles() {
        let mut rng = SplitMix64::new(4);
        let ints: Vec<i64> = (0..60_000).map(|_| rng.next_u64() as i64).collect();
        check(&ints);
        let doubles: Vec<f64> = (0..60_000).map(|_| rng.next_f64() - 0.5).collect();
        check(&doubles);
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        let res = check(&uniform(1 << 20, 5));
        // b = 256, sort base = 16384: 2^20 -> one partition level + base
        assert!(res.report.levels <= 1, "levels = {}", res.report.levels);
        // launch count stays in the hundreds, not tens of thousands
        assert!(
            res.report.total_launches() < 600,
            "launches = {}",
            res.report.total_launches()
        );
    }

    #[test]
    fn all_equal_input_is_one_level() {
        let data = vec![5.5f32; 100_000];
        let res = check(&data);
        assert!(res.report.levels <= 1);
    }

    #[test]
    fn report_covers_the_partition_kernels() {
        let res = check(&uniform(1 << 18, 6));
        for name in ["sample", "count", "reduce", "filter", "base_sort"] {
            assert!(res.report.kernel_launches(name) > 0, "missing {name}");
        }
        assert!(res.report.total_time.as_ns() > 0.0);
    }
}
