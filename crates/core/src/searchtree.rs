//! The implicit binary search tree over the bucket splitters
//! (Fig. 3 / Fig. 4 of the paper) and the equality-bucket treatment of
//! repeated elements (§IV-C).
//!
//! Splitters are stored in a complete binary tree laid out implicitly in
//! an array with binary-heap indexing (node `i` has children `2i+1`,
//! `2i+2`). A lookup descends `tree_height = log2(b)` levels with the
//! branch-free update `i = 2i + (x < tree[i] ? 1 : 2)` and lands on a
//! virtual leaf whose offset is the bucket index — no sorted-array
//! binary-search index arithmetic required (the technique from
//! super-scalar sample sort, Sanders & Winkel 2004).
//!
//! ## Equality buckets
//!
//! When the sample contains a value `v` so frequently that several
//! chosen splitters collapse to `v` (`s_a = … = s_e = v < s_{e+1}`), the
//! last duplicate is replaced by `ṽ = next_up(v)`. Elements equal to
//! `v` then fall into the bucket `[v, ṽ) = {v}` — an *equality bucket*.
//! If the target rank lands in an equality bucket the recursion can
//! terminate immediately and return `v` (§IV-C: "the algorithm can
//! terminate early by just returning the corresponding lower bound
//! splitter").

use crate::element::{fill_lt_keys32, fill_lt_keys64, SelectElement};
use hpc_par::simd::{self, SimdLevel};

/// A built splitter search tree for one recursion level.
#[derive(Debug, Clone)]
pub struct SearchTree<T> {
    /// Internal nodes (`b - 1` splitters) in implicit heap layout.
    nodes: Vec<T>,
    /// The sorted (and possibly ε-adjusted) splitters, `S[0..b-1]`;
    /// bucket `i > 0` has lower bound `S[i-1]`.
    splitters: Vec<T>,
    /// Bucket count `b` (power of two).
    num_buckets: usize,
    /// `log2(b)` traversal steps.
    height: u32,
    /// `equality[i]`: bucket `i` contains exactly one distinct value.
    equality: Vec<bool>,
    /// `nodes` mapped through `to_lt_key`, narrowed to 32 bits — the
    /// gather array for the lane-parallel descent of 4-byte element
    /// types. Empty for 8-byte types or when SIMD is off.
    lt_key_nodes32: Vec<u32>,
    /// As `lt_key_nodes32` for 8-byte element types.
    lt_key_nodes64: Vec<u64>,
}

impl<T: SelectElement> SearchTree<T> {
    /// Build a tree from `b - 1` sorted splitter values (duplicates
    /// allowed; they trigger the equality-bucket transformation).
    ///
    /// # Panics
    /// Panics if `sorted_splitters.len() + 1` is not a power of two >= 2
    /// or the input is not sorted.
    pub fn build(sorted_splitters: &[T]) -> Self {
        let mut slot = None;
        Self::rebuild_into(&mut slot, sorted_splitters);
        slot.expect("rebuild_into fills the slot")
    }

    /// Build a tree into `slot`, reusing the previous tree's node,
    /// splitter, and equality arrays when the bucket count is unchanged
    /// (the common case: every recursion level of one query uses the
    /// same `b`). With a warm slot this performs no heap allocation.
    ///
    /// # Panics
    /// Same contract as [`SearchTree::build`].
    pub fn rebuild_into(slot: &mut Option<Self>, sorted_splitters: &[T]) {
        let b = sorted_splitters.len() + 1;
        assert!(
            b.is_power_of_two() && b >= 2,
            "need 2^k - 1 splitters, got {}",
            sorted_splitters.len()
        );
        debug_assert!(
            sorted_splitters.windows(2).all(|w| !w[1].lt(w[0])),
            "splitters must be sorted"
        );
        match slot {
            Some(tree) if tree.num_buckets == b => tree.assemble(sorted_splitters),
            _ => {
                let mut tree = Self {
                    nodes: Vec::new(),
                    splitters: Vec::new(),
                    num_buckets: b,
                    height: b.trailing_zeros(),
                    equality: Vec::new(),
                    lt_key_nodes32: Vec::new(),
                    lt_key_nodes64: Vec::new(),
                };
                tree.assemble(sorted_splitters);
                *slot = Some(tree);
            }
        }
    }

    /// (Re)populate all derived arrays from a sorted splitter slice of
    /// the matching bucket count, reusing existing capacity.
    fn assemble(&mut self, sorted_splitters: &[T]) {
        let m = sorted_splitters.len();
        debug_assert_eq!(m + 1, self.num_buckets);
        self.splitters.clear();
        self.splitters.extend_from_slice(sorted_splitters);
        self.equality.clear();
        self.equality.resize(self.num_buckets, false);
        let splitters = &mut self.splitters;
        let equality = &mut self.equality;

        // Find runs of equal splitters and apply the ε transformation.
        let mut run_start = 0;
        while run_start < m {
            let v = splitters[run_start];
            let mut run_end = run_start;
            while run_end + 1 < m && !v.lt(splitters[run_end + 1]) {
                run_end += 1;
            }
            if run_end > run_start {
                let bumped = v.next_up();
                if bumped.lt(v) || v.lt(bumped) {
                    // Normal case: bucket `run_end` becomes [v, v+ε) = {v}.
                    splitters[run_end] = bumped;
                    equality[run_end] = true;
                } else {
                    // v saturates (v == type max): every element equal to
                    // v lands right of all v-splitters, in the bucket
                    // whose lower bound is the last one — and nothing can
                    // be larger, so that bucket holds exactly {v}.
                    equality[run_end + 1] = true;
                }
            }
            run_start = run_end + 1;
        }

        // Eytzinger layout: in-order traversal of the implicit complete
        // tree visits the sorted splitters in order.
        self.nodes.clear();
        self.nodes.resize(m, T::min_value());
        let mut next = 0usize;
        fill_in_order(&mut self.nodes, &self.splitters, 0, &mut next);
        debug_assert_eq!(next, m);

        // Key-space mirror of the node array for the SIMD descent.
        // Built unconditionally (it is m entries, negligible next to
        // one kernel pass) so runtime dispatch-level switches — the
        // interleaved scalar-vs-SIMD benches — never see a tree built
        // under a different level. The clear+resize pattern reuses
        // capacity, so a warm slot stays allocation-free across
        // recursion levels.
        let level = simd::simd_level();
        if T::BYTES == 4 {
            self.lt_key_nodes32.clear();
            self.lt_key_nodes32.resize(m, 0);
            fill_lt_keys32(&self.nodes, &mut self.lt_key_nodes32, level);
        } else {
            self.lt_key_nodes64.clear();
            self.lt_key_nodes64.resize(m, 0);
            fill_lt_keys64(&self.nodes, &mut self.lt_key_nodes64, level);
        }
    }

    /// Fig. 4's traversal loop: the bucket index of `x`.
    #[inline]
    pub fn lookup(&self, x: T) -> u32 {
        let mut i = 0usize;
        for _ in 0..self.height {
            // i = 2 * i + (element < tree[i] ? 1 : 2)
            i = 2 * i + if x.lt(self.nodes[i]) { 1 } else { 2 };
        }
        (i - (self.num_buckets - 1)) as u32
    }

    /// Lane-parallel [`SearchTree::lookup`]: `out[i] = lookup(data[i])`,
    /// bit-identical to the scalar loop at every dispatch level.
    ///
    /// The batch descends in key space — elements and nodes mapped
    /// through the exactly-`lt`-equivalent `to_lt_key` transform — so
    /// 8 (u32 keys) or 4 (u64 keys) lanes walk the tree per vector
    /// step. Small runs stage keys in stack buffers: no allocation.
    pub fn lookup_batch(&self, data: &[T], out: &mut [u32]) {
        debug_assert!(out.len() >= data.len());
        let level = simd::simd_level();
        if level == SimdLevel::Off {
            for (o, &x) in out.iter_mut().zip(data) {
                *o = self.lookup(x);
            }
            return;
        }
        if T::BYTES == 4 {
            let mut keys = [0u32; 32];
            let mut i = 0;
            while i < data.len() {
                let len = (data.len() - i).min(32);
                fill_lt_keys32(&data[i..i + len], &mut keys[..len], level);
                simd::descend_u32(
                    &keys[..len],
                    &self.lt_key_nodes32,
                    self.height,
                    &mut out[i..i + len],
                    level,
                );
                i += len;
            }
        } else {
            let mut keys = [0u64; 32];
            let mut i = 0;
            while i < data.len() {
                let len = (data.len() - i).min(32);
                fill_lt_keys64(&data[i..i + len], &mut keys[..len], level);
                simd::descend_u64(
                    &keys[..len],
                    &self.lt_key_nodes64,
                    self.height,
                    &mut out[i..i + len],
                    level,
                );
                i += len;
            }
        }
    }

    /// Bucket count `b`.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Traversal depth `log2(b)`.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The adjusted sorted splitters `S[0..b-1]`.
    pub fn splitters(&self) -> &[T] {
        &self.splitters
    }

    /// The implicit-layout node array (for inspection/tests).
    pub fn nodes(&self) -> &[T] {
        &self.nodes
    }

    /// Lower-bound splitter of bucket `i` (`None` for the leftmost
    /// bucket, whose bound is conceptually `-∞`).
    pub fn bucket_lower(&self, bucket: usize) -> Option<T> {
        if bucket == 0 || bucket > self.splitters.len() {
            None
        } else {
            Some(self.splitters[bucket - 1])
        }
    }

    /// Whether bucket `i` is an equality bucket (all elements equal).
    pub fn is_equality_bucket(&self, bucket: usize) -> bool {
        self.equality.get(bucket).copied().unwrap_or(false)
    }

    /// The single value an equality bucket contains.
    ///
    /// # Panics
    /// Panics if `bucket` is not an equality bucket.
    pub fn equality_value(&self, bucket: usize) -> T {
        assert!(
            self.is_equality_bucket(bucket),
            "bucket {bucket} is not an equality bucket"
        );
        // An equality bucket always has a lower-bound splitter: the
        // transformation only marks buckets with index >= 1.
        self.splitters[bucket - 1]
    }

    /// Reference bucket computation by linear scan over the splitters
    /// (for tests): the number of splitters `<= x`.
    pub fn lookup_reference(&self, x: T) -> u32 {
        self.splitters.iter().filter(|s| !x.lt(**s)).count() as u32
    }
}

/// In-order fill of the implicit complete binary tree.
fn fill_in_order<T: Copy>(nodes: &mut [T], sorted: &[T], node: usize, next: &mut usize) {
    if node >= nodes.len() {
        return;
    }
    fill_in_order(nodes, sorted, 2 * node + 1, next);
    nodes[node] = sorted[*next];
    *next += 1;
    fill_in_order(nodes, sorted, 2 * node + 2, next);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn fig3_layout_eight_buckets() {
        // Fig. 3: splitters s1..s7 for 8 buckets; root must be the
        // median (s4), children s2 / s6 (1-indexed as in the figure).
        let splitters: Vec<f32> = (1..=7).map(|i| i as f32).collect();
        let tree = SearchTree::build(&splitters);
        assert_eq!(tree.nodes()[0], 4.0);
        assert_eq!(tree.nodes()[1], 2.0);
        assert_eq!(tree.nodes()[2], 6.0);
        assert_eq!(&tree.nodes()[3..], &[1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn lookup_matches_linear_reference_random() {
        let mut rng = SplitMix64::new(77);
        for b in [4usize, 8, 64, 256] {
            let mut splitters: Vec<f64> = (0..b - 1).map(|_| rng.next_f64() * 100.0).collect();
            splitters.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let tree = SearchTree::build(&splitters);
            for _ in 0..500 {
                let x = rng.next_f64() * 120.0 - 10.0;
                assert_eq!(tree.lookup(x), tree.lookup_reference(x), "x = {x}, b = {b}");
            }
            // splitter values themselves land in the bucket they bound
            for (i, &s) in tree.splitters().iter().enumerate() {
                assert_eq!(tree.lookup(s) as usize, i + 1, "splitter {i}");
            }
        }
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        // buckets: (-inf,10) [10,20) [20,30) [30,inf)
        let tree = SearchTree::build(&[10.0f32, 20.0, 30.0]);
        assert_eq!(tree.lookup(9.99), 0);
        assert_eq!(tree.lookup(10.0), 1);
        assert_eq!(tree.lookup(19.99), 1);
        assert_eq!(tree.lookup(20.0), 2);
        assert_eq!(tree.lookup(30.0), 3);
        assert_eq!(tree.lookup(1e9), 3);
        assert_eq!(tree.lookup(-1e9), 0);
    }

    #[test]
    fn duplicate_splitters_create_equality_bucket() {
        // splitters (3,5,5,5,9,12,15) -> run of 5s at indices 1..=3
        let tree = SearchTree::build(&[3.0f32, 5.0, 5.0, 5.0, 9.0, 12.0, 15.0]);
        // the run's last splitter becomes next_up(5)
        let eps5 = SelectElement::next_up(5.0f32);
        assert_eq!(tree.splitters()[3], eps5);
        assert!(tree.is_equality_bucket(3));
        assert_eq!(tree.equality_value(3), 5.0);
        // every element equal to 5 lands in bucket 3
        assert_eq!(tree.lookup(5.0), 3);
        // nearby values don't
        assert_eq!(tree.lookup(4.999), 1);
        assert_eq!(tree.lookup(eps5), 4);
        assert_eq!(tree.lookup(5.001), 4);
    }

    #[test]
    fn all_equal_splitters() {
        // d = 1 workloads produce all-identical samples.
        let tree = SearchTree::build(&[7.0f32; 255]);
        let bucket = tree.lookup(7.0) as usize;
        assert!(tree.is_equality_bucket(bucket));
        assert_eq!(tree.equality_value(bucket), 7.0);
        // smaller and larger values avoid the equality bucket
        assert_ne!(tree.lookup(6.9) as usize, bucket);
        assert_ne!(tree.lookup(7.1) as usize, bucket);
    }

    #[test]
    fn integer_equality_buckets() {
        let tree = SearchTree::build(&[2u32, 5, 5, 5, 5, 8, 11]);
        let bucket = tree.lookup(5) as usize;
        assert!(tree.is_equality_bucket(bucket));
        assert_eq!(tree.equality_value(bucket), 5);
        assert_eq!(tree.lookup(6), bucket as u32 + 1);
        assert_eq!(tree.lookup(4), 1);
    }

    #[test]
    fn saturated_max_value_equality() {
        // All splitters equal to the type maximum: next_up saturates, so
        // the *following* bucket becomes the equality bucket.
        let tree = SearchTree::build(&[u32::MAX; 7]);
        let bucket = tree.lookup(u32::MAX) as usize;
        assert!(tree.is_equality_bucket(bucket), "bucket {bucket}");
        assert_eq!(tree.equality_value(bucket), u32::MAX);
        assert!(!tree.is_equality_bucket(tree.lookup(0) as usize));
    }

    #[test]
    fn multiple_duplicate_runs() {
        let tree = SearchTree::build(&[1.0f64, 1.0, 4.0, 4.0, 4.0, 9.0, 9.0]);
        let b1 = tree.lookup(1.0) as usize;
        let b4 = tree.lookup(4.0) as usize;
        let b9 = tree.lookup(9.0) as usize;
        assert!(tree.is_equality_bucket(b1));
        assert!(tree.is_equality_bucket(b4));
        assert!(tree.is_equality_bucket(b9));
        assert_eq!(tree.equality_value(b1), 1.0);
        assert_eq!(tree.equality_value(b4), 4.0);
        assert_eq!(tree.equality_value(b9), 9.0);
        assert!(!tree.is_equality_bucket(tree.lookup(2.0) as usize));
    }

    #[test]
    fn bucket_lower_bounds() {
        let tree = SearchTree::build(&[10.0f32, 20.0, 30.0]);
        assert_eq!(tree.bucket_lower(0), None);
        assert_eq!(tree.bucket_lower(1), Some(10.0));
        assert_eq!(tree.bucket_lower(3), Some(30.0));
        assert_eq!(tree.bucket_lower(4), None);
    }

    #[test]
    #[should_panic(expected = "2^k - 1 splitters")]
    fn rejects_wrong_splitter_count() {
        SearchTree::build(&[1.0f32, 2.0]);
    }

    #[test]
    fn rebuild_into_reuses_arrays_when_bucket_count_matches() {
        let mut slot = None;
        SearchTree::rebuild_into(&mut slot, &[10.0f32, 20.0, 30.0]);
        let nodes_ptr = slot.as_ref().unwrap().nodes().as_ptr();
        SearchTree::rebuild_into(&mut slot, &[1.0f32, 2.0, 3.0]);
        let tree = slot.as_ref().unwrap();
        assert_eq!(tree.nodes().as_ptr(), nodes_ptr, "node array reused");
        assert_eq!(tree.lookup(2.5), 2);
        assert_eq!(tree.lookup(0.5), 0);
    }

    #[test]
    fn rebuild_into_matches_fresh_build() {
        let mut rng = SplitMix64::new(41);
        let mut slot = None;
        for b in [4usize, 4, 8, 8, 4] {
            let mut splitters: Vec<f64> = (0..b - 1).map(|_| rng.next_f64() * 50.0).collect();
            splitters.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // duplicate a run sometimes to exercise equality buckets
            if b == 8 {
                splitters[2] = splitters[1];
            }
            SearchTree::rebuild_into(&mut slot, &splitters);
            let rebuilt = slot.as_ref().unwrap();
            let fresh = SearchTree::build(&splitters);
            assert_eq!(rebuilt.nodes(), fresh.nodes());
            assert_eq!(rebuilt.splitters(), fresh.splitters());
            assert_eq!(rebuilt.num_buckets(), fresh.num_buckets());
            for i in 0..b {
                assert_eq!(rebuilt.is_equality_bucket(i), fresh.is_equality_bucket(i));
            }
            for _ in 0..200 {
                let x = rng.next_f64() * 60.0 - 5.0;
                assert_eq!(rebuilt.lookup(x), fresh.lookup(x));
            }
        }
    }

    #[test]
    fn lookup_batch_matches_scalar_at_every_level() {
        let mut rng = SplitMix64::new(99);
        let levels: &[SimdLevel] = &[SimdLevel::Off, SimdLevel::Scalar, SimdLevel::Avx2];
        for b in [2usize, 8, 64, 256] {
            // f32 with duplicates, ±0.0, and NaN payloads
            let mut splitters: Vec<f32> =
                (0..b - 1).map(|_| (rng.next_f64() * 8.0) as f32).collect();
            splitters.sort_by(|a, b| a.total_cmp(b));
            let tree = SearchTree::build(&splitters);
            let mut data: Vec<f32> = (0..517)
                .map(|_| (rng.next_f64() * 10.0 - 1.0) as f32)
                .collect();
            data.extend_from_slice(&[
                0.0,
                -0.0,
                f32::NAN,
                f32::from_bits(0xFFC0_0001),
                f32::MAX,
                f32::MIN,
            ]);
            let expect: Vec<u32> = data.iter().map(|&x| tree.lookup(x)).collect();
            for &level in levels {
                simd::force_level(Some(level));
                let mut out = vec![0u32; data.len()];
                tree.lookup_batch(&data, &mut out);
                assert_eq!(out, expect, "f32 b={b} level={level}");
            }
            simd::force_level(None);

            // u64 keys exercise the 4-lane descent
            let mut spl64: Vec<u64> = (0..b - 1).map(|_| rng.next_u64() % 1000).collect();
            spl64.sort_unstable();
            let tree64 = SearchTree::build(&spl64);
            let data64: Vec<u64> = (0..263).map(|_| rng.next_u64() % 1200).collect();
            let expect64: Vec<u32> = data64.iter().map(|&x| tree64.lookup(x)).collect();
            for &level in levels {
                simd::force_level(Some(level));
                let mut out = vec![0u32; data64.len()];
                tree64.lookup_batch(&data64, &mut out);
                assert_eq!(out, expect64, "u64 b={b} level={level}");
            }
            simd::force_level(None);
        }
    }

    #[test]
    fn minimal_tree_two_buckets() {
        let tree = SearchTree::build(&[5.0f32]);
        assert_eq!(tree.num_buckets(), 2);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.lookup(4.0), 0);
        assert_eq!(tree.lookup(5.0), 1);
        assert_eq!(tree.lookup(6.0), 1);
    }
}
