//! Per-device circuit breaker.
//!
//! Every server worker owns one breaker for its primary device. The
//! breaker consumes the health verdict of each query served on that
//! device — "unhealthy" meaning the device latched an injected fault or
//! the ABFT layer caught a corruption during the query, the signals
//! `resilient.rs` already surfaces in [`crate::ResilienceEvents`] — and
//! decides where the *next* query runs:
//!
//! * **Closed** — queries run on the primary. `failure_threshold`
//!   consecutive unhealthy queries trip the breaker.
//! * **Open** — the primary is quarantined; queries are rerouted to the
//!   worker's clean spare device (the shared admission queue already
//!   redistributes the rest of the load to other workers). After
//!   `probe_after` rerouted queries the breaker goes half-open.
//! * **HalfOpen** — exactly one probe query runs on the primary: a
//!   healthy probe closes the breaker (device rehabilitated), an
//!   unhealthy one reopens it for another full quarantine window.
//!
//! State transitions are driven purely by query counts, so a fixed
//! fault-plan seed produces the same breaker trajectory on every run.

/// Breaker policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive unhealthy queries on the primary that open the
    /// breaker.
    pub failure_threshold: u32,
    /// Queries served on the spare before a half-open probe of the
    /// primary.
    pub probe_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            probe_after: 8,
        }
    }
}

/// Which device the worker should run the next query on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Primary,
    Spare,
}

/// Observable breaker transitions (logged into the server event log
/// and counted as `select_breaker_open_total` on open/reopen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    Opened,
    Reopened,
    Closed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { rerouted: u32 },
    HalfOpen,
}

/// The breaker itself. See the module docs for the state machine.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: State,
    consecutive_failures: u32,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: State::Closed,
            consecutive_failures: 0,
        }
    }

    /// Whether the primary device is currently quarantined.
    pub fn is_open(&self) -> bool {
        matches!(self.state, State::Open { .. })
    }

    /// Route the next query. Advances the quarantine window: the
    /// `probe_after`-th routed query after opening goes half-open and
    /// probes the primary.
    pub fn route(&mut self) -> Route {
        match self.state {
            State::Closed | State::HalfOpen => Route::Primary,
            State::Open { rerouted } => {
                if rerouted >= self.cfg.probe_after {
                    self.state = State::HalfOpen;
                    Route::Primary
                } else {
                    self.state = State::Open {
                        rerouted: rerouted + 1,
                    };
                    Route::Spare
                }
            }
        }
    }

    /// Feed the health verdict of a query that ran on `route`. Spare
    /// results never move the breaker — only the primary's health is
    /// under test.
    pub fn on_result(&mut self, route: Route, healthy: bool) -> Option<BreakerEvent> {
        if route == Route::Spare {
            return None;
        }
        match self.state {
            State::Closed => {
                if healthy {
                    self.consecutive_failures = 0;
                    None
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.cfg.failure_threshold {
                        self.state = State::Open { rerouted: 0 };
                        self.consecutive_failures = 0;
                        Some(BreakerEvent::Opened)
                    } else {
                        None
                    }
                }
            }
            State::HalfOpen => {
                if healthy {
                    self.state = State::Closed;
                    self.consecutive_failures = 0;
                    Some(BreakerEvent::Closed)
                } else {
                    self.state = State::Open { rerouted: 0 };
                    Some(BreakerEvent::Reopened)
                }
            }
            // A result for an Open state can only be a spare result,
            // handled above.
            State::Open { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, probe_after: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            probe_after,
        })
    }

    #[test]
    fn opens_after_consecutive_failures_only() {
        let mut b = breaker(3, 4);
        assert_eq!(b.on_result(Route::Primary, false), None);
        assert_eq!(b.on_result(Route::Primary, true), None); // streak reset
        assert_eq!(b.on_result(Route::Primary, false), None);
        assert_eq!(b.on_result(Route::Primary, false), None);
        assert_eq!(
            b.on_result(Route::Primary, false),
            Some(BreakerEvent::Opened)
        );
        assert!(b.is_open());
    }

    #[test]
    fn quarantine_reroutes_then_probes() {
        let mut b = breaker(1, 2);
        assert_eq!(
            b.on_result(Route::Primary, false),
            Some(BreakerEvent::Opened)
        );
        assert_eq!(b.route(), Route::Spare);
        assert_eq!(b.route(), Route::Spare);
        // window served: next route is the half-open probe
        assert_eq!(b.route(), Route::Primary);
        assert_eq!(
            b.on_result(Route::Primary, true),
            Some(BreakerEvent::Closed)
        );
        assert_eq!(b.route(), Route::Primary);
        assert!(!b.is_open());
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = breaker(1, 1);
        b.on_result(Route::Primary, false);
        assert_eq!(b.route(), Route::Spare);
        assert_eq!(b.route(), Route::Primary); // probe
        assert_eq!(
            b.on_result(Route::Primary, false),
            Some(BreakerEvent::Reopened)
        );
        assert!(b.is_open());
        assert_eq!(b.route(), Route::Spare);
    }

    #[test]
    fn spare_results_never_move_the_breaker() {
        let mut b = breaker(1, 8);
        b.on_result(Route::Primary, false);
        assert!(b.is_open());
        for _ in 0..100 {
            assert_eq!(b.on_result(Route::Spare, false), None);
        }
        assert!(b.is_open());
    }
}
