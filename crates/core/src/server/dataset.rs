//! Server-side datasets.
//!
//! Clients never ship data over the wire: a query names its dataset by
//! a compact [`DatasetSpec`] (distribution code, size, seed) and the
//! server instantiates and caches it. Two queries naming the same spec
//! share one cached `Arc<Vec<f32>>` — which is exactly what makes
//! cross-query batching possible: same spec ⇒ same buffer ⇒ one
//! `multiselect` pass answers all of them.
//!
//! Generation is a pure function of the spec (SplitMix64 throughout),
//! so an in-process client — the bit-identity proptest, `loadgen`'s
//! result checker — can regenerate the exact dataset the server used.

use crate::rng::SplitMix64;

/// Distribution codes carried on the wire (one byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DistCode {
    Uniform = 0,
    Distinct16 = 1,
    Distinct1024 = 2,
    Normal = 3,
    Exponential = 4,
    SortedAscending = 5,
    ClusteredOutliers = 6,
    GeometricCascade = 7,
}

impl DistCode {
    pub const ALL: [DistCode; 8] = [
        DistCode::Uniform,
        DistCode::Distinct16,
        DistCode::Distinct1024,
        DistCode::Normal,
        DistCode::Exponential,
        DistCode::SortedAscending,
        DistCode::ClusteredOutliers,
        DistCode::GeometricCascade,
    ];

    pub fn from_u8(b: u8) -> Option<DistCode> {
        Self::ALL.into_iter().find(|d| *d as u8 == b)
    }

    /// The `selectcli --dist` style name.
    pub fn name(self) -> &'static str {
        match self {
            DistCode::Uniform => "uniform",
            DistCode::Distinct16 => "d16",
            DistCode::Distinct1024 => "d1024",
            DistCode::Normal => "normal",
            DistCode::Exponential => "exp",
            DistCode::SortedAscending => "sorted",
            DistCode::ClusteredOutliers => "clustered",
            DistCode::GeometricCascade => "cascade",
        }
    }

    pub fn from_name(name: &str) -> Option<DistCode> {
        Self::ALL.into_iter().find(|d| d.name() == name)
    }
}

/// Identity of one server-side dataset. `Ord` + `Hash` so it can key
/// the dataset cache and the batching scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetSpec {
    pub dist: DistCode,
    pub n: u64,
    pub seed: u64,
}

impl DatasetSpec {
    pub fn uniform(n: usize, seed: u64) -> Self {
        Self {
            dist: DistCode::Uniform,
            n: n as u64,
            seed,
        }
    }
}

/// Instantiate a dataset from its spec — the server's (only) dataset
/// provider, deliberately `pub` so clients can reproduce server data.
pub fn instantiate(spec: &DatasetSpec) -> Vec<f32> {
    let n = spec.n as usize;
    let mut rng = SplitMix64::new(spec.seed ^ 0x0DA7_A5E7_u64);
    match spec.dist {
        DistCode::Uniform => (0..n).map(|_| rng.next_f64() as f32).collect(),
        DistCode::Distinct16 => (0..n).map(|_| rng.next_below(16) as f32).collect(),
        DistCode::Distinct1024 => (0..n).map(|_| rng.next_below(1024) as f32).collect(),
        DistCode::Normal => (0..n)
            .map(|_| {
                // Box–Muller on two SplitMix64 draws.
                let u1 = rng.next_f64().max(1e-12);
                let u2 = rng.next_f64();
                ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
            })
            .collect(),
        DistCode::Exponential => (0..n)
            .map(|_| (-(rng.next_f64().max(1e-12)).ln()) as f32)
            .collect(),
        DistCode::SortedAscending => (0..n).map(|i| i as f32).collect(),
        DistCode::ClusteredOutliers => (0..n)
            .map(|_| {
                if rng.next_below(1024) == 0 {
                    1e9 * rng.next_f64() as f32
                } else {
                    1e-6 * rng.next_f64() as f32
                }
            })
            .collect(),
        DistCode::GeometricCascade => (0..n)
            .map(|_| {
                let scale = rng.next_below(16) as i32;
                (2f64.powi(-scale) * rng.next_f64()) as f32
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for d in DistCode::ALL {
            assert_eq!(DistCode::from_u8(d as u8), Some(d));
            assert_eq!(DistCode::from_name(d.name()), Some(d));
        }
        assert_eq!(DistCode::from_u8(200), None);
        assert_eq!(DistCode::from_name("zipf"), None);
    }

    #[test]
    fn instantiation_is_deterministic_per_spec() {
        for d in DistCode::ALL {
            let spec = DatasetSpec {
                dist: d,
                n: 4096,
                seed: 7,
            };
            let a = instantiate(&spec);
            let b = instantiate(&spec);
            assert_eq!(a.len(), 4096);
            assert_eq!(
                a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{d:?} must regenerate bit-identically"
            );
            assert!(a.iter().all(|x| x.is_finite()), "{d:?} produced non-finite");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = instantiate(&DatasetSpec::uniform(1024, 1));
        let b = instantiate(&DatasetSpec::uniform(1024, 2));
        assert_ne!(a, b);
    }
}
