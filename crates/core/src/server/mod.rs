//! `selectd`: an overload-safe, concurrent, multi-tenant selection
//! service.
//!
//! Everything below this crate's driver layer is hardened for a single
//! query at a time — faults, ABFT, checkpoints, sharding — but routed
//! through per-thread state (`ObsSession` TLS, one workspace, one
//! device). This module is the concurrency unlock: a [`SelectServer`]
//! owns a pool of warm devices and [`SelectWorkspace`]s and admits N
//! concurrent queries through *handles* — sessions bound to a shared
//! [`MetricsRegistry`], tickets bound to per-query channels — with
//! robustness as the headline:
//!
//! * **Bounded admission.** A fixed-capacity queue plus per-tenant
//!   token buckets ([`QuotaConfig`]). When either says no, the query is
//!   rejected *immediately* with [`SelectError::Overloaded`] — explicit
//!   backpressure instead of unbounded queueing.
//! * **Deadline degradation.** A query's deadline propagates into the
//!   resilient driver's time-budget path: an overloaded server returns
//!   a tagged [`Outcome::Approximate`]-style answer (honest achieved
//!   rank and rank error) rather than timing out silently; a query
//!   whose deadline already expired in the queue skips the exact
//!   attempt entirely.
//! * **Circuit breaking.** Each worker's primary device is watched by a
//!   [`CircuitBreaker`] fed by the fault/latch signals the resilient
//!   driver already surfaces. Consecutive unhealthy queries quarantine
//!   the device; traffic reroutes to a clean spare (and, through the
//!   shared queue, to the other workers) until a half-open probe
//!   rehabilitates it.
//! * **Cross-query batching.** Exact rank queries naming the same
//!   [`DatasetSpec`] are merged into one `multiselect` pass — the
//!   sample/count/reduce work of each level is shared, so m queued
//!   queries cost barely more than one (RadiK's batched-serving
//!   observation).
//! * **Graceful drain.** [`SelectServer::drain`] stops admission,
//!   finishes (or, under a hard drain, checkpoints) in-flight work, and
//!   emits a final [`ServerSnapshot`]. Streaming queries always run
//!   with a spooled checkpoint, so a hard drain loses no progress.
//!
//! Concurrent execution is bit-identical to serial execution of the
//! same query set: every query runs on a freshly `reset` device with
//! its own seed, and the warm buffer pool is result-invariant (both
//! pinned by property tests).

pub mod breaker;
pub mod dataset;
pub mod quota;
pub mod wire;

pub use breaker::{BreakerConfig, BreakerEvent, CircuitBreaker, Route};
pub use dataset::{DatasetSpec, DistCode};
pub use quota::{QuotaConfig, TokenBucket};

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::approx::approx_select_on_device;
use crate::approx_topk::{approx_top_k_with_workspace, plan_for_recall};
use crate::element::{reference_select, SelectElement};
use crate::multiselect::multi_select_with_workspace;
use crate::obs::{Counter, MetricsRegistry, MetricsSnapshot, ObsSession, SpanGuard};
use crate::params::SampleSelectConfig;
use crate::planner::{
    plan_approx_topk_query, plan_rank_query_with_signals, plan_topk_query, PlanSignals,
    PlannedBackend,
};
use crate::quantile_stream::{
    run_quantile_stream, QuantileStreamConfig, WindowSpec, DEFAULT_PROBS,
};
use crate::resilient::{
    resilient_select_on_device, resilient_select_planned, Outcome, ResilienceConfig,
};
use crate::streaming::{streaming_select_with_checkpoint, ChunkError, ChunkSource, SliceChunks};
use crate::topk::top_k_largest_on_device;
use crate::workspace::SelectWorkspace;
use crate::SelectError;
use gpu_sim::arch::{v100, GpuArchitecture};
use gpu_sim::{Device, FaultPlan, SimTime};
use hpc_par::ThreadPool;

// ---------------------------------------------------------------------
// Public request/response types
// ---------------------------------------------------------------------

/// What a query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The exact `rank`-th smallest element.
    Exact { rank: u64 },
    /// A single-pass approximate answer for `rank` (cheap by design).
    Approx { rank: u64 },
    /// The top-`k` threshold (the `(n-k)`-th smallest element).
    TopK { k: u64 },
    /// The `q`-quantiles (q-1 values) of the dataset.
    Quantiles { q: u64 },
    /// Out-of-core selection over the dataset in `chunk_len` chunks,
    /// checkpointed to the server spool (drain-safe).
    Stream { rank: u64, chunk_len: u64 },
    /// Approximate top-`k` threshold with an expected-recall target:
    /// the planner picks a bucketed two-phase pass when the cost model
    /// says it beats the exact fused kernel, otherwise serves exactly.
    /// `recall_bits` is the `f32` bit pattern of the target in `(0, 1]`
    /// (bits, not a float, so `QueryKind` stays `Copy + Eq`).
    ApproxTopK { k: u64, recall_bits: u32 },
    /// Continuous quantile telemetry (p50/p90/p99/p999) over the
    /// dataset streamed in `chunk_len` chunks: windows of `window_len`
    /// elements re-evaluated every `slide` elements, checkpointed to
    /// the server spool (drain-safe, resumes bit-identically).
    QuantileStream {
        window_len: u64,
        slide: u64,
        chunk_len: u64,
    },
}

impl QueryKind {
    /// Decode an [`QueryKind::ApproxTopK`] recall target from its bit
    /// pattern.
    pub fn recall_target(bits: u32) -> f32 {
        f32::from_bits(bits)
    }
}

/// One client query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Tenant identity for quota accounting (any UTF-8 string).
    pub tenant: String,
    pub kind: QueryKind,
    /// The dataset the query runs against (instantiated and cached
    /// server-side; see [`dataset::instantiate`]).
    pub dataset: DatasetSpec,
    /// Wall-clock deadline in milliseconds from submission; `None`
    /// means the client will wait for an exact answer.
    pub deadline_ms: Option<u32>,
    /// Seed for the query's splitter sampling.
    pub seed: u64,
}

/// How a query ended.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryStatus {
    /// Exact answer.
    Exact { value: f32 },
    /// Tagged approximate answer (deadline degradation or an `Approx`
    /// query), with its honest achieved rank and distance to target.
    Approximate {
        value: f32,
        achieved_rank: u64,
        rank_error: u64,
        /// True when an exact query was degraded by its deadline (as
        /// opposed to the client asking for an approximation).
        deadline_degraded: bool,
    },
    /// Top-k threshold.
    TopK { threshold: f32, k: u64 },
    /// Quantile values (q-1 of them).
    Quantiles { values: Vec<f32> },
    /// Approximate top-k threshold with the analytic expected recall of
    /// the served configuration (1.0 when the planner served exactly).
    ApproxTopK {
        threshold: f32,
        k: u64,
        expected_recall: f32,
    },
    /// Quantile-telemetry stream outcome: how many windows closed and
    /// the final window's values (one per tracked probability,
    /// p50/p90/p99/p999 order).
    QuantileStream { windows: u64, values: Vec<f32> },
    /// A streaming query interrupted by a hard drain; re-submit the
    /// same query after restart to resume from `resume_token`.
    Checkpointed { resume_token: String },
    /// The query could not be answered (permanent error or a panic
    /// isolated by the worker).
    Failed { message: String },
}

impl QueryStatus {
    /// Whether this response claims an exact answer.
    pub fn is_exact(&self) -> bool {
        matches!(
            self,
            QueryStatus::Exact { .. }
                | QueryStatus::TopK { .. }
                | QueryStatus::Quantiles { .. }
                | QueryStatus::QuantileStream { .. }
        )
    }
}

/// The server's answer to one admitted query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Server-assigned query id (admission order).
    pub id: u64,
    pub tenant: String,
    pub status: QueryStatus,
    /// Which backend label produced the answer (`None` for rejected /
    /// failed paths that never ran a driver).
    pub backend: Option<&'static str>,
    /// What the admission-time planner chose for this query (`None`
    /// when the planner is disabled or the kind is not planned). The
    /// serving backend can differ: the resilient driver may have fallen
    /// past the planned backend, or the batcher may have merged the
    /// query into a multiselect pass.
    pub planned: Option<&'static str>,
    /// True when the answer came out of a merged multiselect batch.
    pub batched: bool,
    /// Wall-clock milliseconds spent queued before a worker picked the
    /// query up.
    pub wait_ms: f64,
    /// Wall-clock milliseconds of driver execution.
    pub service_ms: f64,
}

/// Handle to one admitted query: wait on it for the response.
#[derive(Debug)]
pub struct QueryTicket {
    /// The server-assigned query id.
    pub id: u64,
    rx: Receiver<QueryResponse>,
}

impl QueryTicket {
    /// Block until the worker responds. Returns a `Failed` status if
    /// the server was torn down without answering.
    pub fn wait(self) -> QueryResponse {
        self.rx.recv().unwrap_or(QueryResponse {
            id: self.id,
            tenant: String::new(),
            status: QueryStatus::Failed {
                message: "server shut down before answering".to_string(),
            },
            backend: None,
            planned: None,
            batched: false,
            wait_ms: 0.0,
            service_ms: 0.0,
        })
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads, each owning one warm primary device (plus a
    /// lazily built clean spare for breaker rerouting).
    pub workers: usize,
    /// Host threads per worker's simulated-device pool.
    pub worker_threads: usize,
    /// Admission-queue capacity; a full queue rejects with
    /// [`SelectError::Overloaded`].
    pub queue_capacity: usize,
    /// Per-tenant token bucket.
    pub quota: QuotaConfig,
    /// Per-device circuit breaker.
    pub breaker: BreakerConfig,
    /// Max exact rank queries merged into one multiselect pass
    /// (1 disables batching).
    pub batch_max: usize,
    /// Base selection configuration (per-query seeds override
    /// `select.seed`).
    pub select: SampleSelectConfig,
    /// Resilience policy for exact queries (the per-query deadline
    /// overrides `resilience.time_budget`).
    pub resilience: ResilienceConfig,
    /// Simulated-device architecture.
    pub arch: GpuArchitecture,
    /// Upper bound on instantiated dataset size (admission control on
    /// memory, not correctness).
    pub max_dataset_elems: u64,
    /// Total bytes of instantiated datasets kept warm in the server
    /// cache; least-recently-used specs are evicted past this bound.
    /// In-flight queries hold their own `Arc`, so eviction never
    /// invalidates queued or running work.
    pub dataset_cache_bytes: usize,
    /// Wall-deadline milliseconds → simulated-budget milliseconds
    /// scale for the degradation path.
    pub deadline_sim_scale: f64,
    /// Directory for streaming-query checkpoints (`None` disables
    /// `Stream` queries).
    pub spool_dir: Option<PathBuf>,
    /// Injected fault plans per worker's primary device (testing/CI:
    /// make worker *i* flaky and watch the breaker quarantine it).
    pub fault_plans: Vec<Option<FaultPlan>>,
    /// Restart each worker's span-collecting session after this many
    /// queries so a long-lived server does not accumulate span trees
    /// without bound (counters live in the shared registry and are
    /// unaffected).
    pub session_recycle_queries: u64,
    /// Route exact and top-k queries through the adaptive
    /// [`crate::planner`] (cost model + live obs signals) instead of
    /// always starting from SampleSelect. The planner's pick heads the
    /// resilient fallback chain; disabling restores the fixed default
    /// chain.
    pub planner: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            worker_threads: 1,
            queue_capacity: 64,
            quota: QuotaConfig::default(),
            breaker: BreakerConfig::default(),
            batch_max: 8,
            select: SampleSelectConfig::default(),
            resilience: ResilienceConfig::default(),
            arch: v100(),
            max_dataset_elems: 1 << 24,
            dataset_cache_bytes: 256 << 20,
            deadline_sim_scale: 1.0,
            spool_dir: None,
            fault_plans: Vec::new(),
            session_recycle_queries: 256,
            planner: true,
        }
    }
}

impl ServerConfig {
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    pub fn with_quota(mut self, quota: QuotaConfig) -> Self {
        self.quota = quota;
        self
    }

    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    pub fn with_spool_dir(mut self, dir: PathBuf) -> Self {
        self.spool_dir = Some(dir);
        self
    }

    /// Arm worker `w`'s primary device with a fault plan.
    pub fn with_fault_plan(mut self, worker: usize, plan: FaultPlan) -> Self {
        if self.fault_plans.len() <= worker {
            self.fault_plans.resize(worker + 1, None);
        }
        self.fault_plans[worker] = Some(plan);
        self
    }

    pub fn with_select(mut self, select: SampleSelectConfig) -> Self {
        self.select = select;
        self
    }

    pub fn with_planner(mut self, on: bool) -> Self {
        self.planner = on;
        self
    }

    fn fault_plan_for(&self, worker: usize) -> Option<FaultPlan> {
        self.fault_plans.get(worker).cloned().flatten()
    }
}

// ---------------------------------------------------------------------
// Per-tenant accounting
// ---------------------------------------------------------------------

/// Per-tenant counters, exported in the [`ServerSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    pub admitted: u64,
    pub rejected: u64,
    pub deadline_degraded: u64,
    /// Queries served on a spare device while a breaker was open.
    pub breaker_rerouted: u64,
    /// Queries answered out of a merged multiselect batch.
    pub batched: u64,
    pub exact: u64,
    pub approximate: u64,
    pub failed: u64,
}

struct TenantState {
    bucket: TokenBucket,
    counters: TenantCounters,
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// Everything the server knows at drain time (or on a live `Stats`
/// request): the shared metrics registry, per-tenant counters, and the
/// ordered event log (breaker transitions, quarantines, drain).
#[derive(Debug, Clone)]
pub struct ServerSnapshot {
    pub metrics: MetricsSnapshot,
    /// `(tenant, counters)` in tenant-name order.
    pub tenants: Vec<(String, TenantCounters)>,
    pub events: Vec<String>,
    /// Total responses produced.
    pub queries_served: u64,
    /// The most recent planner decisions as `(query id, backend)`,
    /// oldest first, bounded to the last 256 planned queries (the
    /// lifetime tallies live in the `select_planner_*_total` counters
    /// of `metrics`).
    pub recent_plans: Vec<(u64, &'static str)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ServerSnapshot {
    /// Hand-rolled JSON (like the rest of the workspace), embedding the
    /// metrics snapshot verbatim. Parses with `gpu_sim::jsonv`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        out.push_str("{\n  \"schema\": \"selectd-snapshot-v1\",\n");
        let _ = writeln!(out, "  \"queries_served\": {},", self.queries_served);
        out.push_str("  \"tenants\": {");
        for (i, (name, c)) in self.tenants.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"admitted\": {}, \"rejected\": {}, \
                 \"deadline_degraded\": {}, \"breaker_rerouted\": {}, \"batched\": {}, \
                 \"exact\": {}, \"approximate\": {}, \"failed\": {}}}",
                json_escape(name),
                c.admitted,
                c.rejected,
                c.deadline_degraded,
                c.breaker_rerouted,
                c.batched,
                c.exact,
                c.approximate,
                c.failed
            );
        }
        out.push_str("\n  },\n  \"recent_plans\": [");
        for (i, (id, backend)) in self.recent_plans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"id\": {id}, \"backend\": \"{backend}\"}}"
            );
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\"", json_escape(e));
        }
        out.push_str("\n  ],\n  \"metrics\": ");
        // MetricsSnapshot::to_json is a complete object ending in '\n'.
        out.push_str(self.metrics.to_json().trim_end());
        out.push_str("\n}\n");
        out
    }
}

// ---------------------------------------------------------------------
// Server internals
// ---------------------------------------------------------------------

const MODE_RUNNING: u8 = 0;
const MODE_DRAINING: u8 = 1;
/// Hard drain: in-flight streaming queries checkpoint and stop at the
/// next chunk boundary instead of running to completion.
const MODE_HARD_DRAIN: u8 = 2;

struct Job {
    id: u64,
    tenant: String,
    kind: QueryKind,
    spec: DatasetSpec,
    data: Arc<Vec<f32>>,
    deadline_ms: Option<u32>,
    seed: u64,
    submitted: Instant,
    /// Admission-time planner decision (exact/top-k kinds with the
    /// planner enabled). Carried on the job so `pop_batch` can check
    /// co-plannability under the queue lock without re-probing data.
    plan: Option<PlannedBackend>,
    tx: Sender<QueryResponse>,
}

/// LRU dataset cache bounded by total bytes. Client-chosen specs must
/// not be able to grow server memory without limit: past the cap the
/// least-recently-used spec is evicted (in-flight queries keep their
/// own `Arc`, so eviction is invisible to queued and running work).
#[derive(Default)]
struct DatasetCache {
    entries: BTreeMap<DatasetSpec, (Arc<Vec<f32>>, u64)>,
    bytes: usize,
    tick: u64,
}

impl DatasetCache {
    fn get_or_instantiate(&mut self, spec: &DatasetSpec, cap_bytes: usize) -> Arc<Vec<f32>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((data, last_used)) = self.entries.get_mut(spec) {
            *last_used = tick;
            return Arc::clone(data);
        }
        let data = Arc::new(dataset::instantiate(spec));
        self.bytes += data.len() * std::mem::size_of::<f32>();
        self.entries.insert(*spec, (Arc::clone(&data), tick));
        while self.bytes > cap_bytes {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(spec, _)| *spec);
            match lru {
                Some(spec) => {
                    if let Some((evicted, _)) = self.entries.remove(&spec) {
                        self.bytes -= evicted.len() * std::mem::size_of::<f32>();
                    }
                }
                None => break,
            }
        }
        data
    }
}

struct Shared {
    cfg: ServerConfig,
    registry: Arc<MetricsRegistry>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    tenants: Mutex<BTreeMap<String, TenantState>>,
    datasets: Mutex<DatasetCache>,
    events: Mutex<Vec<String>>,
    mode: AtomicU8,
    next_id: AtomicU64,
    served: AtomicU64,
    start: Instant,
    /// Ring of the most recent planner decisions `(query id, backend)`,
    /// bounded by [`PLAN_LOG_CAP`] so a long-lived server cannot grow it
    /// without limit; exported in the [`ServerSnapshot`].
    plans: Mutex<VecDeque<(u64, &'static str)>>,
}

/// Bound on the snapshot's recent-planner-decision ring.
const PLAN_LOG_CAP: usize = 256;

impl Shared {
    fn mode(&self) -> u8 {
        self.mode.load(Ordering::Acquire)
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn log_event(&self, event: String) {
        self.events.lock().unwrap().push(event);
    }

    /// Count a queue-full rejection and hand back the quota token it
    /// already paid — a query the server never admitted must not burn
    /// the tenant's budget.
    fn reject_queue_full(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(state) = tenants.get_mut(tenant) {
            state.bucket.refund();
            state.counters.rejected += 1;
        }
        self.registry.add(Counter::Rejected, 1);
    }

    /// Tally one planner decision: fixed-slot counter in the shared
    /// registry plus the bounded recent-decision ring.
    fn record_plan(&self, id: u64, backend: PlannedBackend, overridden: bool) {
        self.registry.add(backend.counter(), 1);
        if overridden {
            self.registry.add(Counter::PlannerOverrides, 1);
        }
        let mut plans = self.plans.lock().unwrap();
        if plans.len() >= PLAN_LOG_CAP {
            plans.pop_front();
        }
        plans.push_back((id, backend.name()));
    }

    fn tenant_count<F: FnOnce(&mut TenantCounters)>(&self, tenant: &str, f: F) {
        let mut tenants = self.tenants.lock().unwrap();
        let now = self.now_ns();
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                bucket: TokenBucket::new(self.cfg.quota.clone(), now),
                counters: TenantCounters::default(),
            });
        f(&mut state.counters);
    }
}

/// The server: spawn with [`SelectServer::start`], submit with
/// [`SelectServer::submit`]/[`SelectServer::query`], stop with
/// [`SelectServer::drain`].
pub struct SelectServer {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SelectServer {
    pub fn start(cfg: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            registry: Arc::new(MetricsRegistry::new()),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            tenants: Mutex::new(BTreeMap::new()),
            datasets: Mutex::new(DatasetCache::default()),
            events: Mutex::new(Vec::new()),
            mode: AtomicU8::new(MODE_RUNNING),
            next_id: AtomicU64::new(0),
            served: AtomicU64::new(0),
            start: Instant::now(),
            plans: Mutex::new(VecDeque::new()),
            cfg,
        });
        let workers = (0..shared.cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("selectd-worker-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn worker")
            })
            .collect();
        SelectServer {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Shared handle to the live metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// Admit one query, or reject it with explicit backpressure.
    ///
    /// Rejection reasons (all [`SelectError::Overloaded`]): the server
    /// is draining, the tenant's token bucket is empty (`"quota"`), or
    /// the admission queue is full (`"queue-full"`, which refunds the
    /// quota token the submission charged). Invalid queries (rank out
    /// of range, empty dataset) fail with their usual [`SelectError`]s
    /// and never consume quota.
    pub fn submit(&self, req: QueryRequest) -> Result<QueryTicket, SelectError> {
        let shared = &self.shared;
        if shared.mode() != MODE_RUNNING {
            shared.registry.add(Counter::Rejected, 1);
            shared.tenant_count(&req.tenant, |c| c.rejected += 1);
            return Err(SelectError::Overloaded {
                reason: "draining",
                tenant: req.tenant,
            });
        }
        // Validate before charging quota.
        if req.dataset.n == 0 {
            return Err(SelectError::EmptyInput);
        }
        if req.dataset.n > shared.cfg.max_dataset_elems {
            return Err(SelectError::Overloaded {
                reason: "dataset-too-large",
                tenant: req.tenant,
            });
        }
        let n = req.dataset.n;
        match req.kind {
            QueryKind::Exact { rank } | QueryKind::Approx { rank } => {
                if rank >= n {
                    return Err(SelectError::RankOutOfRange {
                        rank: rank as usize,
                        len: n as usize,
                    });
                }
            }
            QueryKind::TopK { k } => {
                if k == 0 || k > n {
                    return Err(SelectError::RankOutOfRange {
                        rank: k as usize,
                        len: n as usize,
                    });
                }
            }
            QueryKind::Quantiles { q } => {
                // Upper bound mirrors the TopK `k <= n` check: serving
                // builds q-1 ranks, so an unbounded q from the wire
                // would be an allocation-sized attack on the worker.
                if q < 2 || q > n {
                    return Err(SelectError::RankOutOfRange {
                        rank: q as usize,
                        len: n as usize,
                    });
                }
            }
            QueryKind::Stream { rank, chunk_len } => {
                if rank >= n || chunk_len == 0 {
                    return Err(SelectError::RankOutOfRange {
                        rank: rank as usize,
                        len: n as usize,
                    });
                }
                if shared.cfg.spool_dir.is_none() {
                    return Err(SelectError::Overloaded {
                        reason: "streaming-disabled",
                        tenant: req.tenant,
                    });
                }
            }
            QueryKind::ApproxTopK { k, recall_bits } => {
                if k == 0 || k > n {
                    return Err(SelectError::RankOutOfRange {
                        rank: k as usize,
                        len: n as usize,
                    });
                }
                let target = f32::from_bits(recall_bits);
                if !target.is_finite() || target <= 0.0 || target > 1.0 {
                    return Err(SelectError::InvalidArgument {
                        what: format!("recall target {target} outside (0, 1]"),
                    });
                }
            }
            QueryKind::QuantileStream {
                window_len,
                slide,
                chunk_len,
            } => {
                // Window parameters ride one u64 wire slot packed as
                // two u32 halves, so each half must fit.
                if window_len == 0
                    || window_len > u64::from(u32::MAX)
                    || slide == 0
                    || slide > window_len
                    || chunk_len == 0
                {
                    return Err(SelectError::InvalidArgument {
                        what: format!(
                            "quantile-stream window {window_len}/slide {slide}/chunk {chunk_len}"
                        ),
                    });
                }
                if window_len > n {
                    return Err(SelectError::RankOutOfRange {
                        rank: window_len as usize,
                        len: n as usize,
                    });
                }
                if shared.cfg.spool_dir.is_none() {
                    return Err(SelectError::Overloaded {
                        reason: "streaming-disabled",
                        tenant: req.tenant,
                    });
                }
            }
        }

        // Per-tenant token bucket.
        {
            let mut tenants = shared.tenants.lock().unwrap();
            let now = shared.now_ns();
            let state = tenants
                .entry(req.tenant.clone())
                .or_insert_with(|| TenantState {
                    bucket: TokenBucket::new(shared.cfg.quota.clone(), now),
                    counters: TenantCounters::default(),
                });
            if !state.bucket.try_take(now) {
                state.counters.rejected += 1;
                shared.registry.add(Counter::Rejected, 1);
                return Err(SelectError::Overloaded {
                    reason: "quota",
                    tenant: req.tenant,
                });
            }
        }

        // Queue pre-check before the dataset is touched: a submission
        // the queue will reject must not pay (or cache) instantiation.
        // Racy by design — the authoritative check is under the push
        // lock below.
        if shared.queue.lock().unwrap().len() >= shared.cfg.queue_capacity {
            shared.reject_queue_full(&req.tenant);
            return Err(SelectError::Overloaded {
                reason: "queue-full",
                tenant: req.tenant,
            });
        }

        // Dataset cache (instantiated on the submitter's thread so the
        // workers never pay generation cost; LRU-bounded by
        // `dataset_cache_bytes`).
        let data = shared
            .datasets
            .lock()
            .unwrap()
            .get_or_instantiate(&req.dataset, shared.cfg.dataset_cache_bytes);

        // Adaptive backend planning on the submitter's thread (the
        // probe is a stack-only strided scan — cheap next to the
        // instantiation above). Live signals come from the shared
        // registry's gauges, i.e. from what earlier queries observed.
        let plan = if shared.cfg.planner {
            match req.kind {
                QueryKind::Exact { rank } => {
                    let signals = PlanSignals::from_snapshot(&shared.registry.snapshot());
                    Some(plan_rank_query_with_signals(
                        &shared.cfg.arch,
                        &data,
                        rank as usize,
                        &shared.cfg.select,
                        &signals,
                    ))
                }
                QueryKind::TopK { k } => Some(plan_topk_query(
                    &shared.cfg.arch,
                    &data,
                    k as usize,
                    &shared.cfg.select,
                )),
                QueryKind::ApproxTopK { k, recall_bits } => {
                    let target = f64::from(f32::from_bits(recall_bits));
                    let (acfg, _) = plan_for_recall(data.len(), k as usize, target);
                    Some(plan_approx_topk_query(
                        &shared.cfg.arch,
                        &data,
                        k as usize,
                        &acfg,
                        &shared.cfg.select,
                    ))
                }
                _ => None,
            }
        } else {
            None
        };

        // Bounded queue.
        let (tx, rx) = channel();
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = &plan {
            shared.record_plan(id, d.backend, d.overridden);
        }
        {
            let mut queue = shared.queue.lock().unwrap();
            if queue.len() >= shared.cfg.queue_capacity {
                drop(queue);
                shared.reject_queue_full(&req.tenant);
                return Err(SelectError::Overloaded {
                    reason: "queue-full",
                    tenant: req.tenant,
                });
            }
            queue.push_back(Job {
                id,
                tenant: req.tenant.clone(),
                kind: req.kind,
                spec: req.dataset,
                data,
                deadline_ms: req.deadline_ms,
                seed: req.seed,
                submitted: Instant::now(),
                plan: plan.map(|d| d.backend),
                tx,
            });
        }
        shared.registry.add(Counter::Admitted, 1);
        shared.tenant_count(&req.tenant, |c| c.admitted += 1);
        shared.available.notify_one();
        Ok(QueryTicket { id, rx })
    }

    /// Submit and block for the response.
    pub fn query(&self, req: QueryRequest) -> Result<QueryResponse, SelectError> {
        self.submit(req).map(QueryTicket::wait)
    }

    /// Live snapshot (the wire `Stats` op).
    pub fn snapshot(&self) -> ServerSnapshot {
        let shared = &self.shared;
        ServerSnapshot {
            metrics: shared.registry.snapshot(),
            tenants: shared
                .tenants
                .lock()
                .unwrap()
                .iter()
                .map(|(name, st)| (name.clone(), st.counters))
                .collect(),
            events: shared.events.lock().unwrap().clone(),
            queries_served: shared.served.load(Ordering::Relaxed),
            recent_plans: shared.plans.lock().unwrap().iter().copied().collect(),
        }
    }

    /// Stop admitting and wake every worker. `hard` additionally makes
    /// in-flight streaming queries checkpoint at the next chunk
    /// boundary instead of running to completion.
    pub fn begin_drain(&self, hard: bool) {
        let mode = if hard { MODE_HARD_DRAIN } else { MODE_DRAINING };
        self.shared.mode.store(mode, Ordering::Release);
        self.shared.log_event(format!(
            "drain: admission stopped ({})",
            if hard { "hard" } else { "graceful" }
        ));
        self.shared.available.notify_all();
    }

    /// Graceful shutdown: stop admitting, let the workers finish every
    /// queued query, join them, and return the final snapshot.
    pub fn drain(&self) -> ServerSnapshot {
        if self.shared.mode() == MODE_RUNNING {
            self.begin_drain(false);
        }
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.shared
            .log_event("drain: all workers joined".to_string());
        self.snapshot()
    }
}

impl Drop for SelectServer {
    fn drop(&mut self) {
        // Don't overwrite an already-begun (possibly hard) drain: a
        // graceful store here would blind `DrainAwareSource` to
        // MODE_HARD_DRAIN and let in-flight streams run to completion.
        if self.shared.mode() == MODE_RUNNING {
            self.begin_drain(false);
        } else {
            self.shared.available.notify_all();
        }
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// A [`ChunkSource`] that aborts (with a *permanent* chunk error) at
/// the next chunk boundary once a hard drain begins — the mechanism
/// that turns "stop now" into "checkpoint and stop", because the
/// streaming driver persists its checkpoint after every chunk.
struct DrainAwareSource<'a> {
    inner: SliceChunks<'a, f32>,
    shared: &'a Shared,
}

impl ChunkSource<f32> for DrainAwareSource<'_> {
    fn num_chunks(&self) -> usize {
        self.inner.num_chunks()
    }

    fn total_len(&self) -> usize {
        self.inner.total_len()
    }

    fn source_name(&self) -> &str {
        "selectd-stream"
    }

    fn load_chunk(&self, chunk: usize) -> Result<Vec<f32>, ChunkError> {
        if self.shared.mode() == MODE_HARD_DRAIN {
            return Err(ChunkError {
                chunk,
                message: "server hard-draining; progress checkpointed".to_string(),
                transient: false,
            });
        }
        self.inner.load_chunk(chunk)
    }
}

fn pop_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut queue = shared.queue.lock().unwrap();
    loop {
        if let Some(job) = queue.pop_front() {
            let mut batch = vec![job];
            // Cross-query batching: pull every queued *exact* query on
            // the same dataset (any tenant, any seed — exactness is
            // seed-independent) into one multiselect pass. Only
            // deadline-free queries batch — on both sides: a
            // deadline-carrying head must go through `serve_job`'s
            // expired/remaining-budget path, not the batch path.
            // Co-plannability: only queries with *identical* planner
            // decisions merge (same spec ⇒ same probe ⇒ normally the
            // same plan, but plans can differ across a config change or
            // live-signal override). The merged group then runs one
            // multiselect pass — a group-level planning decision that
            // amortizes the count pass across every member, which beats
            // any per-query backend once two or more queries share it.
            if shared.cfg.batch_max > 1
                && matches!(batch[0].kind, QueryKind::Exact { .. })
                && batch[0].deadline_ms.is_none()
            {
                let spec = batch[0].spec;
                let head_plan = batch[0].plan;
                let mut i = 0;
                while i < queue.len() && batch.len() < shared.cfg.batch_max {
                    let mergeable = matches!(queue[i].kind, QueryKind::Exact { .. })
                        && queue[i].spec == spec
                        && queue[i].deadline_ms.is_none()
                        && queue[i].plan == head_plan;
                    if mergeable {
                        batch.push(queue.remove(i).expect("index in bounds"));
                    } else {
                        i += 1;
                    }
                }
            }
            return Some(batch);
        }
        if shared.mode() != MODE_RUNNING {
            return None;
        }
        queue = shared.available.wait(queue).unwrap();
    }
}

fn worker_loop(shared: Arc<Shared>, worker_id: usize) {
    let cfg = shared.cfg.clone();
    let pool = ThreadPool::new(cfg.worker_threads.max(1));
    let mut primary = Device::new(cfg.arch.clone(), &pool);
    primary.enable_buffer_pool();
    if let Some(plan) = cfg.fault_plan_for(worker_id) {
        primary.set_fault_plan(plan);
    }
    let mut spare: Option<Device> = None;
    let mut breaker = CircuitBreaker::new(cfg.breaker.clone());
    let mut ws = SelectWorkspace::<f32>::new();
    let mut session = ObsSession::start_with_registry(Arc::clone(&shared.registry));
    let mut queries_since_recycle = 0u64;

    while let Some(batch) = pop_batch(&shared) {
        let route = breaker.route();
        let rerouted = route == Route::Spare;
        let device: &mut Device = match route {
            Route::Primary => &mut primary,
            Route::Spare => spare.get_or_insert_with(|| {
                // The quarantined "hardware" is replaced by a clean
                // standby: same architecture, no fault plan.
                let mut d = Device::new(cfg.arch.clone(), &pool);
                d.enable_buffer_pool();
                d
            }),
        };

        let healthy = serve_batch(&shared, &cfg, device, &mut ws, batch, rerouted);
        if let Some(event) = breaker.on_result(route, healthy) {
            match event {
                BreakerEvent::Opened | BreakerEvent::Reopened => {
                    shared.registry.add(Counter::BreakerOpen, 1);
                    shared.log_event(format!(
                        "breaker: worker {worker_id} primary device quarantined ({event:?}); \
                         rerouting to spare"
                    ));
                }
                BreakerEvent::Closed => {
                    shared.log_event(format!(
                        "breaker: worker {worker_id} primary device rehabilitated"
                    ));
                }
            }
        }

        queries_since_recycle += 1;
        if queries_since_recycle >= cfg.session_recycle_queries {
            // Drop accumulated span trees; the shared registry keeps
            // every counter.
            session.finish();
            session = ObsSession::start_with_registry(Arc::clone(&shared.registry));
            queries_since_recycle = 0;
        }
    }
    session.finish();
}

/// Serve one popped batch (usually a single job). Returns the health
/// verdict for the breaker: `false` when the device latched a fault or
/// the ABFT layer caught a corruption during any job of the batch.
fn serve_batch(
    shared: &Shared,
    cfg: &ServerConfig,
    device: &mut Device,
    ws: &mut SelectWorkspace<f32>,
    batch: Vec<Job>,
    rerouted: bool,
) -> bool {
    if batch.len() >= 2 {
        // All jobs are Exact on the same dataset (pop_batch guarantees
        // it). One multiselect pass answers every one of them.
        let data = Arc::clone(&batch[0].data);
        let ranks: Vec<usize> = batch
            .iter()
            .map(|j| match j.kind {
                QueryKind::Exact { rank } => rank as usize,
                _ => unreachable!("pop_batch only merges exact queries"),
            })
            .collect();
        let select_cfg = cfg.select.clone().with_seed(batch[0].seed);
        let t0 = Instant::now();
        device.reset();
        let result = {
            let _guard = SpanGuard::new();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                multi_select_with_workspace(device, &data, &ranks, &select_cfg, ws)
            }))
        };
        let fault = device.take_fault();
        let service_ms = t0.elapsed().as_secs_f64() * 1e3;
        match (result, fault) {
            (Ok(Ok(multi)), None) => {
                shared.registry.add(Counter::Batched, batch.len() as u64);
                for (job, value) in batch.into_iter().zip(multi.values) {
                    shared.tenant_count(&job.tenant, |c| {
                        c.batched += 1;
                        c.exact += 1;
                        if rerouted {
                            c.breaker_rerouted += 1;
                        }
                    });
                    respond(
                        shared,
                        job,
                        QueryStatus::Exact { value },
                        Some("multiselect"),
                        true,
                        service_ms,
                    );
                }
                return true;
            }
            _ => {
                // Batch attempt faulted (or a panic was isolated): fall
                // back to serving each query individually through the
                // resilient driver, which owns retry/fallback.
                let mut healthy = false; // the batch itself was unhealthy
                for job in batch {
                    healthy &= serve_job(shared, cfg, device, ws, job, rerouted);
                }
                return healthy;
            }
        }
    }
    let mut healthy = true;
    for job in batch {
        healthy &= serve_job(shared, cfg, device, ws, job, rerouted);
    }
    healthy
}

fn respond(
    shared: &Shared,
    job: Job,
    status: QueryStatus,
    backend: Option<&'static str>,
    batched: bool,
    service_ms: f64,
) {
    let wait_ms = job.submitted.elapsed().as_secs_f64() * 1e3 - service_ms;
    shared.served.fetch_add(1, Ordering::Relaxed);
    // The client may have given up on its ticket; a dead channel is
    // not a server error.
    let _ = job.tx.send(QueryResponse {
        id: job.id,
        tenant: job.tenant,
        status,
        backend,
        planned: job.plan.map(PlannedBackend::name),
        batched,
        wait_ms: wait_ms.max(0.0),
        service_ms,
    });
}

/// Serve one query on `device`. Returns the breaker health verdict.
fn serve_job(
    shared: &Shared,
    cfg: &ServerConfig,
    device: &mut Device,
    ws: &mut SelectWorkspace<f32>,
    job: Job,
    rerouted: bool,
) -> bool {
    let t0 = Instant::now();
    let data = Arc::clone(&job.data);
    let select_cfg = cfg.select.clone().with_seed(job.seed);

    // Deadline bookkeeping: how much wall budget is left when the
    // worker picks the query up?
    let waited_ms = job.submitted.elapsed().as_secs_f64() * 1e3;
    let expired = job.deadline_ms.is_some_and(|d| waited_ms >= f64::from(d));
    let remaining_ms = job.deadline_ms.map(|d| (f64::from(d) - waited_ms).max(0.0));

    device.reset();
    let _guard = SpanGuard::new();
    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_query(
            shared,
            cfg,
            device,
            ws,
            &job,
            &data,
            &select_cfg,
            expired,
            remaining_ms,
        )
    }));
    let service_ms = t0.elapsed().as_secs_f64() * 1e3;
    match ran {
        Ok((status, backend, healthy)) => {
            if rerouted {
                shared.tenant_count(&job.tenant, |c| c.breaker_rerouted += 1);
            }
            respond(shared, job, status, backend, false, service_ms);
            healthy
        }
        Err(_) => {
            // Panic isolated: the SpanGuard restored the span stack and
            // the device gets reset before the next query; answer the
            // client honestly and treat the device as unhealthy.
            let _ = device.take_fault();
            shared.tenant_count(&job.tenant, |c| c.failed += 1);
            respond(
                shared,
                job,
                QueryStatus::Failed {
                    message: "query panicked in driver (isolated)".to_string(),
                },
                None,
                false,
                service_ms,
            );
            false
        }
    }
}

/// The per-kind driver dispatch. Returns `(status, backend, healthy)`.
#[allow(clippy::too_many_arguments)]
fn run_query(
    shared: &Shared,
    cfg: &ServerConfig,
    device: &mut Device,
    ws: &mut SelectWorkspace<f32>,
    job: &Job,
    data: &[f32],
    select_cfg: &SampleSelectConfig,
    expired: bool,
    remaining_ms: Option<f64>,
) -> (QueryStatus, Option<&'static str>, bool) {
    match job.kind {
        QueryKind::Exact { rank } => {
            let mut rcfg = cfg.resilience.clone();
            if expired {
                // The queue already consumed the deadline: skip the
                // exact attempt entirely and shed load via the
                // degradation path (zero budget degrades immediately).
                rcfg.time_budget = Some(SimTime::ZERO);
            } else if let Some(ms) = remaining_ms {
                rcfg.time_budget = Some(SimTime::from_ms(ms * cfg.deadline_sim_scale));
            }
            // The planner's admission-time pick heads the fallback
            // chain; without a plan the default chain applies.
            let ran = match job.plan {
                Some(planned) => resilient_select_planned(
                    device,
                    data,
                    rank as usize,
                    select_cfg,
                    &rcfg,
                    planned,
                ),
                None => resilient_select_on_device(device, data, rank as usize, select_cfg, &rcfg),
            };
            match ran {
                Ok(res) => {
                    let healthy = res.report.resilience.faults_observed == 0
                        && res.report.resilience.corruptions_detected == 0;
                    let backend = Some(res.backend.name());
                    match res.outcome {
                        Outcome::Exact(value) => {
                            shared.tenant_count(&job.tenant, |c| c.exact += 1);
                            (QueryStatus::Exact { value }, backend, healthy)
                        }
                        Outcome::Approximate {
                            value,
                            achieved_rank,
                            rank_error,
                        } => {
                            shared.registry.add(Counter::DeadlineDegraded, 1);
                            shared.tenant_count(&job.tenant, |c| {
                                c.approximate += 1;
                                c.deadline_degraded += 1;
                            });
                            (
                                QueryStatus::Approximate {
                                    value,
                                    achieved_rank,
                                    rank_error,
                                    deadline_degraded: true,
                                },
                                backend,
                                healthy,
                            )
                        }
                    }
                }
                Err(e) => {
                    shared.tenant_count(&job.tenant, |c| c.failed += 1);
                    (
                        QueryStatus::Failed {
                            message: e.to_string(),
                        },
                        None,
                        !e.is_transient(),
                    )
                }
            }
        }
        QueryKind::Approx { rank } => {
            // The client asked for an approximation: one counting pass,
            // retried on faults, with the exact CPU answer as the
            // can't-fail last resort (an exact answer is a rank_error=0
            // approximation).
            let mut healthy = true;
            for attempt in 0..=cfg.resilience.retry.max_retries {
                device.reset();
                let attempt_cfg = select_cfg
                    .clone()
                    .with_seed(select_cfg.seed.wrapping_add(u64::from(attempt)));
                let result = approx_select_on_device(device, data, rank as usize, &attempt_cfg);
                let fault = device.take_fault();
                if let (Ok(a), None) = (result, fault) {
                    shared.tenant_count(&job.tenant, |c| c.approximate += 1);
                    return (
                        QueryStatus::Approximate {
                            value: a.value,
                            achieved_rank: a.achieved_rank,
                            rank_error: a.rank_error,
                            deadline_degraded: false,
                        },
                        Some("approx"),
                        healthy,
                    );
                }
                healthy = false;
            }
            let value = reference_select(data, rank as usize).expect("rank validated at admission");
            shared.tenant_count(&job.tenant, |c| c.approximate += 1);
            (
                QueryStatus::Approximate {
                    value,
                    achieved_rank: rank,
                    rank_error: 0,
                    deadline_degraded: false,
                },
                Some("cpu-sort"),
                false,
            )
        }
        QueryKind::TopK { k } => {
            let mut healthy = true;
            // A non-fused plan (large k/n) answers the threshold via a
            // rank selection on the planned backend instead of
            // materializing all k elements.
            let rank_plan = job.plan.filter(|&p| p != PlannedBackend::TopK);
            for attempt in 0..=cfg.resilience.retry.max_retries {
                device.reset();
                let attempt_cfg = select_cfg
                    .clone()
                    .with_seed(select_cfg.seed.wrapping_add(u64::from(attempt)));
                let (threshold, label) = match rank_plan {
                    Some(p) => {
                        let rank = data.len() - k as usize;
                        let r =
                            crate::planner::run_planned(device, data, rank, &attempt_cfg, ws, p);
                        (r.map(|res| res.value), p.name())
                    }
                    None => {
                        let r = top_k_largest_on_device(device, data, k as usize, &attempt_cfg);
                        (r.map(|res| res.threshold), "topk")
                    }
                };
                let fault = device.take_fault();
                if let (Ok(threshold), None) = (threshold, fault) {
                    shared.tenant_count(&job.tenant, |c| c.exact += 1);
                    return (QueryStatus::TopK { threshold, k }, Some(label), healthy);
                }
                healthy = false;
            }
            let threshold =
                reference_select(data, data.len() - k as usize).expect("k validated at admission");
            shared.tenant_count(&job.tenant, |c| c.exact += 1);
            (QueryStatus::TopK { threshold, k }, Some("cpu-sort"), false)
        }
        QueryKind::Quantiles { q } => {
            let ranks = crate::multiselect::quantile_ranks(data.len(), q as usize)
                .expect("q bounds validated at admission");
            let mut healthy = true;
            for attempt in 0..=cfg.resilience.retry.max_retries {
                device.reset();
                let attempt_cfg = select_cfg
                    .clone()
                    .with_seed(select_cfg.seed.wrapping_add(u64::from(attempt)));
                let result = multi_select_with_workspace(device, data, &ranks, &attempt_cfg, ws);
                let fault = device.take_fault();
                if let (Ok(r), None) = (result, fault) {
                    shared.tenant_count(&job.tenant, |c| c.exact += 1);
                    return (
                        QueryStatus::Quantiles { values: r.values },
                        Some("multiselect"),
                        healthy,
                    );
                }
                healthy = false;
            }
            let mut sorted = data.to_vec();
            sorted.sort_by(|a, b| SelectElement::total_cmp(*a, *b));
            let values = ranks.iter().map(|&r| sorted[r]).collect();
            shared.tenant_count(&job.tenant, |c| c.exact += 1);
            (QueryStatus::Quantiles { values }, Some("cpu-sort"), false)
        }
        QueryKind::ApproxTopK { k, recall_bits } => {
            let target = f64::from(f32::from_bits(recall_bits));
            let (acfg, _) = plan_for_recall(data.len(), k as usize, target);
            // Honor the admission-time cost model: when the exact fused
            // pass is at least as fast as the bucketed two-phase pass,
            // approximation buys nothing — serve exactly (recall 1.0).
            let serve_exact = job.plan.is_some_and(|p| p != PlannedBackend::ApproxTopK);
            let mut healthy = true;
            for attempt in 0..=cfg.resilience.retry.max_retries {
                device.reset();
                let attempt_cfg = select_cfg
                    .clone()
                    .with_seed(select_cfg.seed.wrapping_add(u64::from(attempt)));
                let (outcome, recall, label) = if serve_exact {
                    let r = top_k_largest_on_device(device, data, k as usize, &attempt_cfg);
                    (r.map(|res| res.threshold), 1.0f32, "topk")
                } else {
                    let r = approx_top_k_with_workspace(
                        device,
                        data,
                        k as usize,
                        &acfg,
                        &attempt_cfg,
                        ws,
                    );
                    match r {
                        Ok(res) => (Ok(res.threshold), res.expected_recall as f32, "approx-topk"),
                        Err(e) => (Err(e), 0.0, "approx-topk"),
                    }
                };
                let fault = device.take_fault();
                if let (Ok(threshold), None) = (outcome, fault) {
                    shared.tenant_count(&job.tenant, |c| {
                        if serve_exact {
                            c.exact += 1;
                        } else {
                            c.approximate += 1;
                        }
                    });
                    return (
                        QueryStatus::ApproxTopK {
                            threshold,
                            k,
                            expected_recall: recall,
                        },
                        Some(label),
                        healthy,
                    );
                }
                healthy = false;
            }
            // Can't-fail last resort: the exact threshold off a host
            // sort is a recall-1.0 answer to an approximate question.
            let threshold =
                reference_select(data, data.len() - k as usize).expect("k validated at admission");
            shared.tenant_count(&job.tenant, |c| c.exact += 1);
            (
                QueryStatus::ApproxTopK {
                    threshold,
                    k,
                    expected_recall: 1.0,
                },
                Some("cpu-sort"),
                false,
            )
        }
        QueryKind::QuantileStream {
            window_len,
            slide,
            chunk_len,
        } => {
            let spool = cfg
                .spool_dir
                .as_ref()
                .expect("quantile-stream admission requires a spool dir");
            // Stable checkpoint name per (tenant, dataset, window): a
            // re-submission after a hard drain resumes the same file.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            };
            for b in job.tenant.bytes() {
                mix(u64::from(b));
            }
            mix(job.spec.dist as u64);
            mix(job.spec.n);
            mix(job.spec.seed);
            mix(window_len);
            mix(slide);
            let ckpt = spool.join(format!("qstream-{h:016x}.ckpt"));
            let qcfg = QuantileStreamConfig {
                probs: DEFAULT_PROBS.to_vec(),
                window: WindowSpec {
                    len: window_len as usize,
                    slide: slide as usize,
                },
                select: select_cfg.clone(),
            };
            let source = DrainAwareSource {
                inner: SliceChunks::new(data, chunk_len as usize),
                shared,
            };
            let result = run_quantile_stream(device, &source, &qcfg, Some(&ckpt), true);
            let fault = device.take_fault();
            match (result, fault) {
                (Ok(run), None) => {
                    // The finite pass completed; the checkpoint has
                    // served its purpose (mirrors streaming_select).
                    let _ = std::fs::remove_file(&ckpt);
                    let values = run
                        .engine
                        .last()
                        .map(|w| w.values.clone())
                        .unwrap_or_default();
                    shared.tenant_count(&job.tenant, |c| c.exact += 1);
                    (
                        QueryStatus::QuantileStream {
                            windows: run.engine.windows_emitted(),
                            values,
                        },
                        Some("quantile-stream"),
                        true,
                    )
                }
                (Err(SelectError::ChunkLoad(e)), _) if shared.mode() == MODE_HARD_DRAIN => {
                    shared.log_event(format!(
                        "drain: quantile stream {} checkpointed at chunk {}",
                        job.id, e.chunk
                    ));
                    shared.tenant_count(&job.tenant, |c| c.failed += 1);
                    (
                        QueryStatus::Checkpointed {
                            resume_token: ckpt.display().to_string(),
                        },
                        Some("quantile-stream"),
                        true, // a drain is not a device-health signal
                    )
                }
                (Err(e), fault) => {
                    shared.tenant_count(&job.tenant, |c| c.failed += 1);
                    (
                        QueryStatus::Failed {
                            message: e.to_string(),
                        },
                        None,
                        fault.is_none() && !e.is_transient(),
                    )
                }
                (Ok(_), Some(_)) => {
                    shared.tenant_count(&job.tenant, |c| c.failed += 1);
                    (
                        QueryStatus::Failed {
                            message: "device fault invalidated quantile stream".to_string(),
                        },
                        None,
                        false,
                    )
                }
            }
        }
        QueryKind::Stream { rank, chunk_len } => {
            let spool = cfg
                .spool_dir
                .as_ref()
                .expect("streaming admission requires a spool dir");
            // Stable checkpoint name per (tenant, dataset, rank): a
            // re-submission after a hard drain resumes the same file.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            };
            for b in job.tenant.bytes() {
                mix(u64::from(b));
            }
            mix(job.spec.dist as u64);
            mix(job.spec.n);
            mix(job.spec.seed);
            mix(rank);
            let ckpt = spool.join(format!("stream-{h:016x}.ckpt"));
            let source = DrainAwareSource {
                inner: SliceChunks::new(data, chunk_len as usize),
                shared,
            };
            let result = streaming_select_with_checkpoint(
                device,
                &source,
                rank as usize,
                select_cfg,
                &ckpt,
                true, // resume a matching checkpoint if one exists
            );
            let fault = device.take_fault();
            match (result, fault) {
                (Ok(res), None) => {
                    shared.tenant_count(&job.tenant, |c| c.exact += 1);
                    (
                        QueryStatus::Exact { value: res.value },
                        Some("streaming"),
                        true,
                    )
                }
                (Err(SelectError::ChunkLoad(e)), _) if shared.mode() == MODE_HARD_DRAIN => {
                    shared.log_event(format!(
                        "drain: streaming query {} checkpointed at chunk {}",
                        job.id, e.chunk
                    ));
                    shared.tenant_count(&job.tenant, |c| c.failed += 1);
                    (
                        QueryStatus::Checkpointed {
                            resume_token: ckpt.display().to_string(),
                        },
                        Some("streaming"),
                        true, // a drain is not a device-health signal
                    )
                }
                (Err(e), fault) => {
                    shared.tenant_count(&job.tenant, |c| c.failed += 1);
                    (
                        QueryStatus::Failed {
                            message: e.to_string(),
                        },
                        None,
                        fault.is_none() && !e.is_transient(),
                    )
                }
                (Ok(_), Some(_)) => {
                    // A latched fault invalidates the run even though it
                    // "succeeded".
                    shared.tenant_count(&job.tenant, |c| c.failed += 1);
                    (
                        QueryStatus::Failed {
                            message: "device fault invalidated streaming run".to_string(),
                        },
                        None,
                        false,
                    )
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> DatasetSpec {
        DatasetSpec::uniform(1_024, seed)
    }

    #[test]
    fn dataset_cache_evicts_lru_past_byte_cap() {
        // Each spec is 1024 * 4 = 4 KiB; cap at 2 entries' worth.
        let cap = 2 * 4 * 1024;
        let mut cache = DatasetCache::default();
        let a = cache.get_or_instantiate(&spec(1), cap);
        cache.get_or_instantiate(&spec(2), cap);
        assert_eq!(cache.entries.len(), 2);
        assert!(cache.bytes <= cap);
        // Touch spec 1 so spec 2 is the LRU victim.
        cache.get_or_instantiate(&spec(1), cap);
        cache.get_or_instantiate(&spec(3), cap);
        assert_eq!(cache.entries.len(), 2);
        assert!(cache.bytes <= cap);
        assert!(
            cache.entries.contains_key(&spec(1)),
            "recently used survives"
        );
        assert!(!cache.entries.contains_key(&spec(2)), "LRU entry evicted");
        // A distinct-seed scan stays bounded — the unbounded-growth DoS.
        for s in 100..200 {
            cache.get_or_instantiate(&spec(s), cap);
            assert!(cache.bytes <= cap);
        }
        // Evicted entries stay valid for holders of the Arc.
        assert_eq!(a.len(), 1_024);
    }

    #[test]
    fn dataset_cache_evicts_even_a_lone_over_cap_entry() {
        let mut cache = DatasetCache::default();
        let data = cache.get_or_instantiate(&spec(1), 16);
        assert_eq!(data.len(), 1_024, "over-cap dataset still served");
        assert!(cache.entries.is_empty(), "but not kept warm");
        assert_eq!(cache.bytes, 0);
    }

    #[test]
    fn drop_preserves_hard_drain_mode() {
        // Drop must not downgrade MODE_HARD_DRAIN to MODE_DRAINING:
        // DrainAwareSource keys off hard-drain to checkpoint in-flight
        // streams at the next chunk boundary.
        let server = SelectServer::start(ServerConfig::default().with_workers(1));
        server.begin_drain(true);
        let shared = Arc::clone(&server.shared);
        drop(server);
        assert_eq!(shared.mode(), MODE_HARD_DRAIN);
    }
}
