//! Per-tenant admission quotas: deterministic token buckets.
//!
//! Each tenant owns one bucket. Admitting a query costs one token;
//! tokens refill continuously at `refill_per_sec` up to `burst`. The
//! bucket is driven by an explicit nanosecond clock supplied by the
//! caller — the server feeds it wall time, tests feed it a manual
//! clock, so every quota decision is a pure function of the request
//! arrival times.

/// Token-bucket parameters applied to every tenant (the server clones
/// one config per tenant on first contact).
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity: how many queries a tenant may burst at once.
    pub burst: f64,
    /// Steady-state admission rate, tokens (queries) per second. Zero
    /// means no refill — the tenant gets exactly `burst` admissions
    /// ever, which is what the deterministic quota tests use.
    pub refill_per_sec: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        Self {
            burst: 32.0,
            refill_per_sec: 256.0,
        }
    }
}

impl QuotaConfig {
    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst;
        self
    }

    pub fn with_refill_per_sec(mut self, rate: f64) -> Self {
        self.refill_per_sec = rate;
        self
    }
}

/// One tenant's bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    cfg: QuotaConfig,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A full bucket, with its clock anchored at `now_ns`.
    pub fn new(cfg: QuotaConfig, now_ns: u64) -> Self {
        Self {
            tokens: cfg.burst,
            cfg,
            last_ns: now_ns,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let dt_s = (now_ns - self.last_ns) as f64 / 1e9;
            self.tokens = (self.tokens + dt_s * self.cfg.refill_per_sec).min(self.cfg.burst);
        }
        self.last_ns = self.last_ns.max(now_ns);
    }

    /// Take one token if available. `now_ns` must be monotone per
    /// bucket (the server uses a single start-anchored clock).
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Return one token: the query it paid for was never admitted
    /// (e.g. a queue-full rejection after the quota was charged).
    /// Capped at `burst` like any refill.
    pub fn refund(&mut self) {
        self.tokens = (self.tokens + 1.0).min(self.cfg.burst);
    }

    /// Tokens currently available (after refilling to `now_ns`).
    pub fn available(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starve_without_refill() {
        let cfg = QuotaConfig::default()
            .with_burst(3.0)
            .with_refill_per_sec(0.0);
        let mut b = TokenBucket::new(cfg, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0), "burst exhausted");
        assert!(!b.try_take(u64::MAX), "no refill ever");
    }

    #[test]
    fn refill_restores_tokens_up_to_burst() {
        let cfg = QuotaConfig::default()
            .with_burst(2.0)
            .with_refill_per_sec(10.0);
        let mut b = TokenBucket::new(cfg, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        // 100 ms at 10 tokens/s = 1 token
        assert!(b.try_take(100_000_000));
        assert!(!b.try_take(100_000_000));
        // a long idle period caps at burst, not unbounded credit
        assert!((b.available(10_000_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn refund_restores_a_token_capped_at_burst() {
        let cfg = QuotaConfig::default()
            .with_burst(2.0)
            .with_refill_per_sec(0.0);
        let mut b = TokenBucket::new(cfg, 0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        b.refund();
        assert!(b.try_take(0), "refunded token is spendable again");
        // Refunding a full bucket must not mint credit beyond burst.
        b.refund();
        b.refund();
        b.refund();
        assert!((b.available(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clock_going_backwards_is_harmless() {
        let cfg = QuotaConfig::default()
            .with_burst(1.0)
            .with_refill_per_sec(1.0);
        let mut b = TokenBucket::new(cfg, 1_000_000_000);
        assert!(b.try_take(1_000_000_000));
        // an earlier timestamp must not mint tokens or panic
        assert!(!b.try_take(0));
    }
}
