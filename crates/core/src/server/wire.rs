//! `selectd` wire protocol: length-prefixed binary frames.
//!
//! Deliberately tiny — no serde, no external deps, no self-describing
//! schema. Every frame is a `u32` big-endian payload length followed by
//! the payload; every payload starts with a protocol version byte. The
//! codec is pure (`encode_*`/`decode_*` on byte slices) so it can be
//! unit-tested without sockets, and [`read_frame`]/[`write_frame`] wrap
//! it for any `Read`/`Write` transport.
//!
//! Queries name their dataset by [`DatasetSpec`] — clients never ship
//! element data, which keeps frames O(bytes) while the server selects
//! over O(gigabytes).

use std::io::{self, Read, Write};

use super::dataset::{DatasetSpec, DistCode};
use super::{QueryKind, QueryRequest, QueryStatus};

/// Protocol version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a frame payload; anything larger is a protocol error
/// (the protocol never legitimately ships datasets).
pub const MAX_FRAME_LEN: u32 = 1 << 20;

// Request opcodes.
const OP_QUERY: u8 = 1;
const OP_STATS: u8 = 2;
const OP_DRAIN: u8 = 3;
const OP_PING: u8 = 4;

// Query kind codes.
const KIND_EXACT: u8 = 0;
const KIND_APPROX: u8 = 1;
const KIND_TOPK: u8 = 2;
const KIND_QUANTILES: u8 = 3;
const KIND_STREAM: u8 = 4;
const KIND_APPROX_TOPK: u8 = 5;
const KIND_QUANTILE_STREAM: u8 = 6;

// Response status codes.
const ST_EXACT: u8 = 0;
const ST_APPROX: u8 = 1;
const ST_REJECTED: u8 = 2;
const ST_FAILED: u8 = 3;
const ST_TOPK: u8 = 4;
const ST_QUANTILES: u8 = 5;
const ST_CHECKPOINTED: u8 = 6;
const ST_PONG: u8 = 7;
const ST_STATS: u8 = 8;
const ST_DRAINED: u8 = 9;
const ST_APPROX_TOPK: u8 = 10;
const ST_QUANTILE_STREAM: u8 = 11;

/// A decoded client→server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Query(QueryRequest),
    /// Live snapshot request.
    Stats,
    /// Graceful drain; the server answers with the final snapshot and
    /// closes.
    Drain,
    Ping,
}

/// A decoded server→client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Outcome of an admitted query, plus whether it was served from a
    /// merged batch.
    Done {
        status: QueryStatus,
        batched: bool,
    },
    /// The query was refused at admission (`SelectError::Overloaded` or
    /// a validation error); `reason` is the rendered error.
    Rejected {
        reason: String,
    },
    /// Snapshot JSON for a `Stats` request.
    Stats {
        json: String,
    },
    /// Final snapshot JSON for a `Drain` request.
    Drained {
        json: String,
    },
    Pong,
}

/// Malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

fn err<T>(message: impl Into<String>) -> Result<T, WireError> {
    Err(WireError {
        message: message.into(),
    })
}

// ---------------------------------------------------------------------
// Primitive cursors
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError {
            message: "truncated frame (u8)".to_string(),
        })?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let hi = u64::from(self.u32()?);
        let lo = u64::from(self.u32()?);
        Ok((hi << 32) | lo)
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str16(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        self.bytes(len).and_then(|b| match std::str::from_utf8(b) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("invalid utf-8 in string"),
        })
    }

    fn str32(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        self.bytes(len).and_then(|b| match std::str::from_utf8(b) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => err("invalid utf-8 in string"),
        })
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.pos + len > self.buf.len() {
            return err("truncated frame (bytes)");
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            err(format!(
                "trailing garbage: {} bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    if s.len() > u16::MAX as usize {
        return err("string too long for u16 length prefix");
    }
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// Encode a request payload (no length prefix).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    let mut out = vec![WIRE_VERSION];
    match req {
        Request::Query(q) => {
            out.push(OP_QUERY);
            let (kind, a, b) = match q.kind {
                QueryKind::Exact { rank } => (KIND_EXACT, rank, 0),
                QueryKind::Approx { rank } => (KIND_APPROX, rank, 0),
                QueryKind::TopK { k } => (KIND_TOPK, k, 0),
                QueryKind::Quantiles { q } => (KIND_QUANTILES, q, 0),
                QueryKind::Stream { rank, chunk_len } => (KIND_STREAM, rank, chunk_len),
                QueryKind::ApproxTopK { k, recall_bits } => {
                    (KIND_APPROX_TOPK, k, u64::from(recall_bits))
                }
                QueryKind::QuantileStream {
                    window_len,
                    slide,
                    chunk_len,
                } => {
                    // The window rides one u64 slot as two u32 halves;
                    // admission bounds both to u32, the codec enforces
                    // it for hand-built requests too.
                    if window_len > u64::from(u32::MAX) || slide > u64::from(u32::MAX) {
                        return err("quantile-stream window exceeds u32 wire slot");
                    }
                    (KIND_QUANTILE_STREAM, (window_len << 32) | slide, chunk_len)
                }
            };
            out.push(kind);
            put_str16(&mut out, &q.tenant)?;
            out.push(q.dataset.dist as u8);
            put_u64(&mut out, q.dataset.n);
            put_u64(&mut out, q.dataset.seed);
            put_u64(&mut out, a);
            put_u64(&mut out, b);
            put_u32(&mut out, q.deadline_ms.unwrap_or(0));
            put_u64(&mut out, q.seed);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Drain => out.push(OP_DRAIN),
        Request::Ping => out.push(OP_PING),
    }
    Ok(out)
}

/// Decode a request payload (no length prefix).
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return err(format!("unsupported protocol version {version}"));
    }
    let op = r.u8()?;
    let req = match op {
        OP_QUERY => {
            let kind_code = r.u8()?;
            let tenant = r.str16()?;
            let dist = r.u8()?;
            let dist = DistCode::from_u8(dist).ok_or(WireError {
                message: format!("unknown distribution code {dist}"),
            })?;
            let n = r.u64()?;
            let seed = r.u64()?;
            let a = r.u64()?;
            let b = r.u64()?;
            let deadline = r.u32()?;
            let query_seed = r.u64()?;
            let kind = match kind_code {
                KIND_EXACT => QueryKind::Exact { rank: a },
                KIND_APPROX => QueryKind::Approx { rank: a },
                KIND_TOPK => QueryKind::TopK { k: a },
                KIND_QUANTILES => QueryKind::Quantiles { q: a },
                KIND_STREAM => QueryKind::Stream {
                    rank: a,
                    chunk_len: b,
                },
                KIND_APPROX_TOPK => {
                    if b > u64::from(u32::MAX) {
                        return err("recall bits exceed u32");
                    }
                    QueryKind::ApproxTopK {
                        k: a,
                        recall_bits: b as u32,
                    }
                }
                KIND_QUANTILE_STREAM => QueryKind::QuantileStream {
                    window_len: a >> 32,
                    slide: a & 0xFFFF_FFFF,
                    chunk_len: b,
                },
                other => return err(format!("unknown query kind {other}")),
            };
            Request::Query(QueryRequest {
                tenant,
                kind,
                dataset: DatasetSpec { dist, n, seed },
                deadline_ms: if deadline == 0 { None } else { Some(deadline) },
                seed: query_seed,
            })
        }
        OP_STATS => Request::Stats,
        OP_DRAIN => Request::Drain,
        OP_PING => Request::Ping,
        other => return err(format!("unknown opcode {other}")),
    };
    r.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Encode a response payload (no length prefix).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    let mut out = vec![WIRE_VERSION];
    match resp {
        Response::Done { status, batched } => {
            match status {
                QueryStatus::Exact { value } => {
                    out.push(ST_EXACT);
                    put_u32(&mut out, value.to_bits());
                }
                QueryStatus::Approximate {
                    value,
                    achieved_rank,
                    rank_error,
                    deadline_degraded,
                } => {
                    out.push(ST_APPROX);
                    put_u32(&mut out, value.to_bits());
                    put_u64(&mut out, *achieved_rank);
                    put_u64(&mut out, *rank_error);
                    out.push(u8::from(*deadline_degraded));
                }
                QueryStatus::TopK { threshold, k } => {
                    out.push(ST_TOPK);
                    put_u32(&mut out, threshold.to_bits());
                    put_u64(&mut out, *k);
                }
                QueryStatus::Quantiles { values } => {
                    out.push(ST_QUANTILES);
                    put_u32(&mut out, values.len() as u32);
                    for v in values {
                        put_u32(&mut out, v.to_bits());
                    }
                }
                QueryStatus::ApproxTopK {
                    threshold,
                    k,
                    expected_recall,
                } => {
                    out.push(ST_APPROX_TOPK);
                    put_u32(&mut out, threshold.to_bits());
                    put_u64(&mut out, *k);
                    put_u32(&mut out, expected_recall.to_bits());
                }
                QueryStatus::QuantileStream { windows, values } => {
                    out.push(ST_QUANTILE_STREAM);
                    put_u64(&mut out, *windows);
                    put_u32(&mut out, values.len() as u32);
                    for v in values {
                        put_u32(&mut out, v.to_bits());
                    }
                }
                QueryStatus::Checkpointed { resume_token } => {
                    out.push(ST_CHECKPOINTED);
                    put_str16(&mut out, resume_token)?;
                }
                QueryStatus::Failed { message } => {
                    out.push(ST_FAILED);
                    put_str16(&mut out, message)?;
                }
            }
            out.push(u8::from(*batched));
        }
        Response::Rejected { reason } => {
            out.push(ST_REJECTED);
            put_str16(&mut out, reason)?;
        }
        Response::Stats { json } => {
            out.push(ST_STATS);
            put_str32(&mut out, json);
        }
        Response::Drained { json } => {
            out.push(ST_DRAINED);
            put_str32(&mut out, json);
        }
        Response::Pong => out.push(ST_PONG),
    }
    Ok(out)
}

/// Decode a response payload (no length prefix).
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(buf);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return err(format!("unsupported protocol version {version}"));
    }
    let st = r.u8()?;
    let resp = match st {
        ST_EXACT => {
            let value = r.f32()?;
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::Exact { value },
                batched,
            }
        }
        ST_APPROX => {
            let value = r.f32()?;
            let achieved_rank = r.u64()?;
            let rank_error = r.u64()?;
            let deadline_degraded = r.u8()? != 0;
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::Approximate {
                    value,
                    achieved_rank,
                    rank_error,
                    deadline_degraded,
                },
                batched,
            }
        }
        ST_TOPK => {
            let threshold = r.f32()?;
            let k = r.u64()?;
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::TopK { threshold, k },
                batched,
            }
        }
        ST_QUANTILES => {
            let count = r.u32()? as usize;
            if count > (MAX_FRAME_LEN as usize) / 4 {
                return err("quantile count exceeds frame bound");
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(r.f32()?);
            }
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::Quantiles { values },
                batched,
            }
        }
        ST_APPROX_TOPK => {
            let threshold = r.f32()?;
            let k = r.u64()?;
            let expected_recall = r.f32()?;
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::ApproxTopK {
                    threshold,
                    k,
                    expected_recall,
                },
                batched,
            }
        }
        ST_QUANTILE_STREAM => {
            let windows = r.u64()?;
            let count = r.u32()? as usize;
            if count > (MAX_FRAME_LEN as usize) / 4 {
                return err("quantile count exceeds frame bound");
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(r.f32()?);
            }
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::QuantileStream { windows, values },
                batched,
            }
        }
        ST_CHECKPOINTED => {
            let resume_token = r.str16()?;
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::Checkpointed { resume_token },
                batched,
            }
        }
        ST_FAILED => {
            let message = r.str16()?;
            let batched = r.u8()? != 0;
            Response::Done {
                status: QueryStatus::Failed { message },
                batched,
            }
        }
        ST_REJECTED => Response::Rejected { reason: r.str16()? },
        ST_STATS => Response::Stats { json: r.str32()? },
        ST_DRAINED => Response::Drained { json: r.str32()? },
        ST_PONG => Response::Pong,
        other => return err(format!("unknown status code {other}")),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Framing over Read/Write
// ---------------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `None` on a clean EOF at a
/// frame boundary (peer closed the connection).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = encode_request(&req).unwrap();
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = encode_response(&resp).unwrap();
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Drain);
        for kind in [
            QueryKind::Exact { rank: 12_345 },
            QueryKind::Approx { rank: 1 },
            QueryKind::TopK { k: 100 },
            QueryKind::Quantiles { q: 10 },
            QueryKind::Stream {
                rank: 7,
                chunk_len: 4096,
            },
            QueryKind::ApproxTopK {
                k: 65_536,
                recall_bits: 0.99f32.to_bits(),
            },
            QueryKind::QuantileStream {
                window_len: 4096,
                slide: 1024,
                chunk_len: 8192,
            },
            // window/slide at the u32 packing boundary
            QueryKind::QuantileStream {
                window_len: u64::from(u32::MAX),
                slide: u64::from(u32::MAX),
                chunk_len: 1,
            },
        ] {
            roundtrip_request(Request::Query(QueryRequest {
                tenant: "tenant-α".to_string(),
                kind,
                dataset: DatasetSpec {
                    dist: DistCode::Normal,
                    n: 1 << 20,
                    seed: 0xDEAD_BEEF,
                },
                deadline_ms: Some(250),
                seed: 42,
            }));
        }
        // deadline 0 on the wire means "no deadline"
        roundtrip_request(Request::Query(QueryRequest {
            tenant: String::new(),
            kind: QueryKind::Exact { rank: 0 },
            dataset: DatasetSpec::uniform(8, 1),
            deadline_ms: None,
            seed: 0,
        }));
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Rejected {
            reason: "server overloaded (quota): tenant `t` rejected".to_string(),
        });
        roundtrip_response(Response::Stats {
            json: "{\"x\": 1}".to_string(),
        });
        roundtrip_response(Response::Drained {
            json: "{}".to_string(),
        });
        for status in [
            QueryStatus::Exact { value: 3.25 },
            QueryStatus::Approximate {
                value: -0.5,
                achieved_rank: 99,
                rank_error: 3,
                deadline_degraded: true,
            },
            QueryStatus::TopK {
                threshold: 1.5,
                k: 32,
            },
            QueryStatus::Quantiles {
                values: vec![0.25, 0.5, 0.75],
            },
            QueryStatus::ApproxTopK {
                threshold: 0.875,
                k: 600_000,
                expected_recall: 0.9995,
            },
            QueryStatus::QuantileStream {
                windows: 12,
                values: vec![0.5, 0.9, 0.99, 0.999],
            },
            QueryStatus::Checkpointed {
                resume_token: "/tmp/spool/stream-abc.ckpt".to_string(),
            },
            QueryStatus::Failed {
                message: "query panicked in driver (isolated)".to_string(),
            },
        ] {
            roundtrip_response(Response::Done {
                status,
                batched: false,
            });
        }
        roundtrip_response(Response::Done {
            status: QueryStatus::Exact { value: f32::MIN },
            batched: true,
        });
    }

    #[test]
    fn float_bits_survive_exactly() {
        // The protocol must not round through decimal: check bit
        // patterns that decimal formatting would mangle.
        for bits in [0x0000_0001u32, 0x7F7F_FFFF, 0x8000_0000, 0x3EAA_AAAB] {
            let resp = Response::Done {
                status: QueryStatus::Exact {
                    value: f32::from_bits(bits),
                },
                batched: false,
            };
            let decoded = decode_response(&encode_response(&resp).unwrap()).unwrap();
            match decoded {
                Response::Done {
                    status: QueryStatus::Exact { value },
                    ..
                } => assert_eq!(value.to_bits(), bits),
                other => panic!("wrong decode: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // bad version
        assert!(decode_request(&[9, OP_PING]).is_err());
        // unknown opcode
        assert!(decode_request(&[WIRE_VERSION, 200]).is_err());
        // truncated query
        let mut q = encode_request(&Request::Query(QueryRequest {
            tenant: "t".to_string(),
            kind: QueryKind::Exact { rank: 5 },
            dataset: DatasetSpec::uniform(64, 2),
            deadline_ms: None,
            seed: 0,
        }))
        .unwrap();
        q.truncate(q.len() - 3);
        assert!(decode_request(&q).is_err());
        // trailing garbage
        let mut p = encode_request(&Request::Ping).unwrap();
        p.push(0);
        assert!(decode_request(&p).is_err());
        // unknown distribution code
        let mut bad = encode_request(&Request::Query(QueryRequest {
            tenant: "t".to_string(),
            kind: QueryKind::Exact { rank: 5 },
            dataset: DatasetSpec::uniform(64, 2),
            deadline_ms: None,
            seed: 0,
        }))
        .unwrap();
        // dist byte sits right after the 2-byte tenant prefix + 1 byte
        // tenant + version/op/kind bytes
        let dist_pos = 1 + 1 + 1 + 2 + 1;
        bad[dist_pos] = 99;
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn oversize_quantile_window_is_refused_at_encode() {
        let req = Request::Query(QueryRequest {
            tenant: "t".to_string(),
            kind: QueryKind::QuantileStream {
                window_len: u64::from(u32::MAX) + 1,
                slide: 1,
                chunk_len: 1,
            },
            dataset: DatasetSpec::uniform(64, 2),
            deadline_ms: None,
            seed: 0,
        });
        assert!(encode_request(&req).is_err());
    }

    #[test]
    fn frame_io_roundtrips_and_rejects_oversize() {
        let payload = encode_request(&Request::Ping).unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(got, payload);
        // clean EOF at a frame boundary
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // an adversarial length prefix is refused before allocation
        let mut huge = std::io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(read_frame(&mut huge).is_err());
    }
}
