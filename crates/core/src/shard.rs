//! Fault-tolerant sharded selection across multiple simulated devices.
//!
//! The paper's sample-select recursion generalizes to scale-out exactly
//! the way GPU Sample Sort distributes across memory spaces: every
//! shard holds a contiguous partition of the data, the coordinator
//! draws **one global splitter sample** (so the splitter tree is
//! bit-identical to a single-device run), each shard counts its local
//! elements into the shared bucket histogram, the per-shard histograms
//! are all-reduced, and the recursion descends into the winning bucket
//! on every shard at once. Because the `filter` kernel is stable and
//! partitions are concatenated in shard order, the surviving element
//! sequence after every level is exactly the single-device sequence —
//! the whole descent, and therefore the result, is bit-identical to
//! K=1 for any shard count on a clean run.
//!
//! Robustness is the headline:
//!
//! * **Per-shard fault plans** — each shard's device can independently
//!   fail launches, corrupt memory, or spike latency
//!   ([`ShardFaults`]).
//! * **Straggler hedging** — each count launch races a cost-model
//!   deadline; a shard that overshoots it is re-executed on a fresh
//!   spare device and the slow device is abandoned (the classic
//!   tail-at-scale hedge).
//! * **Failed-shard recovery** — a shard that exhausts its retry
//!   budget is replayed from the original input partition through the
//!   recorded per-level `(splitters, bucket)` history onto a spare
//!   device; a FNV-1a fingerprint recorded after every level (the same
//!   machinery the streaming checkpoint uses) proves the replay is
//!   bit-identical before the query continues.
//! * **Quorum degradation** — once the recovery budget is exhausted,
//!   the dead shard's candidates are dropped and the query finishes on
//!   the survivors, returning a *tagged* [`Outcome::Approximate`]
//!   (with the lost-element count as the rank-error bound) instead of
//!   an error or a silently wrong exact answer.
//!
//! Simulated time accounts for coordination: sample gathers, splitter
//! broadcasts, histogram all-reduces, and re-partition traffic are all
//! charged through the architecture's [`gpu_sim::LinkModel`].

use crate::count::{count_kernel_scoped, CountResult};
use crate::element::SelectElement;
use crate::filter::filter_kernel_scoped;
use crate::instrument::ResilienceEvents;
use crate::obs::{self, Counter, Histogram, SpanKind};
use crate::params::SampleSelectConfig;
use crate::recursion::{base_case_select, recycle_count, recycle_level, validate_input};
use crate::reduce::reduce_kernel;
use crate::resilient::{jittered_backoff, Outcome, RetryPolicy};
use crate::rng::SplitMix64;
use crate::searchtree::SearchTree;
use crate::streaming::fnv1a64;
use crate::verify::{check_splitters, corrupt_elements, rank_bounds};
use crate::workspace::KernelScratch;
use crate::{bitonic, SelectError};
use gpu_sim::{
    occupancy, Device, FaultPlan, GpuArchitecture, KernelCost, LaunchConfig, LaunchOrigin, SimTime,
};
use hpc_par::ThreadPool;
use std::ops::Range;

/// Recursion-depth guard (matches the single-device driver's).
const MAX_LEVELS: u32 = 64;

/// How the input is partitioned across shards: `K + 1` monotone
/// boundaries with `boundaries[0] == 0` and `boundaries[K] == n`.
/// Shard `i` owns `boundaries[i]..boundaries[i+1]`.
///
/// The topology participates in the streaming checkpoint fingerprint
/// (a resume under a different shard layout would silently misread
/// offsets), which is why it hashes itself with the same FNV-1a the
/// checkpoint codec uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTopology {
    boundaries: Vec<u64>,
}

impl ShardTopology {
    /// Evenly split `n` elements across `shards` contiguous partitions
    /// (the first `n % shards` partitions get one extra element).
    pub fn even(n: usize, shards: usize) -> Self {
        assert!(shards >= 1, "topology needs at least one shard");
        let mut boundaries = Vec::with_capacity(shards + 1);
        for i in 0..=shards {
            boundaries.push((i as u64 * n as u64) / shards as u64);
        }
        Self { boundaries }
    }

    /// The trivial single-shard topology (what every non-sharded run
    /// implicitly uses).
    pub fn single(n: usize) -> Self {
        Self::even(n, 1)
    }

    /// An explicit (possibly uneven) partition plan. `boundaries` must
    /// start at 0, end at `n`, and be monotone non-decreasing, with at
    /// least one shard.
    pub fn from_boundaries(boundaries: Vec<u64>) -> Self {
        assert!(boundaries.len() >= 2, "topology needs at least one shard");
        assert_eq!(boundaries[0], 0, "first boundary must be 0");
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be monotone"
        );
        Self { boundaries }
    }

    pub fn shards(&self) -> usize {
        self.boundaries.len() - 1
    }

    pub fn total(&self) -> usize {
        *self.boundaries.last().unwrap() as usize
    }

    /// The half-open input range owned by shard `i`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.boundaries[i] as usize..self.boundaries[i + 1] as usize
    }

    /// FNV-1a hash over the shard count and every partition boundary;
    /// folded into checkpoint fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(8 * (self.boundaries.len() + 1));
        bytes.extend_from_slice(&(self.shards() as u64).to_le_bytes());
        for b in &self.boundaries {
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        fnv1a64(&bytes)
    }
}

/// "Kill shard `shard` at the start of recursion level `level`" — the
/// deterministic shard-death injection used by tests and
/// `selectcli --kill-shard i@step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    pub shard: usize,
    pub level: u32,
}

impl std::str::FromStr for KillSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (shard, level) = s
            .split_once('@')
            .ok_or_else(|| format!("expected SHARD@LEVEL, got {s:?}"))?;
        Ok(KillSpec {
            shard: shard
                .trim()
                .parse()
                .map_err(|e| format!("bad shard index {shard:?}: {e}"))?,
            level: level
                .trim()
                .parse()
                .map_err(|e| format!("bad level {level:?}: {e}"))?,
        })
    }
}

/// Policy knobs of the sharded coordinator.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (devices) the input is partitioned across.
    pub shards: usize,
    /// Hedge stragglers: re-execute a count launch that overshoots the
    /// cost-model deadline on a fresh spare device.
    pub hedge: bool,
    /// A shard is a straggler when its count launch takes more than
    /// `hedge_factor` times the cost-model prediction.
    pub hedge_factor: f64,
    /// How many dead shards may be recovered by partition replay before
    /// the coordinator degrades to a survivor quorum.
    pub max_recoveries: u32,
    /// Per-shard transient-fault retry policy (the jittered backoff
    /// keeps concurrent shards from retrying in lockstep).
    pub retry: RetryPolicy,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            hedge: false,
            hedge_factor: 3.0,
            max_recoveries: 1,
            retry: RetryPolicy::default(),
        }
    }
}

impl ShardConfig {
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = k;
        self
    }

    pub fn with_hedge(mut self, on: bool) -> Self {
        self.hedge = on;
        self
    }

    pub fn with_hedge_factor(mut self, factor: f64) -> Self {
        self.hedge_factor = factor;
        self
    }

    pub fn with_recovery_budget(mut self, recoveries: u32) -> Self {
        self.max_recoveries = recoveries;
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Fault injection for a sharded run: an optional [`FaultPlan`] per
/// shard plus an optional deterministic shard kill.
#[derive(Debug, Clone, Default)]
pub struct ShardFaults {
    plans: Vec<Option<FaultPlan>>,
    /// Kill one shard outright at the start of a recursion level.
    pub kill: Option<KillSpec>,
}

impl ShardFaults {
    /// Arm `plan` on shard `shard`.
    pub fn with_plan(mut self, shard: usize, plan: FaultPlan) -> Self {
        if self.plans.len() <= shard {
            self.plans.resize(shard + 1, None);
        }
        self.plans[shard] = Some(plan);
        self
    }

    /// Kill shard `shard` at the start of level `level`.
    pub fn kill_shard(mut self, shard: usize, level: u32) -> Self {
        self.kill = Some(KillSpec { shard, level });
        self
    }

    fn plan_for(&self, shard: usize) -> Option<FaultPlan> {
        self.plans.get(shard).cloned().flatten()
    }
}

/// Coordinator-side accounting of one sharded query.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shards the input was partitioned across.
    pub shards: usize,
    /// Recursion levels executed.
    pub levels: u32,
    /// Coordinator clock at completion (the critical-path simulated
    /// time: per-level max over shards plus all interconnect traffic).
    pub sim_time: SimTime,
    /// Simulated time spent on inter-device traffic (gathers,
    /// broadcasts, all-reduces, re-partitioning).
    pub link_time: SimTime,
    /// Bytes moved across the interconnect.
    pub link_bytes: u64,
    /// Stragglers hedged onto a spare device.
    pub stragglers_hedged: u32,
    /// Dead shards recovered by partition replay.
    pub shards_recovered: u32,
    /// 1 when the query finished degraded on a survivor quorum.
    pub quorum_degradations: u32,
    /// Candidate elements lost to dropped shards (0 unless degraded).
    pub lost_elements: u64,
    /// Resilience event log across all shards and the coordinator.
    pub events: ResilienceEvents,
}

/// Result of a sharded selection: the tagged outcome plus the
/// coordinator's report.
#[derive(Debug, Clone)]
pub struct ShardedResult<T> {
    pub outcome: Outcome<T>,
    pub report: ShardReport,
}

/// One shard's state: its device, its share of the surviving
/// candidates, and the bookkeeping recovery needs.
struct ShardSlot<'p, T: SelectElement> {
    device: Device<'p>,
    /// This shard's slice of the current candidate set, in input order.
    local: Vec<T>,
    /// The original input partition (for replay after death).
    origin: Range<usize>,
    alive: bool,
    /// FNV-1a over `local` after the last completed level, so a replay
    /// can prove bit-identity before rejoining the query.
    fingerprint: u64,
    scratch: KernelScratch,
}

fn local_fingerprint<T: SelectElement>(local: &[T]) -> u64 {
    let mut bytes = Vec::with_capacity(local.len() * 8);
    for &x in local {
        bytes.extend_from_slice(&x.to_bits_u64().to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Cost-model prediction of one shard's count-kernel time — the
/// straggler deadline is `hedge_factor` times this. Deliberately
/// optimistic (no replay or collision terms): a hedge fires only on a
/// genuinely pathological launch, and a false hedge merely re-executes
/// deterministic work on a spare.
fn predicted_count_time<T: SelectElement>(
    arch: &GpuArchitecture,
    n: usize,
    cfg: &SampleSelectConfig,
) -> SimTime {
    if n == 0 {
        return SimTime::ZERO;
    }
    let launch = cfg.launch_config(n, T::BYTES);
    let occ = occupancy(arch, &launch);
    let height = (cfg.num_buckets.max(2) as f64).log2().ceil() as u64;
    let mut cost = KernelCost::new();
    cost.global_read_bytes = (n * T::BYTES) as u64;
    cost.global_write_bytes = (n * cfg.oracle_bytes()) as u64;
    cost.int_ops = n as u64 * height;
    cost.shared_atomic_warp_ops = n.div_ceil(32) as u64;
    cost.blocks = launch.blocks as u64;
    cost.time_on(arch, occ.effective_sms).total() + SimTime::from_us(arch.host_launch_us)
}

/// Advance every live device that is behind `clock` up to it (devices
/// never rewind; a device ahead of the coordinator stays ahead).
fn sync_devices<T: SelectElement>(shards: &mut [ShardSlot<'_, T>], clock: SimTime) {
    for s in shards.iter_mut().filter(|s| s.alive) {
        if s.device.now() < clock {
            let dt = clock - s.device.now();
            s.device.advance_time(dt);
        }
    }
}

fn max_alive_now<T: SelectElement>(shards: &[ShardSlot<'_, T>]) -> SimTime {
    shards
        .iter()
        .filter(|s| s.alive)
        .map(|s| s.device.now())
        .fold(SimTime::ZERO, SimTime::max)
}

/// Why a shard stopped responding mid-level.
enum ShardDeath {
    RetriesExhausted,
    Killed,
}

/// Sharded selection of the `rank`-th smallest element of `data`
/// across `scfg.shards` simulated devices of architecture `arch`.
///
/// On a clean run the result is bit-identical to
/// [`crate::sampleselect::sample_select_on_device`] with the same
/// `cfg` on one device, for any shard count. Under injected faults the
/// coordinator retries, hedges, and replays as described in the module
/// docs; it returns [`Outcome::Approximate`] only after the recovery
/// budget is exhausted, and never a wrong [`Outcome::Exact`].
pub fn sharded_select<T: SelectElement>(
    arch: &GpuArchitecture,
    pool: &ThreadPool,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    scfg: &ShardConfig,
    faults: &ShardFaults,
) -> Result<ShardedResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    validate_input(data, rank, cfg)?;
    assert!(scfg.shards >= 1, "need at least one shard");

    let n = data.len();
    let k_shards = scfg.shards;
    let topology = ShardTopology::even(n, k_shards);
    let link = arch.link;
    let b = cfg.num_buckets;
    let base_threshold = cfg.base_case_size.max(cfg.sample_size());

    let mut shards: Vec<ShardSlot<'_, T>> = (0..k_shards)
        .map(|i| {
            let mut device = Device::new(arch.clone(), pool);
            if let Some(plan) = faults.plan_for(i) {
                device.set_fault_plan(plan);
            }
            let range = topology.range(i);
            ShardSlot {
                local: data[range.clone()].to_vec(),
                origin: range,
                device,
                alive: true,
                fingerprint: 0,
                scratch: KernelScratch::new(),
            }
        })
        .collect();
    for s in &mut shards {
        s.fingerprint = local_fingerprint(&s.local);
    }

    obs::counter_add(Counter::ShardsLaunched, k_shards as u64);
    let span_base = obs::span_depth();
    if obs::enabled() {
        obs::span_enter(SpanKind::Query, "sharded", 0, 0.0);
    }

    let mut events = ResilienceEvents::default();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut clock = SimTime::ZERO;
    let mut link_time = SimTime::ZERO;
    let mut link_bytes = 0u64;
    let mut stragglers_hedged = 0u32;
    let mut shards_recovered = 0u32;
    let mut quorum_degradations = 0u32;
    let mut lost_elements = 0u64;
    let mut degraded = false;

    let mut k = rank;
    let mut level: u32 = 0;
    let mut levels_run: u32 = 0;
    // Per-level (splitters, bucket) descent history, for replay.
    let mut history: Vec<(Vec<T>, usize)> = Vec::new();
    let mut level_retries: u32 = 0;
    let mut kill_pending = faults.kill;

    // Handles one shard death: replay onto a spare within budget, or
    // drop the shard and degrade to the survivor quorum. Returns Err
    // only when nothing survives or a replay fails verification.
    macro_rules! handle_death {
        ($idx:expr, $why:expr) => {{
            let idx: usize = $idx;
            let why_detail = match $why {
                ShardDeath::RetriesExhausted => "retry budget exhausted",
                ShardDeath::Killed => "killed",
            };
            shards[idx].alive = false;
            events.fault(format!("shard {idx} dead at level {level}: {why_detail}"));
            clock = clock.max(max_alive_now(&shards));
            if shards_recovered < scfg.max_recoveries {
                // Replay the dead shard's original partition through
                // the recorded descent onto a spare device.
                shards_recovered += 1;
                obs::counter_add(Counter::ShardsRecovered, 1);
                let mut device = Device::new(arch.clone(), pool);
                device.advance_time(clock);
                let origin = shards[idx].origin.clone();
                let mut local = data[origin.clone()].to_vec();
                let part_bytes = (local.len() * T::BYTES) as u64;
                let t = link.transfer_time(part_bytes);
                clock += t;
                link_time += t;
                link_bytes += part_bytes;
                for (splitters, bucket) in &history {
                    let tree = SearchTree::build(splitters);
                    let before = local.len();
                    local.retain(|&x| tree.lookup(x) as usize == *bucket);
                    let mut cost = KernelCost::new();
                    cost.global_read_bytes = (before * T::BYTES) as u64;
                    cost.global_write_bytes = (local.len() * T::BYTES) as u64;
                    cost.int_ops = before as u64 * tree.height() as u64;
                    let launch = cfg.launch_config(before.max(1), T::BYTES);
                    cost.blocks = launch.blocks as u64;
                    device.commit("shard_replay_filter", launch, LaunchOrigin::Device, cost);
                }
                let replayed = local_fingerprint(&local);
                if replayed != shards[idx].fingerprint {
                    return Err(SelectError::Corruption {
                        invariant: "shard-replay-fingerprint",
                        detail: format!(
                            "shard {idx} replay fingerprint {replayed:#018x} != recorded {:#018x}",
                            shards[idx].fingerprint
                        ),
                    });
                }
                clock = clock.max(device.now());
                obs::absorb_device(&shards[idx].device);
                shards[idx].device = device;
                shards[idx].local = local;
                shards[idx].alive = true;
                events.resume(format!(
                    "shard {idx} replayed {} levels from fingerprinted history onto a spare",
                    history.len()
                ));
            } else {
                // Quorum degradation: drop the shard's candidates and
                // finish on the survivors with a tagged approximation.
                quorum_degradations += 1;
                obs::counter_add(Counter::QuorumDegradations, 1);
                degraded = true;
                lost_elements += shards[idx].local.len() as u64;
                obs::absorb_device(&shards[idx].device);
                shards[idx].local = Vec::new();
                let survivors = shards.iter().filter(|s| s.alive).count();
                let remaining: usize = shards
                    .iter()
                    .filter(|s| s.alive)
                    .map(|s| s.local.len())
                    .sum();
                if survivors == 0 || remaining == 0 {
                    return Err(SelectError::Corruption {
                        invariant: "shard-quorum",
                        detail: format!(
                            "no surviving candidates after losing shard {idx} at level {level}"
                        ),
                    });
                }
                k = k.min(remaining - 1);
                events.degrade(format!(
                    "recovery budget exhausted; dropping shard {idx} and continuing on \
                     {survivors}/{k_shards} shards ({lost_elements} candidates lost)"
                ));
            }
            sync_devices(&mut shards, clock);
        }};
    }

    let value = 'recursion: loop {
        if levels_run >= MAX_LEVELS {
            return Err(SelectError::RecursionLimit);
        }

        // Deterministic shard kill at the start of its level.
        if let Some(spec) = kill_pending {
            if spec.level <= level && spec.shard < shards.len() && shards[spec.shard].alive {
                kill_pending = None;
                handle_death!(spec.shard, ShardDeath::Killed);
                continue 'recursion;
            }
        }

        let alive: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].alive).collect();
        let total_len: usize = alive.iter().map(|&i| shards[i].local.len()).sum();
        debug_assert!(total_len > 0);
        let origin = if level == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };
        if obs::enabled() {
            obs::span_enter(SpanKind::Level, "shard-level", level as u64, clock.as_ns());
        }
        levels_run += 1;

        // -- base case: gather the survivors onto one device and sort.
        if total_len <= base_threshold {
            let root = alive[0];
            let mut gathered = Vec::with_capacity(total_len);
            for &i in &alive {
                gathered.extend_from_slice(&shards[i].local);
                if i != root {
                    let bytes = (shards[i].local.len() * T::BYTES) as u64;
                    let t = link.transfer_time(bytes);
                    clock += t;
                    link_time += t;
                    link_bytes += bytes;
                }
            }
            sync_devices(&mut shards, clock);
            let v = base_case_select(&mut shards[root].device, &gathered, k, cfg, origin);
            clock = clock.max(shards[root].device.now());
            if obs::enabled() {
                obs::span_close_to(span_base + 1, clock.as_ns());
            }
            break 'recursion v;
        }

        // -- sample: one global draw, routed to the owning shards.
        let s = cfg.sample_size().max(b);
        let mut sample = Vec::with_capacity(s);
        let mut gather_counts = vec![0u64; shards.len()];
        {
            // Cumulative lengths over the alive shards, in shard order
            // (== offsets into the logical concatenated candidate set).
            let mut cum = Vec::with_capacity(alive.len() + 1);
            cum.push(0usize);
            for &i in &alive {
                cum.push(cum.last().unwrap() + shards[i].local.len());
            }
            for _ in 0..s {
                let g = rng.next_below(total_len);
                let which = cum.partition_point(|&c| c <= g) - 1;
                let shard = alive[which];
                sample.push(shards[shard].local[g - cum[which]]);
                gather_counts[shard] += 1;
            }
        }
        // Charge the per-shard gather kernels and the (parallel,
        // point-to-point) link transfers to the coordinator.
        let mut gather_link = SimTime::ZERO;
        for &i in &alive {
            let g = gather_counts[i];
            if g == 0 {
                continue;
            }
            let mut cost = KernelCost::new();
            cost.uncoalesced_bytes = g * T::BYTES as u64;
            cost.blocks = 1;
            let launch = LaunchConfig {
                blocks: 1,
                threads_per_block: cfg.threads_per_block,
                shared_mem_bytes: 0,
            };
            shards[i]
                .device
                .commit("shard_sample", launch, origin, cost);
            gather_link = gather_link.max(link.transfer_time(g * T::BYTES as u64));
            link_bytes += g * T::BYTES as u64;
        }
        clock = clock.max(max_alive_now(&shards)) + gather_link;
        link_time += gather_link;

        // -- splitters: sort the sample on the root shard, exactly as
        // the single-device sample kernel does.
        let root = alive[0];
        let mut sort_scratch = Vec::new();
        let stats = bitonic::bitonic_sort_with_scratch(&mut sample, &mut sort_scratch);
        let mut splitters: Vec<T> = (1..b).map(|i| sample[i * s / b]).collect();
        {
            let mut cost = KernelCost::new();
            stats.charge::<T>(&mut cost);
            cost.smem_bytes += (s * T::BYTES) as u64;
            cost.global_write_bytes += ((b - 1) * T::BYTES) as u64;
            cost.blocks = 1;
            let launch = LaunchConfig {
                blocks: 1,
                threads_per_block: cfg.threads_per_block,
                shared_mem_bytes: (s * T::BYTES) as u32,
            };
            shards[root]
                .device
                .commit("shard_splitter_sort", launch, origin, cost);
        }
        corrupt_elements(&mut shards[root].device, "splitters", &mut splitters);
        if let Err(e) = check_splitters(&splitters) {
            events.corruption(format!("level {level}: {e}"));
            level_retries += 1;
            if level_retries > scfg.retry.max_retries {
                return Err(e);
            }
            let backoff = jittered_backoff(&scfg.retry, root as u64, level_retries - 1);
            events.retry(format!(
                "level {level} redrawn after corrupt splitters ({backoff})"
            ));
            clock = clock.max(max_alive_now(&shards)) + backoff;
            sync_devices(&mut shards, clock);
            continue 'recursion;
        }
        let splitter_bytes = ((b - 1) * T::BYTES) as u64;
        let t = link.broadcast_time(splitter_bytes, alive.len());
        clock = clock.max(shards[root].device.now()) + t;
        link_time += t;
        link_bytes += splitter_bytes * (alive.len() as u64 - 1);
        sync_devices(&mut shards, clock);
        let tree = SearchTree::build(&splitters);

        // -- count: local histograms, with per-shard retry, straggler
        // hedging, and death on an exhausted budget.
        let mut counts: Vec<Option<CountResult>> = (0..shards.len()).map(|_| None).collect();
        let deadline_base = if scfg.hedge {
            Some(predicted_count_time::<T>(
                arch,
                alive.iter().map(|&i| shards[i].local.len()).max().unwrap(),
                cfg,
            ))
        } else {
            None
        };
        for &i in &alive {
            if shards[i].local.is_empty() {
                continue;
            }
            let started = shards[i].device.now();
            let mut attempt = 0u32;
            let count = loop {
                let slot = &mut shards[i];
                let c = count_kernel_scoped(
                    &mut slot.device,
                    &slot.local,
                    &tree,
                    cfg,
                    true,
                    origin,
                    &slot.scratch,
                );
                if let Some(fault) = slot.device.take_fault() {
                    events.fault(format!("shard {i} count level {level}: {fault}"));
                    recycle_count(&mut slot.device, c);
                    if attempt >= scfg.retry.max_retries {
                        break None;
                    }
                    let backoff = jittered_backoff(&scfg.retry, i as u64, attempt);
                    events.retry(format!(
                        "shard {i} count attempt {} re-launched after {backoff}",
                        attempt + 2
                    ));
                    slot.device.advance_time(backoff);
                    attempt += 1;
                    continue;
                }
                // A corrupted histogram never sums to the shard size;
                // catching it here pinpoints the shard instead of
                // poisoning the all-reduce.
                let sum: u64 = c.counts.iter().sum();
                if sum != slot.local.len() as u64 {
                    events.corruption(format!(
                        "shard {i} level {level}: histogram sums to {sum} for {} elements",
                        slot.local.len()
                    ));
                    recycle_count(&mut slot.device, c);
                    if attempt >= scfg.retry.max_retries {
                        break None;
                    }
                    let backoff = jittered_backoff(&scfg.retry, i as u64, attempt);
                    events.retry(format!(
                        "shard {i} count attempt {} recounted after {backoff}",
                        attempt + 2
                    ));
                    slot.device.advance_time(backoff);
                    attempt += 1;
                    continue;
                }
                break Some(c);
            };
            let Some(count) = count else {
                handle_death!(i, ShardDeath::RetriesExhausted);
                for (d, c) in shards.iter_mut().zip(counts.iter_mut()) {
                    if let Some(c) = c.take() {
                        recycle_count(&mut d.device, c);
                    }
                }
                continue 'recursion;
            };
            // Straggler hedging: race the launch against the deadline;
            // past it, abandon the device and re-execute on a spare.
            if let Some(base) = deadline_base {
                let elapsed = shards[i].device.now() - started;
                let deadline = base * scfg.hedge_factor;
                if elapsed > deadline {
                    stragglers_hedged += 1;
                    obs::counter_add(Counter::StragglersHedged, 1);
                    let mut spare = Device::new(arch.clone(), pool);
                    spare.advance_time(started + deadline);
                    let bytes = (shards[i].local.len() * T::BYTES) as u64;
                    let t = link.transfer_time(bytes);
                    spare.advance_time(t);
                    link_time += t;
                    link_bytes += bytes;
                    let hedged = count_kernel_scoped(
                        &mut spare,
                        &shards[i].local,
                        &tree,
                        cfg,
                        true,
                        origin,
                        &shards[i].scratch,
                    );
                    events.retry(format!(
                        "shard {i} count straggled ({elapsed} > {deadline}); hedged on a spare"
                    ));
                    if spare.now() < shards[i].device.now() {
                        obs::absorb_device(&shards[i].device);
                        recycle_count(&mut shards[i].device, count);
                        shards[i].device = spare;
                        counts[i] = Some(hedged);
                        continue;
                    }
                }
            }
            counts[i] = Some(count);
        }

        // -- all-reduce the histograms through the coordinator.
        clock = clock.max(max_alive_now(&shards));
        let alive: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].alive).collect();
        let mut totals = vec![0u64; b];
        for &i in &alive {
            if let Some(c) = &counts[i] {
                for (t, &c) in totals.iter_mut().zip(c.counts.iter()) {
                    *t += c;
                }
            }
        }
        let hist_bytes = (b * 8) as u64;
        let t = link.all_reduce_time(hist_bytes, alive.len());
        clock += t;
        link_time += t;
        if alive.len() > 1 {
            link_bytes += 2 * hist_bytes * (alive.len() as u64 - 1);
        }
        sync_devices(&mut shards, clock);

        // -- pick the target bucket from the global histogram.
        let mut bucket_offsets = Vec::with_capacity(b + 1);
        let mut running = 0u64;
        for &c in &totals {
            bucket_offsets.push(running);
            running += c;
        }
        bucket_offsets.push(running);
        let bucket = hpc_par::scan::bucket_for_rank(&bucket_offsets[..b], k as u64);
        if totals[bucket] == 0 {
            return Err(SelectError::Corruption {
                invariant: "bucket-for-rank",
                detail: format!("rank {k} maps to empty bucket {bucket} on level {level}"),
            });
        }

        obs::gauge_set(
            crate::obs::Gauge::BucketOccupancy,
            totals.iter().filter(|&&c| c > 0).count() as u64,
        );

        // -- equality bucket: all elements equal, answer found early.
        if tree.is_equality_bucket(bucket) {
            for (d, c) in shards.iter_mut().zip(counts.iter_mut()) {
                if let Some(c) = c.take() {
                    recycle_count(&mut d.device, c);
                }
            }
            let v = tree.equality_value(bucket);
            obs::counter_add(Counter::EqualityBucketExits, 1);
            if obs::enabled() {
                obs::span_close_to(span_base + 1, clock.as_ns());
            }
            break 'recursion v;
        }

        // -- filter: every shard keeps its slice of the target bucket.
        // Outputs are staged and applied only once *every* shard
        // succeeds: a mid-loop fault re-enters the level, and survivors
        // that already filtered must still hold their pre-level locals
        // (`k` is only adjusted after a fully successful filter pass).
        let mut staged: Vec<Option<Vec<T>>> = (0..shards.len()).map(|_| None).collect();
        let mut shard_died = None;
        for &i in &alive {
            let count = match counts[i].take() {
                Some(c) => c,
                None => continue, // empty shard
            };
            let expected = count.counts[bucket];
            let slot = &mut shards[i];
            let red = reduce_kernel(&mut slot.device, &count, LaunchOrigin::Device);
            let next = filter_kernel_scoped(
                &mut slot.device,
                &slot.local,
                &count,
                &red,
                bucket as u32..bucket as u32 + 1,
                cfg,
                LaunchOrigin::Device,
                &slot.scratch,
            );
            let fault = slot.device.take_fault();
            let sized_ok = next.len() as u64 == expected;
            recycle_level(&mut slot.device, count, red);
            if let Some(fault) = fault {
                events.fault(format!("shard {i} filter level {level}: {fault}"));
                shard_died = Some(i);
                break;
            }
            if !sized_ok {
                events.corruption(format!(
                    "shard {i} level {level}: filter extracted {} elements, count says {expected}",
                    next.len()
                ));
                shard_died = Some(i);
                break;
            }
            staged[i] = Some(next);
        }
        if let Some(i) = shard_died {
            // Filter-phase faults share the level-retry budget; past
            // it the shard is declared dead. Either way the level is
            // re-entered (a redraw is cheaper than partial-level
            // bookkeeping, and only faulted runs ever take this path).
            for (d, c) in shards.iter_mut().zip(counts.iter_mut()) {
                if let Some(c) = c.take() {
                    recycle_count(&mut d.device, c);
                }
            }
            level_retries += 1;
            if level_retries > scfg.retry.max_retries {
                handle_death!(i, ShardDeath::RetriesExhausted);
            } else {
                let backoff = jittered_backoff(&scfg.retry, i as u64, level_retries - 1);
                events.retry(format!(
                    "level {level} re-entered after shard {i} filter fault ({backoff})"
                ));
                clock = clock.max(max_alive_now(&shards)) + backoff;
                sync_devices(&mut shards, clock);
            }
            continue 'recursion;
        }

        // -- descend: the whole filter pass succeeded, commit it.
        for (slot, next) in shards.iter_mut().zip(staged) {
            if let Some(next) = next {
                slot.local = next;
            }
        }
        k -= bucket_offsets[bucket] as usize;
        history.push((splitters, bucket));
        for s in shards.iter_mut().filter(|s| s.alive) {
            s.fingerprint = local_fingerprint(&s.local);
        }
        obs::observe(Histogram::LevelKeptElements, totals[bucket]);
        clock = clock.max(max_alive_now(&shards));
        sync_devices(&mut shards, clock);
        if obs::enabled() {
            obs::span_close_to(span_base + 1, clock.as_ns());
        }
        level += 1;
        level_retries = 0;
    };

    clock = clock.max(max_alive_now(&shards));

    // -- ABFT certification on the merged result: each surviving shard
    // certifies the rank of `value` within its *original* partition;
    // the coordinator sums the bounds. Skipped on degraded runs (the
    // outcome is tagged approximate; its error bound is the report's
    // lost-element count).
    if cfg.verify.certify() && !degraded {
        let mut below = 0u64;
        let mut tied = 0u64;
        for s in shards.iter_mut().filter(|s| s.alive) {
            let part = &data[s.origin.clone()];
            let (lo, eq) = rank_bounds(part, value);
            below += lo;
            tied += eq;
            let launch = cfg.launch_config(part.len().max(1), T::BYTES);
            let mut cost = KernelCost::new();
            cost.global_read_bytes = (part.len() * T::BYTES) as u64;
            cost.int_ops = 2 * part.len() as u64;
            cost.blocks = launch.blocks as u64;
            s.device
                .commit("shard_certify", launch, LaunchOrigin::Host, cost);
        }
        let t = link.all_reduce_time(16, shards.iter().filter(|s| s.alive).count());
        clock = clock.max(max_alive_now(&shards)) + t;
        link_time += t;
        if !(below as usize <= rank && rank < (below + tied) as usize) {
            return Err(SelectError::Corruption {
                invariant: "rank-certificate",
                detail: format!(
                    "merged result has ranks {below}..{} but {rank} was requested",
                    below + tied
                ),
            });
        }
        events.certify(format!(
            "merged rank certificate: {rank} within [{below}, {})",
            below + tied
        ));
    }

    let outcome = if degraded {
        // The survivors' answer is exact *for the surviving data*; the
        // dropped candidates bound how far it can sit from the true
        // rank. Report its true achieved rank over what survived.
        let mut below = 0u64;
        for s in shards.iter().filter(|s| s.alive) {
            below += rank_bounds(&data[s.origin.clone()], value).0;
        }
        Outcome::Approximate {
            value,
            achieved_rank: below,
            rank_error: lost_elements,
        }
    } else {
        Outcome::Exact(value)
    };

    obs::counter_add(Counter::Queries, 1);
    obs::counter_add(Counter::RecursionLevels, levels_run as u64);
    for s in shards.iter().filter(|s| s.alive) {
        obs::absorb_device(&s.device);
    }
    if obs::enabled() {
        obs::span_close_to(span_base, clock.as_ns());
    }

    Ok(ShardedResult {
        outcome,
        report: ShardReport {
            shards: k_shards,
            levels: levels_run,
            sim_time: clock,
            link_time,
            link_bytes,
            stragglers_hedged,
            shards_recovered,
            quorum_degradations,
            lost_elements,
            events,
        },
    })
}

/// [`sharded_select`] without fault injection (the clean leg).
pub fn sharded_select_clean<T: SelectElement>(
    arch: &GpuArchitecture,
    pool: &ThreadPool,
    data: &[T],
    rank: usize,
    cfg: &SampleSelectConfig,
    scfg: &ShardConfig,
) -> Result<ShardedResult<T>, SelectError> {
    sharded_select(arch, pool, data, rank, cfg, scfg, &ShardFaults::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use crate::recursion::sample_select_on_device;
    use gpu_sim::arch::v100;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn single_device_value(data: &[f32], rank: usize, cfg: &SampleSelectConfig) -> f32 {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        sample_select_on_device(&mut device, data, rank, cfg)
            .unwrap()
            .value
    }

    #[test]
    fn topology_even_partitions_cover_input() {
        let t = ShardTopology::even(10, 3);
        assert_eq!(t.shards(), 3);
        assert_eq!(t.total(), 10);
        let covered: usize = (0..3).map(|i| t.range(i).len()).sum();
        assert_eq!(covered, 10);
        assert_ne!(t.fingerprint(), ShardTopology::even(10, 2).fingerprint());
        assert_ne!(t.fingerprint(), ShardTopology::even(11, 3).fingerprint());
    }

    #[test]
    fn kill_spec_parses() {
        let spec: KillSpec = "1@2".parse().unwrap();
        assert_eq!(spec, KillSpec { shard: 1, level: 2 });
        assert!("nope".parse::<KillSpec>().is_err());
        assert!("1@x".parse::<KillSpec>().is_err());
    }

    #[test]
    fn clean_sharded_is_bit_identical_to_single_device() {
        let data = uniform(40_000, 42);
        let cfg = SampleSelectConfig::default();
        let rank = 13_337;
        let expected = single_device_value(&data, rank, &cfg);
        let pool = ThreadPool::new(2);
        for k in [1usize, 2, 4, 8] {
            let res = sharded_select_clean(
                &v100(),
                &pool,
                &data,
                rank,
                &cfg,
                &ShardConfig::default().with_shards(k),
            )
            .unwrap();
            assert!(res.outcome.is_exact());
            assert_eq!(
                res.outcome.value().to_bits(),
                expected.to_bits(),
                "K={k} diverged from the single-device result"
            );
            assert!(res.report.events.is_clean());
        }
    }

    #[test]
    fn sharded_sim_time_scales_down_with_shards() {
        // Large enough that per-shard compute dwarfs the per-level
        // interconnect latency (the regime sharding exists for).
        let data = uniform(1 << 22, 7);
        let cfg = SampleSelectConfig::default();
        let pool = ThreadPool::new(2);
        let mut times = Vec::new();
        for k in [1usize, 4] {
            let res = sharded_select_clean(
                &v100(),
                &pool,
                &data,
                1 << 21,
                &cfg,
                &ShardConfig::default().with_shards(k),
            )
            .unwrap();
            times.push(res.report.sim_time);
        }
        // 4 shards must beat 1 despite the interconnect overhead.
        assert!(
            times[1] < times[0],
            "K=4 ({}) not faster than K=1 ({})",
            times[1],
            times[0]
        );
    }

    #[test]
    fn launch_failures_on_one_shard_are_retried() {
        let data = uniform(30_000, 3);
        let cfg = SampleSelectConfig::default();
        let rank = 10_000;
        let expected = single_device_value(&data, rank, &cfg);
        let pool = ThreadPool::new(2);
        let faults = ShardFaults::default().with_plan(1, FaultPlan::new(5).fail_launches_at(&[1]));
        let res = sharded_select(
            &v100(),
            &pool,
            &data,
            rank,
            &cfg,
            &ShardConfig::default().with_shards(4),
            &faults,
        )
        .unwrap();
        assert_eq!(res.outcome, Outcome::Exact(expected));
        assert!(res.report.events.faults_observed >= 1);
        assert!(res.report.events.retries >= 1);
        assert_eq!(res.report.shards_recovered, 0);
    }

    #[test]
    fn killed_shard_is_recovered_bit_identically() {
        let data = uniform(50_000, 11);
        let cfg = SampleSelectConfig::default();
        let rank = 25_000;
        let expected = single_device_value(&data, rank, &cfg);
        let pool = ThreadPool::new(2);
        for kill_level in [0u32, 1] {
            let faults = ShardFaults::default().kill_shard(1, kill_level);
            let res = sharded_select(
                &v100(),
                &pool,
                &data,
                rank,
                &cfg,
                &ShardConfig::default().with_shards(4),
                &faults,
            )
            .unwrap();
            assert_eq!(
                res.outcome,
                Outcome::Exact(expected),
                "kill at level {kill_level} lost exactness"
            );
            assert_eq!(res.report.shards_recovered, 1);
            assert_eq!(res.report.quorum_degradations, 0);
        }
    }

    #[test]
    fn exhausted_recovery_budget_degrades_to_tagged_approximate() {
        let data = uniform(50_000, 13);
        let cfg = SampleSelectConfig::default();
        let rank = 25_000;
        let pool = ThreadPool::new(2);
        let faults = ShardFaults::default().kill_shard(2, 1);
        let res = sharded_select(
            &v100(),
            &pool,
            &data,
            rank,
            &cfg,
            &ShardConfig::default()
                .with_shards(4)
                .with_recovery_budget(0),
            &faults,
        )
        .unwrap();
        match res.outcome {
            Outcome::Approximate { rank_error, .. } => {
                assert!(rank_error > 0);
                assert_eq!(rank_error, res.report.lost_elements);
            }
            Outcome::Exact(_) => panic!("degraded run must tag its result approximate"),
        }
        assert_eq!(res.report.quorum_degradations, 1);
        assert!(res.report.events.degradations >= 1);
    }

    #[test]
    fn latency_spike_triggers_hedge() {
        let data = uniform(1 << 18, 17);
        let cfg = SampleSelectConfig::default();
        let rank = 1 << 17;
        let expected = single_device_value(&data, rank, &cfg);
        let pool = ThreadPool::new(2);
        let faults =
            ShardFaults::default().with_plan(0, FaultPlan::new(9).latency_spikes(1.0, 50.0));
        let res = sharded_select(
            &v100(),
            &pool,
            &data,
            rank,
            &cfg,
            &ShardConfig::default().with_shards(4).with_hedge(true),
            &faults,
        )
        .unwrap();
        assert_eq!(res.outcome, Outcome::Exact(expected));
        assert!(
            res.report.stragglers_hedged >= 1,
            "a 50x latency spike must trip the cost-model deadline"
        );
        // Hedging bounds the critical path: the run must beat the
        // un-hedged one.
        let unhedged = sharded_select(
            &v100(),
            &pool,
            &data,
            rank,
            &cfg,
            &ShardConfig::default().with_shards(4),
            &ShardFaults::default().with_plan(0, FaultPlan::new(9).latency_spikes(1.0, 50.0)),
        )
        .unwrap();
        assert!(res.report.sim_time < unhedged.report.sim_time);
    }

    #[test]
    fn bitflips_on_one_shard_are_detected_and_retried() {
        let data = uniform(30_000, 23);
        let cfg = SampleSelectConfig::default();
        let rank = 15_000;
        let expected = single_device_value(&data, rank, &cfg);
        let pool = ThreadPool::new(2);
        let faults = ShardFaults::default()
            .with_plan(2, FaultPlan::new(31).bitflips(1.0).max_corruptions(2));
        let res = sharded_select(
            &v100(),
            &pool,
            &data,
            rank,
            &cfg,
            &ShardConfig::default().with_shards(4),
            &faults,
        )
        .unwrap();
        assert_eq!(res.outcome, Outcome::Exact(expected));
        assert!(res.report.events.corruptions_detected >= 1);
    }

    #[test]
    fn certify_runs_on_merged_result() {
        let data = uniform(20_000, 29);
        let cfg = SampleSelectConfig::default().with_verify(crate::verify::VerifyPolicy::Paranoid);
        let rank = 5_000;
        let pool = ThreadPool::new(2);
        let res = sharded_select_clean(
            &v100(),
            &pool,
            &data,
            rank,
            &cfg,
            &ShardConfig::default().with_shards(4),
        )
        .unwrap();
        assert!(res.outcome.is_exact());
        assert_eq!(res.report.events.certified, 1);
        assert_eq!(res.outcome.value(), reference_select(&data, rank).unwrap());
    }

    #[test]
    fn link_traffic_is_accounted() {
        let data = uniform(20_000, 37);
        let cfg = SampleSelectConfig::default();
        let pool = ThreadPool::new(2);
        let res = sharded_select_clean(
            &v100(),
            &pool,
            &data,
            9_999,
            &cfg,
            &ShardConfig::default().with_shards(4),
        )
        .unwrap();
        assert!(res.report.link_bytes > 0);
        assert!(res.report.link_time > SimTime::ZERO);
        assert!(res.report.link_time < res.report.sim_time);
    }
}
