//! Thread-level SIMT reference kernels for the differential conformance
//! suite.
//!
//! Each kernel family in this crate has a *vectorized* implementation
//! (slice iterators standing in for coalesced device loops) that the
//! drivers use, and the conformance suite (`tests/sanitizer_conformance.rs`)
//! needs an independent second opinion: the same algorithm written
//! thread-by-thread on [`BlockExec`], with every inter-thread
//! communication going through shared memory and explicit barriers —
//! the way the CUDA artifact actually executes.
//!
//! Running these references under the SIMT sanitizer
//! ([`BlockExec::with_sanitizer`]) and under *shuffled* warp schedules
//! ([`WarpSchedule::Shuffled`]) checks two things at once:
//!
//! 1. the reference itself is data-race-free (sanitizer-clean and
//!    schedule-independent), so its output is well-defined; and
//! 2. the vectorized fast path agrees with it bit-for-bit.
//!
//! The [`mutants`] submodule holds deliberately-broken variants — one
//! per sanitizer detector class — proving each detector actually fires.
//! They are test fixtures, not algorithm code.
//!
//! All references are deterministic across warp schedules by
//! construction: output positions are handed out by prefix sums, never
//! by atomic cursors, so a seed-shuffled schedule permutes only the
//! execution order, not the result.

use crate::SelectError;
use gpu_sim::sanitizer::{SanitizerConfig, SanitizerReport};
use gpu_sim::warp::WARP_SIZE;
use gpu_sim::{BlockExec, WarpSchedule};

/// Round a thread count up to a whole number of warps (at least one).
fn warp_round(n: usize) -> usize {
    n.max(1).div_ceil(WARP_SIZE) * WARP_SIZE
}

/// Build a block with the requested schedule, sanitized or not.
fn make_block(
    threads: usize,
    words: usize,
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> BlockExec {
    let mut block = match sanitize {
        Some(cfg) => BlockExec::with_sanitizer(threads, words, cfg),
        None => BlockExec::new(threads, words),
    };
    block.set_schedule(schedule);
    block
}

/// Merge an optional report into an accumulator.
fn fold_report(acc: &mut Option<SanitizerReport>, part: Option<SanitizerReport>) {
    match (acc.as_mut(), part) {
        (Some(a), Some(p)) => a.merge(&p),
        (None, Some(p)) => *acc = Some(p),
        _ => {}
    }
}

/// Thread-level histogram over per-element bucket indices — the
/// accumulation half of the `count` kernel (§IV-C), using the same
/// warp-cooperative shared-memory atomics as the vectorized path.
///
/// `targets[i]` is the bucket oracle of element `i` (as produced by
/// `count_kernel` with `write_oracles = true`); any index `>= counters`
/// is counted into no bucket (the caller guarantees this never happens
/// for real oracles).
pub fn block_histogram(
    targets: &[u32],
    counters: usize,
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u64>, Option<SanitizerReport>) {
    let threads = warp_round(counters);
    let mut block = make_block(threads, counters.max(1), schedule, sanitize);

    // Phase 0: zero the counters (one word per thread, race-free).
    block.phase(|tid, b| {
        if tid < counters {
            b.smem_write(tid, 0);
        }
    });

    // One warp-atomic instruction per 32-element chunk, all inside a
    // single barrier interval with no plain access to the counter words.
    for chunk in targets.chunks(WARP_SIZE) {
        block.warp_shared_atomic_add(0, chunk);
    }
    block.barrier();

    let counts = block.shared()[..counters]
        .iter()
        .map(|&c| c as u64)
        .collect();
    (counts, block.take_sanitizer_report())
}

/// Thread-level exclusive prefix sum — the `reduce` kernel (§IV-G) on a
/// single block: a double-buffered Hillis–Steele sweep (each step reads
/// one buffer and writes the other, so no phase both reads and writes
/// the same word).
pub fn block_exclusive_scan(
    values: &[u32],
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u32>, Option<SanitizerReport>) {
    let n = values.len();
    if n == 0 {
        let mut block = make_block(WARP_SIZE, 1, schedule, sanitize);
        return (Vec::new(), block.take_sanitizer_report());
    }
    let threads = warp_round(n);
    // Ping buffer at words [0, n), pong at [n, 2n).
    let mut block = make_block(threads, 2 * n, schedule, sanitize);

    block.phase(|tid, b| {
        if tid < n {
            b.smem_write(tid, values[tid]);
        }
    });

    let mut src = 0usize;
    let mut d = 1usize;
    while d < n {
        let dst = n - src;
        block.phase(|tid, b| {
            if tid < n {
                let mut v = b.smem_read(src + tid);
                if tid >= d {
                    v = v.wrapping_add(b.smem_read(src + tid - d));
                }
                b.smem_write(dst + tid, v);
            }
        });
        src = dst;
        d *= 2;
    }

    // Shift the inclusive scan right by one into the other buffer.
    let dst = n - src;
    block.phase(|tid, b| {
        if tid < n {
            let v = if tid == 0 {
                0
            } else {
                b.smem_read(src + tid - 1)
            };
            b.smem_write(dst + tid, v);
        }
    });

    let out = block.shared()[dst..dst + n].to_vec();
    (out, block.take_sanitizer_report())
}

/// Thread-level stream compaction — the `filter` kernel (§IV-G, step 3)
/// on a single block: flag, scan, scatter. Output positions come from
/// the in-block prefix sum, so the result preserves input order and is
/// identical under every warp schedule.
pub fn block_filter(
    data: &[u32],
    keep: &[bool],
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u32>, Option<SanitizerReport>) {
    assert_eq!(data.len(), keep.len());
    let n = data.len();
    if n == 0 {
        let mut block = make_block(WARP_SIZE, 1, schedule, sanitize);
        return (Vec::new(), block.take_sanitizer_report());
    }
    let threads = warp_round(n);
    // Scan ping/pong at [0, 2n), compacted output at [2n, 3n).
    let mut block = make_block(threads, 3 * n, schedule, sanitize);

    block.phase(|tid, b| {
        if tid < n {
            b.smem_write(tid, keep[tid] as u32);
        }
    });

    let mut src = 0usize;
    let mut d = 1usize;
    while d < n {
        let dst = n - src;
        block.phase(|tid, b| {
            if tid < n {
                let mut v = b.smem_read(src + tid);
                if tid >= d {
                    v = v.wrapping_add(b.smem_read(src + tid - d));
                }
                b.smem_write(dst + tid, v);
            }
        });
        src = dst;
        d *= 2;
    }

    // The inclusive scan lives in `src`; each flagged thread owns the
    // distinct slot `scan[tid] - 1`.
    let matched = block.shared()[src + n - 1] as usize;
    block.phase(|tid, b| {
        if tid < n && keep[tid] {
            let pos = b.smem_read(src + tid) as usize - 1;
            b.smem_write(2 * n + pos, data[tid]);
        }
    });

    let out = block.shared()[2 * n..2 * n + matched].to_vec();
    (out, block.take_sanitizer_report())
}

/// Thread-level MSD radix digit histogram — the accumulation half of
/// the RadixSelect `digit_count` kernel: extract the 8-bit digit at
/// `shift` from every sort key (a register-only operation), then count
/// into [`crate::radix::RADIX_BUCKETS`] shared counters with the same
/// warp-cooperative atomics as [`block_histogram`]. Bucketing by digit
/// instead of by search-tree oracle is the *only* difference from the
/// sample-select count family, which is exactly why the two share one
/// reference accumulator.
pub fn block_digit_histogram(
    keys: &[u64],
    shift: u32,
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u64>, Option<SanitizerReport>) {
    let digits: Vec<u32> = keys.iter().map(|&k| ((k >> shift) & 0xff) as u32).collect();
    block_histogram(&digits, crate::radix::RADIX_BUCKETS, schedule, sanitize)
}

/// Thread-level radix scatter — the filter half of a RadixSelect pass:
/// keep exactly the elements whose digit at `shift` equals `digit`, in
/// input order (flag → scan → scatter, positions from the prefix sum,
/// so the result is schedule-independent like the vectorized
/// `filter_kernel` it checks).
pub fn block_digit_scatter(
    data: &[u32],
    keys: &[u64],
    shift: u32,
    digit: u32,
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u32>, Option<SanitizerReport>) {
    assert_eq!(data.len(), keys.len());
    let keep: Vec<bool> = keys
        .iter()
        .map(|&k| ((k >> shift) & 0xff) as u32 == digit)
        .collect();
    block_filter(data, &keep, schedule, sanitize)
}

/// Thread-level QuickSelect bipartition (§V-B): three compaction passes
/// producing `smaller ++ equal ++ larger`, each region in input order —
/// exactly the layout `bipartition_kernel` produces (its per-block scan
/// offsets also fill each region in input order).
pub fn block_bipartition(
    data: &[u32],
    pivot: u32,
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u32>, u64, u64, Option<SanitizerReport>) {
    let lt: Vec<bool> = data.iter().map(|&x| x < pivot).collect();
    let eq: Vec<bool> = data.iter().map(|&x| x == pivot).collect();
    let gt: Vec<bool> = data.iter().map(|&x| x > pivot).collect();

    let (mut out, r0) = block_filter(data, &lt, schedule, sanitize);
    let (mid, r1) = block_filter(data, &eq, schedule, sanitize);
    let (hi, r2) = block_filter(data, &gt, schedule, sanitize);

    let smaller = out.len() as u64;
    let equal = mid.len() as u64;
    out.extend(mid);
    out.extend(hi);

    let mut report = None;
    fold_report(&mut report, r0);
    fold_report(&mut report, r1);
    fold_report(&mut report, r2);
    (out, smaller, equal, report)
}

/// Thread-level bucket-range extraction — the shape of both the filter
/// stage of exact SampleSelect and the fused top-k gather: concatenate
/// the elements of buckets `lo..hi` in bucket-major order, each bucket's
/// elements in input order (the layout the vectorized `filter_kernel`
/// produces from its bucket-major scan offsets).
pub fn block_bucket_concat(
    data: &[u32],
    oracle: &[u32],
    lo: u32,
    hi: u32,
    schedule: WarpSchedule,
    sanitize: Option<SanitizerConfig>,
) -> (Vec<u32>, Option<SanitizerReport>) {
    assert_eq!(data.len(), oracle.len());
    let mut out = Vec::new();
    let mut report = None;
    for bucket in lo..hi {
        let keep: Vec<bool> = oracle.iter().map(|&o| o == bucket).collect();
        let (part, r) = block_filter(data, &keep, schedule, sanitize);
        out.extend(part);
        fold_report(&mut report, r);
    }
    if out.is_empty() && report.is_none() {
        // Degenerate empty range: still surface a (clean) report when
        // sanitizing so callers can assert on it uniformly.
        let mut block = make_block(WARP_SIZE, 1, schedule, sanitize);
        report = block.take_sanitizer_report();
    }
    (out, report)
}

/// Deliberately-broken kernels, one per sanitizer detector class.
///
/// These are the *negative* half of the conformance suite: each mutant
/// re-creates a real CUDA bug pattern (missing `__syncthreads`, in-place
/// scan, divergent barrier, …) and the suite asserts the corresponding
/// [`gpu_sim::SanitizerKind`] actually fires. None of them panic with
/// the sanitizer armed — findings are reported, execution degrades
/// gracefully, exactly like `compute-sanitizer` on hardware.
pub mod mutants {
    use super::*;

    /// Every thread stores to word 0 in one phase — the canonical
    /// write/write race (a block-wide "last writer wins" reduction
    /// written without atomics).
    pub fn write_write_race(schedule: WarpSchedule, cfg: SanitizerConfig) -> SanitizerReport {
        let mut block = make_block(2 * WARP_SIZE, 1, schedule, Some(cfg));
        block.phase(|tid, b| {
            b.smem_write(0, tid as u32);
        });
        block.take_sanitizer_report().expect("sanitizer was armed")
    }

    /// An *in-place* Hillis–Steele scan step: thread `tid` reads word
    /// `tid - 1` while thread `tid - 1` writes it in the same phase —
    /// the classic missing-double-buffer bug.
    pub fn read_write_race(schedule: WarpSchedule, cfg: SanitizerConfig) -> SanitizerReport {
        let n = 2 * WARP_SIZE;
        let mut block = make_block(n, n, schedule, Some(cfg));
        block.phase(|tid, b| {
            b.smem_write(tid, 1);
        });
        block.phase(|tid, b| {
            if tid > 0 {
                let v = b.smem_read(tid - 1);
                let own = b.smem_read(tid);
                b.smem_write(tid, own.wrapping_add(v));
            }
        });
        block.take_sanitizer_report().expect("sanitizer was armed")
    }

    /// Half the block executes a conditional `__syncthreads` the other
    /// half skips — barrier divergence (deadlock or undefined behaviour
    /// on hardware).
    pub fn barrier_divergence(schedule: WarpSchedule, cfg: SanitizerConfig) -> SanitizerReport {
        let n = 2 * WARP_SIZE;
        let mut block = make_block(n, n, schedule, Some(cfg));
        block.phase(|tid, b| {
            if tid < n / 2 {
                b.thread_barrier();
            }
        });
        block.take_sanitizer_report().expect("sanitizer was armed")
    }

    /// Reads shared words that no thread ever initialised (a reduction
    /// over a partially-zeroed scratch buffer).
    pub fn uninit_read(schedule: WarpSchedule, cfg: SanitizerConfig) -> SanitizerReport {
        let n = 2 * WARP_SIZE;
        let mut block = make_block(n, n, schedule, Some(cfg));
        block.phase(|tid, b| {
            let _ = b.smem_read(tid);
        });
        block.take_sanitizer_report().expect("sanitizer was armed")
    }

    /// Thread 0 stores one word past the end of the shared allocation.
    ///
    /// With the sanitizer armed the access is reported as a finding and
    /// dropped; disarmed, the checked accessor surfaces it as
    /// [`SelectError::SharedOutOfBounds`] instead of a panic — the
    /// satellite contract for the former `smem_write` OOB panic.
    pub fn oob_access(
        schedule: WarpSchedule,
        sanitize: Option<SanitizerConfig>,
    ) -> Result<SanitizerReport, SelectError> {
        let words = 16usize;
        let armed = sanitize.is_some();
        let mut block = make_block(WARP_SIZE, words, schedule, sanitize);
        let mut oob: Option<SelectError> = None;
        block.phase(|tid, b| {
            if tid == 0 {
                if let Err(e) = b.try_smem_write(words, 7) {
                    oob = Some(SelectError::SharedOutOfBounds {
                        kernel: "oob-mutant",
                        index: e.index,
                        len: e.len,
                    });
                }
            }
        });
        if armed {
            Ok(block.take_sanitizer_report().expect("sanitizer was armed"))
        } else {
            Err(oob.expect("out-of-bounds store must be rejected"))
        }
    }

    /// A radix digit histogram accumulated with *plain* shared-memory
    /// read-modify-write instead of atomics: every thread loads its
    /// digit's counter and stores `+1` back in the same phase, so any
    /// two threads sharing a digit race on the counter word — the
    /// classic dropped-increment histogram bug (`counts[d]++` without
    /// `atomicAdd`). Feed it duplicate-heavy keys and the write-write
    /// detector must fire.
    pub fn racy_digit_histogram(
        keys: &[u64],
        shift: u32,
        schedule: WarpSchedule,
        cfg: SanitizerConfig,
    ) -> SanitizerReport {
        let counters = crate::radix::RADIX_BUCKETS;
        let threads = warp_round(counters.max(keys.len()));
        let mut block = make_block(threads, counters, schedule, Some(cfg));
        block.phase(|tid, b| {
            if tid < counters {
                b.smem_write(tid, 0);
            }
        });
        block.phase(|tid, b| {
            if tid < keys.len() {
                let d = ((keys[tid] >> shift) & 0xff) as usize;
                let v = b.smem_read(d);
                b.smem_write(d, v.wrapping_add(1));
            }
        });
        block.take_sanitizer_report().expect("sanitizer was armed")
    }

    /// Warp atomics and a plain load hit the same counter word inside
    /// one barrier interval — the missing `__syncthreads` between
    /// histogram accumulation and readback.
    pub fn mixed_atomic(schedule: WarpSchedule, cfg: SanitizerConfig) -> SanitizerReport {
        let counters = 4usize;
        let mut block = make_block(WARP_SIZE, counters, schedule, Some(cfg));
        block.phase(|tid, b| {
            if tid < counters {
                b.smem_write(tid, 0);
            }
        });
        let targets: Vec<u32> = (0..WARP_SIZE as u32).map(|i| i % counters as u32).collect();
        block.warp_shared_atomic_add(0, &targets);
        // No barrier here: the plain read below lands in the same
        // interval as the atomics above.
        block.phase(|tid, b| {
            if tid == 0 {
                let _ = b.smem_read(0);
            }
        });
        block.take_sanitizer_report().expect("sanitizer was armed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::sanitizer::SanitizerKind;

    fn schedules() -> [WarpSchedule; 3] {
        [
            WarpSchedule::Sequential,
            WarpSchedule::Shuffled { seed: 0xfeed },
            WarpSchedule::Shuffled { seed: 42 },
        ]
    }

    #[test]
    fn histogram_matches_host_and_is_clean() {
        let targets: Vec<u32> = (0..500).map(|i| (i * 7 + 3) % 16).collect();
        let mut expect = vec![0u64; 16];
        for &t in &targets {
            expect[t as usize] += 1;
        }
        for schedule in schedules() {
            let (counts, report) =
                block_histogram(&targets, 16, schedule, Some(SanitizerConfig::full()));
            assert_eq!(counts, expect);
            assert!(report.unwrap().is_clean());
        }
    }

    #[test]
    fn exclusive_scan_matches_host_and_is_clean() {
        let values: Vec<u32> = (0..100).map(|i| (i * 13 + 1) % 9).collect();
        let mut expect = Vec::with_capacity(values.len());
        let mut run = 0u32;
        for &v in &values {
            expect.push(run);
            run += v;
        }
        for schedule in schedules() {
            let (scan, report) =
                block_exclusive_scan(&values, schedule, Some(SanitizerConfig::full()));
            assert_eq!(scan, expect);
            assert!(report.unwrap().is_clean());
        }
    }

    #[test]
    fn filter_preserves_input_order_and_is_clean() {
        let data: Vec<u32> = (0..200).map(|i| i * 3 % 101).collect();
        let keep: Vec<bool> = data.iter().map(|&x| x % 2 == 0).collect();
        let expect: Vec<u32> = data
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&x, _)| x)
            .collect();
        for schedule in schedules() {
            let (out, report) = block_filter(&data, &keep, schedule, Some(SanitizerConfig::full()));
            assert_eq!(out, expect);
            assert!(report.unwrap().is_clean());
        }
    }

    #[test]
    fn bipartition_layout_matches_host_partition() {
        let data: Vec<u32> = (0..150).map(|i| (i * 31 + 5) % 40).collect();
        let pivot = 17;
        let (out, smaller, equal, report) = block_bipartition(
            &data,
            pivot,
            WarpSchedule::Shuffled { seed: 9 },
            Some(SanitizerConfig::full()),
        );
        assert_eq!(out.len(), data.len());
        let s = smaller as usize;
        let e = equal as usize;
        assert!(out[..s].iter().all(|&x| x < pivot));
        assert!(out[s..s + e].iter().all(|&x| x == pivot));
        assert!(out[s + e..].iter().all(|&x| x > pivot));
        assert!(report.unwrap().is_clean());
    }

    #[test]
    fn empty_inputs_yield_clean_reports() {
        let (counts, r) = block_histogram(
            &[],
            4,
            WarpSchedule::Sequential,
            Some(SanitizerConfig::full()),
        );
        assert_eq!(counts, vec![0; 4]);
        assert!(r.unwrap().is_clean());
        let (scan, r) =
            block_exclusive_scan(&[], WarpSchedule::Sequential, Some(SanitizerConfig::full()));
        assert!(scan.is_empty());
        assert!(r.unwrap().is_clean());
        let (out, r) = block_filter(
            &[],
            &[],
            WarpSchedule::Sequential,
            Some(SanitizerConfig::full()),
        );
        assert!(out.is_empty());
        assert!(r.unwrap().is_clean());
    }

    #[test]
    fn mutants_trip_their_detectors() {
        let cfg = SanitizerConfig::full();
        let s = WarpSchedule::Sequential;
        assert!(mutants::write_write_race(s, cfg).count_of(SanitizerKind::WriteWriteRace) > 0);
        assert!(mutants::read_write_race(s, cfg).count_of(SanitizerKind::ReadWriteRace) > 0);
        assert!(mutants::barrier_divergence(s, cfg).count_of(SanitizerKind::BarrierDivergence) > 0);
        assert!(mutants::uninit_read(s, cfg).count_of(SanitizerKind::UninitRead) > 0);
        assert!(
            mutants::oob_access(s, Some(cfg))
                .unwrap()
                .count_of(SanitizerKind::OutOfBounds)
                > 0
        );
        assert!(mutants::mixed_atomic(s, cfg).count_of(SanitizerKind::MixedAtomic) > 0);
    }

    #[test]
    fn oob_mutant_surfaces_select_error_when_disarmed() {
        let err = mutants::oob_access(WarpSchedule::Sequential, None).unwrap_err();
        match err {
            SelectError::SharedOutOfBounds { kernel, index, len } => {
                assert_eq!(kernel, "oob-mutant");
                assert_eq!(index, 16);
                assert_eq!(len, 16);
            }
            other => panic!("expected SharedOutOfBounds, got {other:?}"),
        }
    }
}
