//! The `sample` kernel (§IV-B.a): draw a random sample, sort it in
//! shared memory with the bitonic network, pick the `i/b` percentiles as
//! splitters, and build the implicit search tree.

use crate::bitonic::bitonic_sort_with_scratch;
use crate::element::SelectElement;
use crate::params::SampleSelectConfig;
use crate::rng::SplitMix64;
use crate::searchtree::SearchTree;
use crate::workspace::SelectWorkspace;
use crate::SelectError;
use gpu_sim::{Device, KernelCost, LaunchConfig, LaunchOrigin};

/// Run the sample kernel on `device`, returning the splitter tree.
///
/// The kernel is a single thread block: it gathers
/// `cfg.sample_size()` elements at random positions (uncoalesced
/// global loads), bitonic-sorts them in shared memory, selects the
/// `i/b` percentiles for `i = 1..b` as splitters, and writes the
/// `b - 1` tree nodes back to global memory.
pub fn sample_kernel<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    cfg: &SampleSelectConfig,
    rng: &mut SplitMix64,
    origin: LaunchOrigin,
) -> Result<SearchTree<T>, SelectError> {
    let mut ws = SelectWorkspace::new();
    sample_kernel_into(device, data, cfg, rng, origin, &mut ws)?;
    Ok(ws.take_tree().expect("sample_kernel_into built a tree"))
}

/// [`sample_kernel`] writing into a reusable [`SelectWorkspace`]: the
/// sample, sorting scratch, splitter staging, and search-tree arrays are
/// all reused across calls, so a warm workspace makes this kernel
/// allocation-free. The built tree lands in `ws.tree`.
pub fn sample_kernel_into<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    cfg: &SampleSelectConfig,
    rng: &mut SplitMix64,
    origin: LaunchOrigin,
    ws: &mut SelectWorkspace<T>,
) -> Result<(), SelectError> {
    assert!(!data.is_empty(), "sample kernel requires a non-empty input");
    let b = cfg.num_buckets;
    let s = cfg.sample_size().max(b);
    let SelectWorkspace {
        sample,
        splitters,
        sort_scratch,
        tree,
        ..
    } = ws;

    // Gather the sample (with replacement, matching the §II-B analysis).
    sample.clear();
    sample.extend((0..s).map(|_| data[rng.next_below(data.len())]));

    let mut cost = KernelCost::new();
    cost.blocks = 1;
    // Random-position gathers are textbook uncoalesced accesses.
    cost.uncoalesced_bytes += (s * T::BYTES) as u64;

    // Sort the sample in shared memory.
    let stats = bitonic_sort_with_scratch(sample, sort_scratch);
    stats.charge::<T>(&mut cost);

    // Pick the i/b percentiles (i = 1..b-1 inclusive of b-1 values).
    splitters.clear();
    splitters.extend((1..b).map(|i| sample[i * s / b]));
    debug_assert_eq!(splitters.len(), b - 1);

    // Write the search tree to global memory.
    cost.global_write_bytes += ((b - 1) * T::BYTES) as u64;
    cost.int_ops += (b - 1) as u64;

    let launch = LaunchConfig {
        blocks: 1,
        threads_per_block: cfg.threads_per_block,
        shared_mem_bytes: (s * T::BYTES) as u32,
    };
    device.commit("sample", launch, origin, cost);

    // The splitter buffer lives in global memory between kernels, so it
    // is a target for the device's silent-corruption injector. The order
    // invariant is checked unconditionally (it costs O(b) and the search
    // tree is unusable — not just wrong — on unsorted splitters).
    crate::verify::corrupt_elements(device, "splitters", splitters);
    crate::verify::check_splitters(splitters)?;

    SearchTree::rebuild_into(tree, splitters);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch::v100;
    use hpc_par::ThreadPool;

    fn setup() -> (ThreadPool, SampleSelectConfig) {
        (ThreadPool::new(2), SampleSelectConfig::default())
    }

    #[test]
    fn splitters_are_sorted_and_from_data() {
        let (pool, cfg) = setup();
        let mut device = Device::new(v100(), &pool);
        let mut rng = SplitMix64::new(1);
        let data: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.37).sin()).collect();
        let tree = sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
        let s = tree.splitters();
        assert_eq!(s.len(), cfg.num_buckets - 1);
        assert!(s.windows(2).all(|w| !w[1].lt(w[0])), "splitters sorted");
    }

    #[test]
    fn splitters_approximate_percentiles() {
        let (pool, _) = setup();
        let cfg = SampleSelectConfig::default()
            .with_buckets(16)
            .with_oversampling(64);
        let mut device = Device::new(v100(), &pool);
        let mut rng = SplitMix64::new(2);
        // Uniform data in [0, 1): the i/16 percentile is ~i/16.
        let data: Vec<f64> = (0..100_000)
            .map(|_| SplitMix64::new(rng.next_u64()).next_f64())
            .collect();
        let tree = sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
        for (i, &s) in tree.splitters().iter().enumerate() {
            let expected = (i + 1) as f64 / 16.0;
            assert!(
                (s - expected).abs() < 0.08,
                "splitter {i}: {s} vs expected {expected}"
            );
        }
    }

    #[test]
    fn records_sample_kernel_on_timeline() {
        let (pool, cfg) = setup();
        let mut device = Device::new(v100(), &pool);
        let mut rng = SplitMix64::new(3);
        let data: Vec<f32> = (0..5_000).map(|i| i as f32).collect();
        sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
        let recs = device.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "sample");
        assert_eq!(recs[0].config.blocks, 1);
        assert!(recs[0].cost.uncoalesced_bytes >= (cfg.sample_size() * 4) as u64);
        assert!(recs[0].cost.smem_bytes > 0, "bitonic sort traffic charged");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (pool, cfg) = setup();
        let data: Vec<f32> = (0..50_000).map(|i| ((i * 17) % 1000) as f32).collect();
        let mut d1 = Device::new(v100(), &pool);
        let mut d2 = Device::new(v100(), &pool);
        let t1 = sample_kernel(
            &mut d1,
            &data,
            &cfg,
            &mut SplitMix64::new(9),
            LaunchOrigin::Host,
        )
        .unwrap();
        let t2 = sample_kernel(
            &mut d2,
            &data,
            &cfg,
            &mut SplitMix64::new(9),
            LaunchOrigin::Host,
        )
        .unwrap();
        assert_eq!(t1.splitters(), t2.splitters());
    }

    #[test]
    fn small_input_smaller_than_sample() {
        let (pool, cfg) = setup();
        let mut device = Device::new(v100(), &pool);
        let mut rng = SplitMix64::new(4);
        // 10 elements but sample_size is 1024: sampling with replacement
        // still yields a valid (duplicate-heavy) splitter set.
        let data: Vec<u32> = (0..10).collect();
        let tree = sample_kernel(&mut device, &data, &cfg, &mut rng, LaunchOrigin::Host).unwrap();
        assert_eq!(tree.num_buckets(), cfg.num_buckets);
        // every data value must land in *some* bucket consistent with
        // the reference lookup
        for &x in &data {
            assert_eq!(tree.lookup(x), tree.lookup_reference(x));
        }
    }
}
