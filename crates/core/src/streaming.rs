//! Out-of-core (streaming) selection: the k-th smallest element of a
//! dataset larger than device memory.
//!
//! SampleSelect is naturally streamable because its first level only
//! needs *counts*: the histogram pass is distributive over chunks, so a
//! dataset presented as re-loadable chunks (disk shards, network parts,
//! a larger-than-VRAM host buffer) can be selected from while
//! materializing only the target bucket (`~n/b` elements) — after which
//! the ordinary in-memory driver finishes the job.
//!
//! The flow per §II's framework: sample proportionally from every chunk
//! → build the splitter tree → histogram every chunk (count-only, no
//! oracles — nothing is stored per element) → pick the bucket containing
//! the rank → re-stream, extracting only that bucket → recurse in
//! memory.

use crate::count::count_kernel;
use crate::element::SelectElement;
use crate::instrument::{ResilienceEvents, SelectReport};
use crate::params::SampleSelectConfig;
use crate::recursion::sample_select_on_device;
use crate::rng::SplitMix64;
use crate::searchtree::SearchTree;
use crate::{SelectError, SelectResult};
use gpu_sim::{Device, KernelCost, LaunchOrigin, SimTime};

/// Retries of one chunk load before the driver gives up (in addition to
/// the initial attempt). Only *transient* failures are retried.
pub const CHUNK_MAX_RETRIES: u32 = 3;

/// Simulated backoff before the first chunk-load retry; doubles on every
/// subsequent retry of the same chunk.
const CHUNK_RETRY_BACKOFF_NS: f64 = 10_000.0;

/// A failed chunk load (the streaming analogue of an I/O error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkError {
    /// Index of the chunk that failed.
    pub chunk: usize,
    /// Human-readable failure description.
    pub message: String,
    /// Whether re-reading the chunk can plausibly succeed (a timeout or
    /// flaky link) as opposed to a permanent loss (a deleted shard).
    pub transient: bool,
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let class = if self.transient {
            "transient"
        } else {
            "permanent"
        };
        write!(f, "chunk {}: {} ({class})", self.chunk, self.message)
    }
}

impl std::error::Error for ChunkError {}

/// A dataset presented as independently loadable chunks.
///
/// `load_chunk` models the I/O of an out-of-core pipeline: the driver
/// calls it multiple times (sampling pass, histogram pass, filter pass)
/// and never holds more than one chunk plus the extracted bucket in
/// memory. Loads are fallible; the driver retries transient failures
/// (with exponential backoff) up to [`CHUNK_MAX_RETRIES`] times per load
/// before surfacing [`SelectError::ChunkLoad`].
pub trait ChunkSource<T>: Sync {
    /// Number of chunks.
    fn num_chunks(&self) -> usize;
    /// Load chunk `idx` (owned: models a read from storage).
    fn load_chunk(&self, idx: usize) -> Result<Vec<T>, ChunkError>;
    /// Total number of elements across all chunks.
    fn total_len(&self) -> usize;
}

/// Load one chunk, retrying transient failures with exponential backoff
/// (charged to the simulated clock). Retries are recorded in `events`.
fn load_chunk_with_retry<T, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    idx: usize,
    events: &mut ResilienceEvents,
) -> Result<Vec<T>, SelectError> {
    let mut backoff_ns = CHUNK_RETRY_BACKOFF_NS;
    let mut retries = 0u32;
    loop {
        match source.load_chunk(idx) {
            Ok(chunk) => return Ok(chunk),
            Err(err) => {
                if !err.transient || retries >= CHUNK_MAX_RETRIES {
                    return Err(SelectError::ChunkLoad(err));
                }
                retries += 1;
                events.retry(format!(
                    "chunk {idx} load failed ({}); retry {retries}/{CHUNK_MAX_RETRIES} \
                     after {backoff_ns}ns",
                    err.message
                ));
                device.advance_time(SimTime::from_ns(backoff_ns));
                backoff_ns *= 2.0;
            }
        }
    }
}

/// The trivial in-memory chunk source: a slice viewed as fixed-size
/// chunks (useful for tests and for data that fits host RAM but not the
/// simulated device).
pub struct SliceChunks<'a, T> {
    data: &'a [T],
    chunk_len: usize,
}

impl<'a, T> SliceChunks<'a, T> {
    pub fn new(data: &'a [T], chunk_len: usize) -> Self {
        assert!(chunk_len > 0);
        Self { data, chunk_len }
    }
}

impl<T: SelectElement> ChunkSource<T> for SliceChunks<'_, T> {
    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.chunk_len).max(1)
    }

    fn load_chunk(&self, idx: usize) -> Result<Vec<T>, ChunkError> {
        let start = (idx * self.chunk_len).min(self.data.len());
        let end = ((idx + 1) * self.chunk_len).min(self.data.len());
        Ok(self.data[start..end].to_vec())
    }

    fn total_len(&self) -> usize {
        self.data.len()
    }
}

/// Result of a streaming selection, with out-of-core statistics.
#[derive(Debug, Clone)]
pub struct StreamingResult<T> {
    /// The rank-`k` element.
    pub value: T,
    /// Peak number of elements materialized at once (excluding the
    /// single resident chunk): the extracted bucket.
    pub peak_resident: usize,
    /// Measurement report of the device work.
    pub report: SelectReport,
}

/// Select the `rank`-th smallest element of a chunked dataset.
pub fn streaming_select<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<StreamingResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    let n = source.total_len();
    if n == 0 {
        return Err(SelectError::EmptyInput);
    }
    if rank >= n {
        return Err(SelectError::RankOutOfRange { rank, len: n });
    }
    let records_before = device.records().len();
    let mut rng = SplitMix64::new(cfg.seed);
    let mut events = ResilienceEvents::default();

    // Pass 1: proportional sampling across chunks (the streaming analogue
    // of the sample kernel; charged as one gather per sampled element).
    let tree = streaming_sample(device, source, cfg, &mut rng, &mut events)?;

    // Pass 2: chunkwise histogram, merged on the fly.
    let b = tree.num_buckets();
    let mut counts = vec![0u64; b];
    for c in 0..source.num_chunks() {
        let chunk = load_chunk_with_retry(device, source, c, &mut events)?;
        if chunk.is_empty() {
            continue;
        }
        let result = count_kernel(device, &chunk, &tree, cfg, false, LaunchOrigin::Host);
        for (acc, v) in counts.iter_mut().zip(result.counts.iter()) {
            *acc += v;
        }
    }
    debug_assert_eq!(counts.iter().sum::<u64>(), n as u64);

    let mut offsets = counts;
    let total = hpc_par::exclusive_scan(&mut offsets);
    debug_assert_eq!(total, n as u64);
    let bucket = hpc_par::scan::bucket_for_rank(&offsets, rank as u64);
    // the totals-scan is charged like the count-only reduce
    {
        // build a minimal CountResult-shaped charge via reduce_totals on
        // a synthetic result: cheaper to charge directly
        let mut cost = KernelCost::new();
        cost.global_read_bytes += b as u64 * 4;
        cost.global_write_bytes += b as u64 * 4;
        cost.int_ops += b as u64 * 2;
        cost.blocks = 1;
        device.commit(
            "reduce",
            gpu_sim::LaunchConfig {
                blocks: 1,
                threads_per_block: 256,
                shared_mem_bytes: 0,
            },
            LaunchOrigin::Device,
            cost,
        );
    }

    if tree.is_equality_bucket(bucket) {
        let report = SelectReport::from_records(
            "streaming-sampleselect",
            n,
            &device.records()[records_before..],
            1,
            true,
        )
        .with_resilience(events);
        return Ok(StreamingResult {
            value: tree.equality_value(bucket),
            peak_resident: 0,
            report,
        });
    }

    // Pass 3: re-stream, keeping only the target bucket.
    let lower = tree.bucket_lower(bucket);
    let upper = tree.bucket_lower(bucket + 1);
    let mut kept: Vec<T> = Vec::with_capacity(
        (offsets.get(bucket + 1).copied().unwrap_or(n as u64) - offsets[bucket]) as usize,
    );
    for c in 0..source.num_chunks() {
        let chunk = load_chunk_with_retry(device, source, c, &mut events)?;
        if chunk.is_empty() {
            continue;
        }
        let before = kept.len();
        kept.extend(chunk.iter().copied().filter(|&x| {
            let above = lower.is_none_or(|lo| !x.lt(lo));
            let below = upper.is_none_or(|hi| x.lt(hi));
            above && below
        }));
        // Charge the extraction kernel: stream read + bound compares +
        // contiguous writes of the matches.
        let mut cost = KernelCost::new();
        cost.global_read_bytes += (chunk.len() * T::BYTES) as u64;
        cost.int_ops += chunk.len() as u64 * 2;
        cost.global_write_bytes += ((kept.len() - before) * T::BYTES) as u64;
        let launch = cfg.launch_config(chunk.len(), T::BYTES);
        cost.blocks = launch.blocks as u64;
        device.commit("stream_filter", launch, LaunchOrigin::Host, cost);
    }
    let peak_resident = kept.len();
    let sub_rank = rank - offsets[bucket] as usize;
    debug_assert!(sub_rank < kept.len());

    // Finish in memory.
    let inner: SelectResult<T> = sample_select_on_device(device, &kept, sub_rank, cfg)?;
    let report = SelectReport::from_records(
        "streaming-sampleselect",
        n,
        &device.records()[records_before..],
        inner.report.levels + 1,
        inner.report.terminated_early,
    )
    .with_resilience(events);
    Ok(StreamingResult {
        value: inner.value,
        peak_resident,
        report,
    })
}

/// Proportional per-chunk sampling + splitter-tree construction.
fn streaming_sample<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    cfg: &SampleSelectConfig,
    rng: &mut SplitMix64,
    events: &mut ResilienceEvents,
) -> Result<SearchTree<T>, SelectError> {
    let n = source.total_len();
    let s = cfg.sample_size().max(cfg.num_buckets);
    let mut sample: Vec<T> = Vec::with_capacity(s + cfg.num_buckets);
    for c in 0..source.num_chunks() {
        let chunk = load_chunk_with_retry(device, source, c, events)?;
        if chunk.is_empty() {
            continue;
        }
        // proportional share, at least 1 to represent the chunk
        let share = ((s as u128 * chunk.len() as u128) / n as u128).max(1) as usize;
        for _ in 0..share {
            sample.push(chunk[rng.next_below(chunk.len())]);
        }
    }
    let mut cost = KernelCost::new();
    cost.blocks = 1;
    cost.uncoalesced_bytes += (sample.len() * T::BYTES) as u64;
    let stats = crate::bitonic::bitonic_sort(&mut sample);
    stats.charge::<T>(&mut cost);
    cost.global_write_bytes += ((cfg.num_buckets - 1) * T::BYTES) as u64;
    device.commit(
        "sample",
        gpu_sim::LaunchConfig {
            blocks: 1,
            threads_per_block: cfg.threads_per_block,
            shared_mem_bytes: (sample.len() * T::BYTES) as u32,
        },
        LaunchOrigin::Host,
        cost,
    );
    let m = sample.len();
    let splitters: Vec<T> = (1..cfg.num_buckets)
        .map(|i| sample[(i * m / cfg.num_buckets).min(m - 1)])
        .collect();
    Ok(SearchTree::build(&splitters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use gpu_sim::arch::v100;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn run(data: &[f32], chunk: usize, rank: usize) -> StreamingResult<f32> {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let source = SliceChunks::new(data, chunk);
        streaming_select(&mut device, &source, rank, &SampleSelectConfig::default()).unwrap()
    }

    #[test]
    fn matches_reference_across_chunk_sizes() {
        let data = uniform(300_000, 1);
        for chunk in [1 << 14, 1 << 16, 1 << 20 /* single chunk */] {
            for rank in [0usize, 150_000, 299_999] {
                let res = run(&data, chunk, rank);
                assert_eq!(
                    res.value,
                    reference_select(&data, rank).unwrap(),
                    "chunk {chunk} rank {rank}"
                );
            }
        }
    }

    #[test]
    fn peak_residency_is_a_small_fraction_of_n() {
        let data = uniform(1 << 20, 2);
        let res = run(&data, 1 << 16, 1 << 19);
        // one bucket of 256 (+ sampling imbalance) — far below n
        assert!(
            res.peak_resident < data.len() / 32,
            "resident {} of {}",
            res.peak_resident,
            data.len()
        );
    }

    #[test]
    fn duplicate_heavy_stream_terminates_early() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<f32> = (0..200_000)
            .map(|_| (rng.next_below(8) as f32) * 1.5)
            .collect();
        let res = run(&data, 1 << 15, 100_000);
        assert_eq!(res.value, reference_select(&data, 100_000).unwrap());
        assert!(res.report.terminated_early);
        assert_eq!(res.peak_resident, 0, "nothing materialized on early exit");
    }

    #[test]
    fn uneven_tail_chunk_handled() {
        let data = uniform(100_001, 4); // not divisible by the chunk size
        let res = run(&data, 1 << 14, 50_000);
        assert_eq!(res.value, reference_select(&data, 50_000).unwrap());
    }

    #[test]
    fn errors_propagate() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let empty: Vec<f32> = vec![];
        let source = SliceChunks::new(&empty, 16);
        assert_eq!(
            streaming_select(&mut device, &source, 0, &SampleSelectConfig::default()).unwrap_err(),
            SelectError::EmptyInput
        );
        let data = vec![1.0f32; 10];
        let source = SliceChunks::new(&data, 4);
        assert!(matches!(
            streaming_select(&mut device, &source, 10, &SampleSelectConfig::default()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
    }

    #[test]
    fn report_shows_per_chunk_passes() {
        let data = uniform(1 << 18, 5);
        let res = run(&data, 1 << 15, 1 << 17);
        // 8 chunks: 8 count passes + >= some stream_filter passes
        assert_eq!(res.report.kernel_launches("count_nowrite"), 8);
        assert!(res.report.kernel_launches("stream_filter") == 8);
        assert!(res.report.kernel_launches("sample") >= 1);
    }

    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A chunk source whose `target` chunk fails its first `fail_times`
    /// loads before recovering (or never recovers, if permanent).
    struct FlakyChunks<'a> {
        inner: SliceChunks<'a, f32>,
        target: usize,
        fail_times: usize,
        transient: bool,
        failures: AtomicUsize,
    }

    impl<'a> FlakyChunks<'a> {
        fn new(data: &'a [f32], chunk_len: usize, target: usize, fail_times: usize) -> Self {
            Self {
                inner: SliceChunks::new(data, chunk_len),
                target,
                fail_times,
                transient: true,
                failures: AtomicUsize::new(0),
            }
        }
    }

    impl ChunkSource<f32> for FlakyChunks<'_> {
        fn num_chunks(&self) -> usize {
            self.inner.num_chunks()
        }

        fn load_chunk(&self, idx: usize) -> Result<Vec<f32>, ChunkError> {
            if idx == self.target && self.failures.load(Ordering::SeqCst) < self.fail_times {
                self.failures.fetch_add(1, Ordering::SeqCst);
                return Err(ChunkError {
                    chunk: idx,
                    message: "simulated read failure".to_string(),
                    transient: self.transient,
                });
            }
            self.inner.load_chunk(idx)
        }

        fn total_len(&self) -> usize {
            self.inner.total_len()
        }
    }

    #[test]
    fn transient_chunk_failures_are_retried() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(1 << 17, 6);
        let source = FlakyChunks::new(&data, 1 << 15, 2, 2);
        let res = streaming_select(
            &mut device,
            &source,
            1 << 16,
            &SampleSelectConfig::default(),
        )
        .unwrap();
        assert_eq!(res.value, reference_select(&data, 1 << 16).unwrap());
        assert_eq!(res.report.resilience.retries, 2);
        assert!(res.report.resilience.log[0].contains("chunk 2"));
        // backoff advanced the simulated clock
        assert!(device.now() > SimTime::ZERO);
    }

    #[test]
    fn permanent_chunk_failure_is_not_retried() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(1 << 16, 7);
        let mut source = FlakyChunks::new(&data, 1 << 14, 1, usize::MAX);
        source.transient = false;
        let err = streaming_select(&mut device, &source, 100, &SampleSelectConfig::default())
            .unwrap_err();
        match err {
            SelectError::ChunkLoad(e) => {
                assert_eq!(e.chunk, 1);
                assert!(!e.transient);
            }
            other => panic!("expected ChunkLoad, got {other}"),
        }
        // exactly one attempt: permanent errors short-circuit
        assert_eq!(source.failures.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chunk_retries_are_bounded() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(1 << 16, 8);
        let source = FlakyChunks::new(&data, 1 << 14, 0, usize::MAX);
        let err = streaming_select(&mut device, &source, 100, &SampleSelectConfig::default())
            .unwrap_err();
        assert!(err.is_transient(), "exhausted retries keep the fault class");
        assert!(matches!(err, SelectError::ChunkLoad(_)));
        // initial attempt + CHUNK_MAX_RETRIES retries, then give up
        assert_eq!(
            source.failures.load(Ordering::SeqCst),
            1 + CHUNK_MAX_RETRIES as usize
        );
    }
}
