//! Out-of-core (streaming) selection: the k-th smallest element of a
//! dataset larger than device memory.
//!
//! SampleSelect is naturally streamable because its first level only
//! needs *counts*: the histogram pass is distributive over chunks, so a
//! dataset presented as re-loadable chunks (disk shards, network parts,
//! a larger-than-VRAM host buffer) can be selected from while
//! materializing only the target bucket (`~n/b` elements) — after which
//! the ordinary in-memory driver finishes the job.
//!
//! The flow per §II's framework: sample proportionally from every chunk
//! → build the splitter tree → histogram every chunk (count-only, no
//! oracles — nothing is stored per element) → pick the bucket containing
//! the rank → re-stream, extracting only that bucket → recurse in
//! memory.
//!
//! ## Checkpoint / resume
//!
//! Long out-of-core runs outlive processes: the host gets preempted, the
//! job is killed, the machine reboots. Every pass of the streaming
//! pipeline is chunk-incremental, so the full driver state between two
//! chunk loads is tiny — the partial sample (or the splitters), the
//! merged histogram, the surviving-candidate buffer, the RNG state, and
//! the position in the pipeline. [`streaming_select_with_checkpoint`]
//! persists exactly that after every chunk into a versioned, checksummed
//! checkpoint file and can resume a killed run from it, reproducing the
//! uninterrupted run bit for bit (the RNG state makes the sampling pass
//! deterministic across the kill). A corrupted or mismatched checkpoint
//! is detected by its FNV-1a checksum / run fingerprint and degrades to
//! a clean restart, never to silently wrong state.

use crate::count::count_kernel_scoped;
use crate::element::SelectElement;
use crate::instrument::{ResilienceEvents, SelectReport};
use crate::obs::{self, Counter, Histogram, SpanKind};
use crate::params::SampleSelectConfig;
use crate::recursion::{recycle_count, sample_select_on_device};
use crate::rng::SplitMix64;
use crate::searchtree::SearchTree;
use crate::shard::ShardTopology;
use crate::verify::{check_filter_size, check_histogram, check_splitters};
use crate::workspace::KernelScratch;
use crate::{SelectError, SelectResult};
use gpu_sim::{Device, KernelCost, LaunchOrigin, SimTime};
use std::path::Path;
use std::sync::Mutex;

/// Retries of one chunk load before the driver gives up (in addition to
/// the initial attempt). Only *transient* failures are retried.
pub const CHUNK_MAX_RETRIES: u32 = 3;

/// Simulated backoff before the first chunk-load retry; doubles on every
/// subsequent retry of the same chunk.
const CHUNK_RETRY_BACKOFF_NS: f64 = 10_000.0;

/// A failed chunk load (the streaming analogue of an I/O error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkError {
    /// Index of the chunk that failed.
    pub chunk: usize,
    /// Human-readable failure description.
    pub message: String,
    /// Whether re-reading the chunk can plausibly succeed (a timeout or
    /// flaky link) as opposed to a permanent loss (a deleted shard).
    pub transient: bool,
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let class = if self.transient {
            "transient"
        } else {
            "permanent"
        };
        write!(f, "chunk {}: {} ({class})", self.chunk, self.message)
    }
}

impl std::error::Error for ChunkError {}

/// A dataset presented as independently loadable chunks.
///
/// `load_chunk` models the I/O of an out-of-core pipeline: the driver
/// calls it multiple times (sampling pass, histogram pass, filter pass)
/// and never holds more than one chunk plus the extracted bucket in
/// memory. Loads are fallible; the driver retries transient failures
/// (with exponential backoff) up to [`CHUNK_MAX_RETRIES`] times per load
/// before surfacing [`SelectError::ChunkLoad`].
pub trait ChunkSource<T>: Sync {
    /// Number of chunks.
    fn num_chunks(&self) -> usize;
    /// Load chunk `idx` (owned: models a read from storage).
    fn load_chunk(&self, idx: usize) -> Result<Vec<T>, ChunkError>;
    /// Total number of elements across all chunks.
    fn total_len(&self) -> usize;
    /// Human-readable name of the backing source, used in retry and
    /// give-up diagnostics (a file path, a shard set, an URL prefix).
    fn source_name(&self) -> &str {
        "chunks"
    }
    /// Byte offset of chunk `idx` within the backing source, when the
    /// source is a contiguous byte stream; `None` for sources without a
    /// meaningful linear layout.
    fn chunk_byte_offset(&self, idx: usize) -> Option<u64> {
        let _ = idx;
        None
    }
}

/// Load one chunk, retrying transient failures with exponential backoff
/// (charged to the simulated clock). Retries are recorded in `events`.
///
/// `prefetched` carries the result of a first load attempt that was
/// issued ahead of time on the host thread pool (see the pipelined
/// passes in [`streaming_select_impl`]); when present, it replaces the
/// synchronous first attempt and the retry ladder continues from there,
/// so prefetching never changes retry counts, backoff, or diagnostics.
pub(crate) fn load_chunk_with_retry<T, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    idx: usize,
    prefetched: Option<Result<Vec<T>, ChunkError>>,
    events: &mut ResilienceEvents,
) -> Result<Vec<T>, SelectError> {
    let mut backoff_ns = CHUNK_RETRY_BACKOFF_NS;
    let mut retries = 0u32;
    let mut attempt = match prefetched {
        Some(first) => first,
        None => source.load_chunk(idx),
    };
    loop {
        match attempt {
            Ok(chunk) => {
                obs::counter_add(Counter::StreamingChunks, 1);
                obs::observe(Histogram::ChunkLoadRetries, retries as u64);
                return Ok(chunk);
            }
            Err(err) => {
                if !err.transient || retries >= CHUNK_MAX_RETRIES {
                    return Err(SelectError::ChunkLoad(err));
                }
                retries += 1;
                // Identify the chunk the way an operator would look it
                // up: index, byte offset, and the backing source's name.
                let position = match source.chunk_byte_offset(idx) {
                    Some(off) => {
                        format!("chunk {idx} at byte {off} of `{}`", source.source_name())
                    }
                    None => format!("chunk {idx} of `{}`", source.source_name()),
                };
                events.retry(format!(
                    "{position} load failed ({}); retry {retries}/{CHUNK_MAX_RETRIES} \
                     after {backoff_ns}ns",
                    err.message
                ));
                device.advance_time(SimTime::from_ns(backoff_ns));
                backoff_ns *= 2.0;
                attempt = source.load_chunk(idx);
            }
        }
    }
}

/// The trivial in-memory chunk source: a slice viewed as fixed-size
/// chunks (useful for tests and for data that fits host RAM but not the
/// simulated device).
pub struct SliceChunks<'a, T> {
    data: &'a [T],
    chunk_len: usize,
}

impl<'a, T> SliceChunks<'a, T> {
    pub fn new(data: &'a [T], chunk_len: usize) -> Self {
        assert!(chunk_len > 0);
        Self { data, chunk_len }
    }
}

impl<T: SelectElement> ChunkSource<T> for SliceChunks<'_, T> {
    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.chunk_len).max(1)
    }

    fn load_chunk(&self, idx: usize) -> Result<Vec<T>, ChunkError> {
        let start = (idx * self.chunk_len).min(self.data.len());
        let end = ((idx + 1) * self.chunk_len).min(self.data.len());
        Ok(self.data[start..end].to_vec())
    }

    fn total_len(&self) -> usize {
        self.data.len()
    }

    fn source_name(&self) -> &str {
        "host-slice"
    }

    fn chunk_byte_offset(&self, idx: usize) -> Option<u64> {
        let start = (idx * self.chunk_len).min(self.data.len());
        Some((start * T::BYTES) as u64)
    }
}

/// Result of a streaming selection, with out-of-core statistics.
#[derive(Debug, Clone)]
pub struct StreamingResult<T> {
    /// The rank-`k` element.
    pub value: T,
    /// Peak number of elements materialized at once (excluding the
    /// single resident chunk): the extracted bucket.
    pub peak_resident: usize,
    /// Measurement report of the device work.
    pub report: SelectReport,
}

// ---------------------------------------------------------------------
// Checkpoint format
// ---------------------------------------------------------------------

/// File magic of a streaming checkpoint ("SampleSelect ChecKpoint").
/// Shared with the quantile-stream checkpoint (`quantile_stream`), which
/// reuses the same envelope (magic, version, FNV-1a trailer) with its
/// own fingerprint and body.
pub(crate) const CHECKPOINT_MAGIC: [u8; 4] = *b"SSCK";
/// Format version; bumped on any layout change. Version 2 added the
/// shard topology (shard count + partition-boundary hash) to the
/// fingerprint, so a run resumed under a different `--shards` value is
/// rejected instead of silently replaying a foreign partition plan.
/// Version 3 added `elements_seen` to the sampling-pass state, needed
/// for the exact-total per-chunk sample shares (the cumulative-floor
/// distribution is a function of the elements already streamed, which a
/// resumed run can no longer infer from the chunk index alone when
/// chunk sizes vary).
const CHECKPOINT_VERSION: u32 = 3;

/// Pipeline positions a checkpoint can record.
const PHASE_SAMPLE: u8 = 0;
const PHASE_COUNT: u8 = 1;
const PHASE_FILTER: u8 = 2;

/// Identity of a run: a checkpoint written by a different job (other
/// seed, size, rank, chunking, bucket count, shard topology, or element
/// width) must never be resumed into this one.
struct Fingerprint {
    seed: u64,
    n: u64,
    rank: u64,
    num_chunks: u64,
    num_buckets: u64,
    /// Number of device shards the run partitions data across
    /// (1 for plain single-device streaming).
    shards: u64,
    /// FNV-1a over the shard partition boundaries
    /// ([`ShardTopology::fingerprint`]): two runs with the same shard
    /// count but different partition boundaries are still different runs.
    topology_hash: u64,
    elem_bytes: u8,
}

/// Everything needed to restart the pipeline between two chunk loads.
#[derive(Debug)]
struct CheckpointState<T> {
    /// Which pass was running ([`PHASE_SAMPLE`] / [`PHASE_COUNT`] /
    /// [`PHASE_FILTER`]).
    phase: u8,
    /// First chunk of that pass not yet processed.
    next_chunk: u64,
    /// Sampling RNG state *after* the last processed chunk, so a resumed
    /// sampling pass draws the exact same positions the uninterrupted
    /// run would have.
    rng_state: u64,
    /// Elements streamed by the sampling pass so far (sampling pass
    /// only): the cumulative-floor share of the next chunk depends on
    /// it, and with variable chunk sizes it cannot be reconstructed from
    /// `next_chunk`.
    elements_seen: u64,
    /// Partial proportional sample (sampling pass only).
    sample: Vec<T>,
    /// Finished splitters (later passes).
    splitters: Vec<T>,
    /// Merged histogram so far.
    counts: Vec<u64>,
    /// Surviving candidates extracted so far (filter pass).
    kept: Vec<T>,
}

impl<T> CheckpointState<T> {
    fn fresh(seed: u64) -> Self {
        Self {
            phase: PHASE_SAMPLE,
            next_chunk: 0,
            rng_state: seed,
            elements_seen: 0,
            sample: Vec::new(),
            splitters: Vec::new(),
            counts: Vec::new(),
            kept: Vec::new(),
        }
    }
}

/// FNV-1a 64-bit, the checkpoint's end-to-end checksum: cheap, no
/// dependencies, and a single flipped bit anywhere in the file changes
/// it.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

pub(crate) fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_elems<T: SelectElement>(out: &mut Vec<u8>, elems: &[T]) {
    push_u64(out, elems.len() as u64);
    for &x in elems {
        push_u64(out, x.to_bits_u64());
    }
}

/// Serialize a checkpoint: magic, version, fingerprint, pipeline
/// position, four length-prefixed arrays (all little-endian, elements as
/// lossless 64-bit images), and a trailing FNV-1a checksum over
/// everything before it.
fn encode_checkpoint<T: SelectElement>(fp: &Fingerprint, state: &CheckpointState<T>) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + 8
            * (state.sample.len() + state.splitters.len() + state.counts.len() + state.kept.len()),
    );
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    push_u64(&mut out, fp.seed);
    push_u64(&mut out, fp.n);
    push_u64(&mut out, fp.rank);
    push_u64(&mut out, fp.num_chunks);
    push_u64(&mut out, fp.num_buckets);
    push_u64(&mut out, fp.shards);
    push_u64(&mut out, fp.topology_hash);
    out.push(fp.elem_bytes);
    out.push(state.phase);
    push_u64(&mut out, state.next_chunk);
    push_u64(&mut out, state.rng_state);
    push_u64(&mut out, state.elements_seen);
    push_elems(&mut out, &state.sample);
    push_elems(&mut out, &state.splitters);
    push_u64(&mut out, state.counts.len() as u64);
    for &c in &state.counts {
        push_u64(&mut out, c);
    }
    push_elems(&mut out, &state.kept);
    let checksum = fnv1a64(&out);
    push_u64(&mut out, checksum);
    out
}

pub(crate) struct Cursor<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "truncated checkpoint".to_string())?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn elems<T: SelectElement>(&mut self, max_len: u64) -> Result<Vec<T>, String> {
        let len = self.u64()?;
        if len > max_len {
            return Err(format!("implausible array length {len}"));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(T::from_bits_u64(self.u64()?));
        }
        Ok(out)
    }
}

/// Parse and validate a checkpoint. Every rejection reason is a
/// human-readable string; callers log it and fall back to a clean
/// restart — a bad checkpoint must never poison a run.
fn decode_checkpoint<T: SelectElement>(
    bytes: &[u8],
    fp: &Fingerprint,
) -> Result<CheckpointState<T>, String> {
    if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
        return Err("file too short".to_string());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        ));
    }
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    if cur.take(4)? != CHECKPOINT_MAGIC {
        return Err("bad magic".to_string());
    }
    let version = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
    if version != CHECKPOINT_VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let seed = cur.u64()?;
    let n = cur.u64()?;
    let rank = cur.u64()?;
    let num_chunks = cur.u64()?;
    let num_buckets = cur.u64()?;
    let shards = cur.u64()?;
    let topology_hash = cur.u64()?;
    let elem_bytes = cur.u8()?;
    if shards != fp.shards || topology_hash != fp.topology_hash {
        // Called out separately from the generic mismatch: resuming with
        // a different `--shards` is the one fingerprint drift an operator
        // plausibly causes on purpose, and the message should say so.
        return Err(format!(
            "shard topology changed: checkpoint written with {shards} shard(s), \
             resuming with {}",
            fp.shards
        ));
    }
    if seed != fp.seed
        || n != fp.n
        || rank != fp.rank
        || num_chunks != fp.num_chunks
        || num_buckets != fp.num_buckets
        || elem_bytes != fp.elem_bytes
    {
        return Err("fingerprint mismatch: checkpoint belongs to a different run".to_string());
    }
    let phase = cur.u8()?;
    if phase > PHASE_FILTER {
        return Err(format!("invalid phase {phase}"));
    }
    let next_chunk = cur.u64()?;
    if next_chunk > fp.num_chunks {
        return Err(format!(
            "next chunk {next_chunk} beyond {num_chunks} chunks"
        ));
    }
    let rng_state = cur.u64()?;
    let elements_seen = cur.u64()?;
    if elements_seen > fp.n {
        return Err(format!(
            "implausible elements_seen {elements_seen} for n = {}",
            fp.n
        ));
    }
    let sample: Vec<T> = cur.elems(fp.n)?;
    let splitters: Vec<T> = cur.elems(fp.num_buckets)?;
    let counts_len = cur.u64()?;
    if counts_len > fp.num_buckets {
        return Err(format!("implausible histogram length {counts_len}"));
    }
    let mut counts = Vec::with_capacity(counts_len as usize);
    for _ in 0..counts_len {
        counts.push(cur.u64()?);
    }
    let kept: Vec<T> = cur.elems(fp.n)?;
    if cur.pos != body.len() {
        return Err("trailing garbage after checkpoint payload".to_string());
    }
    if phase > PHASE_SAMPLE && splitters.len() as u64 != fp.num_buckets - 1 {
        return Err(format!(
            "phase {phase} checkpoint carries {} splitters, expected {}",
            splitters.len(),
            fp.num_buckets - 1
        ));
    }
    if phase > PHASE_COUNT && counts.len() as u64 != fp.num_buckets {
        return Err(format!(
            "phase {phase} checkpoint carries {} bucket counts, expected {num_buckets}",
            counts.len()
        ));
    }
    Ok(CheckpointState {
        phase,
        next_chunk,
        rng_state,
        elements_seen,
        sample,
        splitters,
        counts,
        kept,
    })
}

/// Atomically persist the current pipeline state: serialize, write to a
/// sibling temp file, rename over the target. A failed write is logged
/// and otherwise ignored — checkpointing is best-effort and must never
/// fail the selection itself.
fn save_checkpoint<T: SelectElement>(
    path: Option<&Path>,
    fp: &Fingerprint,
    state: &CheckpointState<T>,
    events: &mut ResilienceEvents,
) {
    let Some(path) = path else { return };
    let bytes = encode_checkpoint(fp, state);
    let tmp = path.with_extension("ckpt-tmp");
    let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(err) = result {
        events.checkpoint_note(format!("write to `{}` failed ({err})", path.display()));
    }
}

fn delete_checkpoint(path: Option<&Path>) {
    if let Some(path) = path {
        let _ = std::fs::remove_file(path);
    }
}

/// How many of the `s` sample draws the sampling pass spends on a chunk
/// of `len` elements arriving after `seen` elements have already been
/// streamed (total stream length `n`): the number of integer boundaries
/// the scaled cumulative position `s·seen/n` crosses while advancing by
/// `len` elements.
///
/// The telescoping sum over a chunking of the stream collapses to
/// `floor(s·n/n) - floor(0) = s` exactly — this IS the largest-remainder
/// apportionment applied in chunk-index order. The previous per-chunk
/// `floor(s·len/n).max(1)` drifted from `s` in both directions: many
/// tiny chunks each rounded up to 1 inflated the sample (and with it the
/// simulated sort cost), while mid-size chunks all rounding down could
/// starve it below the configured size.
pub(crate) fn chunk_sample_share(s: usize, n: usize, seen: u64, len: usize) -> usize {
    debug_assert!(seen as u128 + len as u128 <= n as u128);
    let s = s as u128;
    let n = n as u128;
    let before = s * seen as u128 / n;
    let after = s * (seen as u128 + len as u128) / n;
    (after - before) as usize
}

/// Select the `rank`-th smallest element of a chunked dataset.
pub fn streaming_select<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    rank: usize,
    cfg: &SampleSelectConfig,
) -> Result<StreamingResult<T>, SelectError> {
    streaming_select_impl(device, source, rank, cfg, None, false, None)
}

/// [`streaming_select`] with crash tolerance: persist a checkpoint to
/// `checkpoint` after every processed chunk, and (with `resume`) restart
/// from an existing checkpoint instead of from scratch.
///
/// Resuming reproduces the uninterrupted run exactly — the checkpoint
/// carries the sampling RNG state, so the splitters (and with them every
/// downstream buffer) come out bit-identical. The checkpoint file is
/// deleted once the run completes. An unreadable, corrupted
/// (checksum-mismatched), or foreign (fingerprint-mismatched) checkpoint
/// is rejected with a logged event and the run restarts cleanly.
pub fn streaming_select_with_checkpoint<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    rank: usize,
    cfg: &SampleSelectConfig,
    checkpoint: &Path,
    resume: bool,
) -> Result<StreamingResult<T>, SelectError> {
    streaming_select_impl(device, source, rank, cfg, Some(checkpoint), resume, None)
}

/// [`streaming_select_with_checkpoint`] for a run that is part of a
/// sharded deployment: the shard topology (shard count and partition
/// boundaries, see [`ShardTopology`]) is baked into the checkpoint
/// fingerprint, so a `--resume` under a different `--shards` value is
/// rejected with a logged [`ResilienceEvent`] and the run restarts
/// cleanly instead of replaying a foreign partition plan.
pub fn streaming_select_with_topology<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    rank: usize,
    cfg: &SampleSelectConfig,
    checkpoint: &Path,
    resume: bool,
    topology: &ShardTopology,
) -> Result<StreamingResult<T>, SelectError> {
    streaming_select_impl(
        device,
        source,
        rank,
        cfg,
        Some(checkpoint),
        resume,
        Some(topology),
    )
}

fn streaming_select_impl<T: SelectElement, S: ChunkSource<T>>(
    device: &mut Device,
    source: &S,
    rank: usize,
    cfg: &SampleSelectConfig,
    checkpoint: Option<&Path>,
    resume: bool,
    topology: Option<&ShardTopology>,
) -> Result<StreamingResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    let n = source.total_len();
    if n == 0 {
        return Err(SelectError::EmptyInput);
    }
    if rank >= n {
        return Err(SelectError::RankOutOfRange { rank, len: n });
    }
    let records_before = device.records().len();
    obs::span_enter(
        SpanKind::Query,
        "streaming-sampleselect",
        0,
        device.now().as_ns(),
    );
    let mut events = ResilienceEvents::default();
    let b = cfg.num_buckets;
    let single = ShardTopology::single(n);
    let topology = topology.unwrap_or(&single);
    let fp = Fingerprint {
        seed: cfg.seed,
        n: n as u64,
        rank: rank as u64,
        num_chunks: source.num_chunks() as u64,
        num_buckets: b as u64,
        shards: topology.shards() as u64,
        topology_hash: topology.fingerprint(),
        elem_bytes: T::BYTES as u8,
    };

    let mut state = CheckpointState::<T>::fresh(cfg.seed);
    if resume {
        if let Some(path) = checkpoint {
            match std::fs::read(path) {
                Ok(bytes) => match decode_checkpoint::<T>(&bytes, &fp) {
                    Ok(restored) => {
                        events.resume(format!(
                            "phase {} at chunk {} from `{}`",
                            restored.phase,
                            restored.next_chunk,
                            path.display()
                        ));
                        state = restored;
                    }
                    Err(msg) => {
                        events.corruption(format!(
                            "checkpoint `{}` rejected ({msg}); clean restart",
                            path.display()
                        ));
                    }
                },
                Err(err) => {
                    events.checkpoint_note(format!(
                        "`{}` unreadable ({err}); clean restart",
                        path.display()
                    ));
                }
            }
        }
    }

    // Pass 1: proportional sampling across chunks (the streaming analogue
    // of the sample kernel; charged as one gather per sampled element).
    let mut rng = SplitMix64::from_state(state.rng_state);
    if state.phase == PHASE_SAMPLE {
        let s = cfg.sample_size().max(b);
        let mut sample = std::mem::take(&mut state.sample);
        for c in (state.next_chunk as usize)..source.num_chunks() {
            obs::span_enter(
                SpanKind::Chunk,
                "sample_pass",
                c as u64,
                device.now().as_ns(),
            );
            let chunk = load_chunk_with_retry(device, source, c, None, &mut events)?;
            let share = chunk_sample_share(s, n, state.elements_seen, chunk.len());
            for _ in 0..share {
                sample.push(chunk[rng.next_below(chunk.len())]);
            }
            state.elements_seen += chunk.len() as u64;
            state.next_chunk = c as u64 + 1;
            state.rng_state = rng.state();
            state.sample = sample;
            save_checkpoint(checkpoint, &fp, &state, &mut events);
            sample = std::mem::take(&mut state.sample);
            obs::span_exit(device.now().as_ns());
        }
        let mut cost = KernelCost::new();
        cost.blocks = 1;
        cost.uncoalesced_bytes += (sample.len() * T::BYTES) as u64;
        let stats = crate::bitonic::bitonic_sort(&mut sample);
        stats.charge::<T>(&mut cost);
        cost.global_write_bytes += ((b - 1) * T::BYTES) as u64;
        device.commit(
            "sample",
            gpu_sim::LaunchConfig {
                blocks: 1,
                threads_per_block: cfg.threads_per_block,
                shared_mem_bytes: (sample.len() * T::BYTES) as u32,
            },
            LaunchOrigin::Host,
            cost,
        );
        let m = sample.len();
        let mut splitters: Vec<T> = (1..b).map(|i| sample[(i * m / b).min(m - 1)]).collect();
        // Like the in-memory sample kernel, the splitter buffer sits in
        // global memory and is exposed to the bit-flip injector.
        crate::verify::corrupt_elements(device, "splitters", &mut splitters);
        state.phase = PHASE_COUNT;
        state.next_chunk = 0;
        state.splitters = splitters;
        save_checkpoint(checkpoint, &fp, &state, &mut events);
    }
    // Checked unconditionally — the splitters may have been corrupted in
    // device memory (above) or loaded from an untrusted checkpoint, and
    // `SearchTree::build` requires sorted input.
    check_splitters(&state.splitters)?;
    let tree = SearchTree::build(&state.splitters);

    // Pass 2: chunkwise histogram, merged on the fly. With
    // `cfg.stream_prefetch` the first load attempt of chunk c+1 is
    // issued on the host pool while chunk c is being counted
    // (double-buffered I/O); retries, events, checkpoints, and the
    // kernel schedule are bit-identical to the sequential pass.
    if state.phase == PHASE_COUNT {
        let pool = device.pool();
        let num_chunks = source.num_chunks();
        let scratch = KernelScratch::new();
        let mut staged: Option<Result<Vec<T>, ChunkError>> = None;
        let mut counts = if state.counts.len() == b {
            std::mem::take(&mut state.counts)
        } else {
            vec![0u64; b]
        };
        for c in (state.next_chunk as usize)..num_chunks {
            obs::span_enter(
                SpanKind::Chunk,
                "count_pass",
                c as u64,
                device.now().as_ns(),
            );
            let chunk = load_chunk_with_retry(device, source, c, staged.take(), &mut events)?;
            let mut count_chunk = |device: &mut Device| {
                if chunk.is_empty() {
                    return;
                }
                let result = count_kernel_scoped(
                    device,
                    &chunk,
                    &tree,
                    cfg,
                    false,
                    LaunchOrigin::Host,
                    &scratch,
                );
                for (acc, v) in counts.iter_mut().zip(result.counts.iter()) {
                    *acc += v;
                }
                recycle_count(device, result);
            };
            if cfg.stream_prefetch && c + 1 < num_chunks {
                let slot: Mutex<Option<Result<Vec<T>, ChunkError>>> = Mutex::new(None);
                pool.scope(|s| {
                    s.spawn(|| *slot.lock().unwrap() = Some(source.load_chunk(c + 1)));
                    count_chunk(device);
                });
                staged = slot.into_inner().unwrap();
            } else {
                count_chunk(device);
            }
            state.next_chunk = c as u64 + 1;
            state.counts = counts;
            save_checkpoint(checkpoint, &fp, &state, &mut events);
            counts = std::mem::take(&mut state.counts);
            obs::span_exit(device.now().as_ns());
        }
        state.phase = PHASE_FILTER;
        state.next_chunk = 0;
        state.counts = counts;
        save_checkpoint(checkpoint, &fp, &state, &mut events);
    }
    // The merged histogram feeds the bucket search below; a corrupted
    // count would silently misroute the recursion, so the sum invariant
    // is checked unconditionally (it costs O(b)).
    check_histogram(&state.counts, n)?;

    // Prefix-sum the histogram into a pooled buffer — the sequential
    // clone here used to be the only per-query allocation between the
    // count and filter passes.
    let mut offsets = device.lease_vec::<u64>(state.counts.len(), "stream-offsets");
    offsets.extend_from_slice(&state.counts);
    let total = hpc_par::exclusive_scan(&mut offsets);
    debug_assert_eq!(total, n as u64);
    let bucket = hpc_par::scan::bucket_for_rank(&offsets, rank as u64);
    // the totals-scan is charged like the count-only reduce
    {
        // build a minimal CountResult-shaped charge via reduce_totals on
        // a synthetic result: cheaper to charge directly
        let mut cost = KernelCost::new();
        cost.global_read_bytes += b as u64 * 4;
        cost.global_write_bytes += b as u64 * 4;
        cost.int_ops += b as u64 * 2;
        cost.blocks = 1;
        device.commit(
            "reduce",
            gpu_sim::LaunchConfig {
                blocks: 1,
                threads_per_block: 256,
                shared_mem_bytes: 0,
            },
            LaunchOrigin::Device,
            cost,
        );
    }

    if tree.is_equality_bucket(bucket) {
        device.recycle_vec("stream-offsets", offsets);
        delete_checkpoint(checkpoint);
        obs::absorb_device(device);
        obs::pool_sample(device);
        obs::span_exit(device.now().as_ns());
        let report = SelectReport::from_records(
            "streaming-sampleselect",
            n,
            &device.records()[records_before..],
            1,
            true,
        )
        .with_resilience(events);
        return Ok(StreamingResult {
            value: tree.equality_value(bucket),
            peak_resident: 0,
            report,
        });
    }

    // Pass 3: re-stream, keeping only the target bucket. Prefetched
    // like the histogram pass: chunk c+1 loads on the pool while chunk
    // c's bound-compare extraction runs.
    let lower = tree.bucket_lower(bucket);
    let upper = tree.bucket_lower(bucket + 1);
    let mut kept = std::mem::take(&mut state.kept);
    kept.reserve((offsets.get(bucket + 1).copied().unwrap_or(n as u64) - offsets[bucket]) as usize);
    {
        let pool = device.pool();
        let num_chunks = source.num_chunks();
        let mut staged: Option<Result<Vec<T>, ChunkError>> = None;
        for c in (state.next_chunk as usize)..num_chunks {
            obs::span_enter(
                SpanKind::Chunk,
                "filter_pass",
                c as u64,
                device.now().as_ns(),
            );
            let chunk = load_chunk_with_retry(device, source, c, staged.take(), &mut events)?;
            let mut filter_chunk = |device: &mut Device| {
                if chunk.is_empty() {
                    return;
                }
                let before = kept.len();
                kept.extend(chunk.iter().copied().filter(|&x| {
                    let above = lower.is_none_or(|lo| !x.lt(lo));
                    let below = upper.is_none_or(|hi| x.lt(hi));
                    above && below
                }));
                // Charge the extraction kernel: stream read + bound
                // compares + contiguous writes of the matches.
                let mut cost = KernelCost::new();
                cost.global_read_bytes += (chunk.len() * T::BYTES) as u64;
                cost.int_ops += chunk.len() as u64 * 2;
                cost.global_write_bytes += ((kept.len() - before) * T::BYTES) as u64;
                let launch = cfg.launch_config(chunk.len(), T::BYTES);
                cost.blocks = launch.blocks as u64;
                device.commit("stream_filter", launch, LaunchOrigin::Host, cost);
            };
            if cfg.stream_prefetch && c + 1 < num_chunks {
                let slot: Mutex<Option<Result<Vec<T>, ChunkError>>> = Mutex::new(None);
                pool.scope(|s| {
                    s.spawn(|| *slot.lock().unwrap() = Some(source.load_chunk(c + 1)));
                    filter_chunk(device);
                });
                staged = slot.into_inner().unwrap();
            } else {
                filter_chunk(device);
            }
            state.next_chunk = c as u64 + 1;
            state.kept = kept;
            save_checkpoint(checkpoint, &fp, &state, &mut events);
            kept = std::mem::take(&mut state.kept);
            obs::span_exit(device.now().as_ns());
        }
    }
    if cfg.verify.spot_checks() {
        check_filter_size(kept.len(), state.counts[bucket])?;
    }
    let peak_resident = kept.len();
    let sub_rank = rank - offsets[bucket] as usize;
    device.recycle_vec("stream-offsets", offsets);
    if sub_rank >= kept.len() {
        // Unconditionally guarded: a corrupted count or a torn filter
        // pass would otherwise panic in the in-memory recursion below.
        return Err(SelectError::Corruption {
            invariant: "filter-size",
            detail: format!(
                "descending rank {sub_rank} outside extracted bucket of {} elements",
                kept.len()
            ),
        });
    }

    // Finish in memory.
    let inner: SelectResult<T> = sample_select_on_device(device, &kept, sub_rank, cfg)?;
    delete_checkpoint(checkpoint);
    obs::absorb_device(device);
    obs::pool_sample(device);
    obs::span_exit(device.now().as_ns());
    let report = SelectReport::from_records(
        "streaming-sampleselect",
        n,
        &device.records()[records_before..],
        inner.report.levels + 1,
        inner.report.terminated_early,
    )
    .with_resilience(events);
    Ok(StreamingResult {
        value: inner.value,
        peak_resident,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::reference_select;
    use crate::instrument::ResilienceEvent;
    use gpu_sim::arch::v100;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn run(data: &[f32], chunk: usize, rank: usize) -> StreamingResult<f32> {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let source = SliceChunks::new(data, chunk);
        streaming_select(&mut device, &source, rank, &SampleSelectConfig::default()).unwrap()
    }

    #[test]
    fn matches_reference_across_chunk_sizes() {
        let data = uniform(300_000, 1);
        for chunk in [1 << 14, 1 << 16, 1 << 20 /* single chunk */] {
            for rank in [0usize, 150_000, 299_999] {
                let res = run(&data, chunk, rank);
                assert_eq!(
                    res.value,
                    reference_select(&data, rank).unwrap(),
                    "chunk {chunk} rank {rank}"
                );
            }
        }
    }

    #[test]
    fn peak_residency_is_a_small_fraction_of_n() {
        let data = uniform(1 << 20, 2);
        let res = run(&data, 1 << 16, 1 << 19);
        // one bucket of 256 (+ sampling imbalance) — far below n
        assert!(
            res.peak_resident < data.len() / 32,
            "resident {} of {}",
            res.peak_resident,
            data.len()
        );
    }

    #[test]
    fn duplicate_heavy_stream_terminates_early() {
        let mut rng = SplitMix64::new(3);
        let data: Vec<f32> = (0..200_000)
            .map(|_| (rng.next_below(8) as f32) * 1.5)
            .collect();
        let res = run(&data, 1 << 15, 100_000);
        assert_eq!(res.value, reference_select(&data, 100_000).unwrap());
        assert!(res.report.terminated_early);
        assert_eq!(res.peak_resident, 0, "nothing materialized on early exit");
    }

    #[test]
    fn uneven_tail_chunk_handled() {
        let data = uniform(100_001, 4); // not divisible by the chunk size
        let res = run(&data, 1 << 14, 50_000);
        assert_eq!(res.value, reference_select(&data, 50_000).unwrap());
    }

    #[test]
    fn errors_propagate() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let empty: Vec<f32> = vec![];
        let source = SliceChunks::new(&empty, 16);
        assert_eq!(
            streaming_select(&mut device, &source, 0, &SampleSelectConfig::default()).unwrap_err(),
            SelectError::EmptyInput
        );
        let data = vec![1.0f32; 10];
        let source = SliceChunks::new(&data, 4);
        assert!(matches!(
            streaming_select(&mut device, &source, 10, &SampleSelectConfig::default()).unwrap_err(),
            SelectError::RankOutOfRange { .. }
        ));
    }

    #[test]
    fn report_shows_per_chunk_passes() {
        let data = uniform(1 << 18, 5);
        let res = run(&data, 1 << 15, 1 << 17);
        // 8 chunks: 8 count passes + >= some stream_filter passes
        assert_eq!(res.report.kernel_launches("count_nowrite"), 8);
        assert!(res.report.kernel_launches("stream_filter") == 8);
        assert!(res.report.kernel_launches("sample") >= 1);
    }

    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A chunk source whose `target` chunk fails its first `fail_times`
    /// loads before recovering (or never recovers, if permanent).
    struct FlakyChunks<'a> {
        inner: SliceChunks<'a, f32>,
        target: usize,
        fail_times: usize,
        transient: bool,
        failures: AtomicUsize,
    }

    impl<'a> FlakyChunks<'a> {
        fn new(data: &'a [f32], chunk_len: usize, target: usize, fail_times: usize) -> Self {
            Self {
                inner: SliceChunks::new(data, chunk_len),
                target,
                fail_times,
                transient: true,
                failures: AtomicUsize::new(0),
            }
        }
    }

    impl ChunkSource<f32> for FlakyChunks<'_> {
        fn num_chunks(&self) -> usize {
            self.inner.num_chunks()
        }

        fn load_chunk(&self, idx: usize) -> Result<Vec<f32>, ChunkError> {
            if idx == self.target && self.failures.load(Ordering::SeqCst) < self.fail_times {
                self.failures.fetch_add(1, Ordering::SeqCst);
                return Err(ChunkError {
                    chunk: idx,
                    message: "simulated read failure".to_string(),
                    transient: self.transient,
                });
            }
            self.inner.load_chunk(idx)
        }

        fn total_len(&self) -> usize {
            self.inner.total_len()
        }

        fn source_name(&self) -> &str {
            "flaky-shards"
        }

        fn chunk_byte_offset(&self, idx: usize) -> Option<u64> {
            self.inner.chunk_byte_offset(idx)
        }
    }

    #[test]
    fn transient_chunk_failures_are_retried() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(1 << 17, 6);
        let source = FlakyChunks::new(&data, 1 << 15, 2, 2);
        let res = streaming_select(
            &mut device,
            &source,
            1 << 16,
            &SampleSelectConfig::default(),
        )
        .unwrap();
        assert_eq!(res.value, reference_select(&data, 1 << 16).unwrap());
        assert_eq!(res.report.resilience.retries, 2);
        let line = res.report.resilience.log[0].to_string();
        assert!(line.contains("chunk 2"));
        // the diagnostics identify the source and the byte position
        assert!(line.contains("flaky-shards"));
        assert!(
            line.contains(&format!("at byte {}", (2 << 15) * 4)),
            "log line: {line}"
        );
        // backoff advanced the simulated clock
        assert!(device.now() > SimTime::ZERO);
    }

    #[test]
    fn permanent_chunk_failure_is_not_retried() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(1 << 16, 7);
        let mut source = FlakyChunks::new(&data, 1 << 14, 1, usize::MAX);
        source.transient = false;
        let err = streaming_select(&mut device, &source, 100, &SampleSelectConfig::default())
            .unwrap_err();
        match err {
            SelectError::ChunkLoad(e) => {
                assert_eq!(e.chunk, 1);
                assert!(!e.transient);
            }
            other => panic!("expected ChunkLoad, got {other}"),
        }
        // exactly one attempt: permanent errors short-circuit
        assert_eq!(source.failures.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn chunk_retries_are_bounded() {
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let data = uniform(1 << 16, 8);
        let source = FlakyChunks::new(&data, 1 << 14, 0, usize::MAX);
        let err = streaming_select(&mut device, &source, 100, &SampleSelectConfig::default())
            .unwrap_err();
        assert!(err.is_transient(), "exhausted retries keep the fault class");
        assert!(matches!(err, SelectError::ChunkLoad(_)));
        // initial attempt + CHUNK_MAX_RETRIES retries, then give up
        assert_eq!(
            source.failures.load(Ordering::SeqCst),
            1 + CHUNK_MAX_RETRIES as usize
        );
    }

    // -----------------------------------------------------------------
    // Per-chunk sample shares
    // -----------------------------------------------------------------

    /// Sum of the per-chunk shares over a full pass of `chunk_lens`.
    fn total_share(s: usize, chunk_lens: &[usize]) -> usize {
        let n: usize = chunk_lens.iter().sum();
        let mut seen = 0u64;
        let mut total = 0usize;
        for &len in chunk_lens {
            total += chunk_sample_share(s, n, seen, len);
            seen += len as u64;
        }
        total
    }

    #[test]
    fn sample_shares_sum_exactly_to_s_across_adversarial_chunk_mixes() {
        // The pre-fix floor-then-max(1) share drifted in both
        // directions: 999 one-element chunks forced >= 999 draws for
        // s = 256, and 7 equal mid-size chunks each floored below their
        // fair share. Every mix here must now total exactly s.
        let mixes: &[&[usize]] = &[
            // many tiny chunks (each rounds up to 1 pre-fix)
            &[1; 999],
            // equal chunks that don't divide s (each floors down pre-fix)
            &[1000; 7],
            // one huge chunk among dust
            &[1, 1, 1, 1_000_000, 1, 1, 1],
            // empty chunks interleaved (must contribute 0 draws)
            &[0, 4096, 0, 0, 128, 0, 65_536],
            // pathological: n smaller than s
            &[3, 1, 2],
            // single chunk degenerate case
            &[123_457],
        ];
        for s in [1usize, 7, 256, 1024] {
            for (i, mix) in mixes.iter().enumerate() {
                assert_eq!(
                    total_share(s, mix),
                    s,
                    "mix #{i} with s={s} drifted from the configured sample size"
                );
            }
        }
    }

    #[test]
    fn sample_share_is_deterministic_and_order_sensitive_only_via_seen() {
        // The share of a chunk is a pure function of (s, n, seen, len):
        // resuming from a checkpointed `elements_seen` reproduces the
        // uninterrupted run's draws exactly.
        for seen in [0u64, 17, 999] {
            assert_eq!(
                chunk_sample_share(256, 100_000, seen, 1234),
                chunk_sample_share(256, 100_000, seen, 1234)
            );
        }
    }

    #[test]
    fn uneven_chunk_sizes_still_select_exactly() {
        // End-to-end over a source with wildly varying chunk lengths
        // (the shapes the old max(1) share inflated the most).
        struct UnevenChunks<'a> {
            data: &'a [f32],
            bounds: Vec<usize>,
        }
        impl ChunkSource<f32> for UnevenChunks<'_> {
            fn num_chunks(&self) -> usize {
                self.bounds.len() - 1
            }
            fn load_chunk(&self, idx: usize) -> Result<Vec<f32>, ChunkError> {
                Ok(self.data[self.bounds[idx]..self.bounds[idx + 1]].to_vec())
            }
            fn total_len(&self) -> usize {
                self.data.len()
            }
        }
        let data = uniform(40_000, 91);
        // 256 one-element chunks, then one huge chunk, then mid chunks.
        let mut bounds: Vec<usize> = (0..=256).collect();
        bounds.push(30_000);
        bounds.push(35_000);
        bounds.push(40_000);
        let source = UnevenChunks {
            data: &data,
            bounds,
        };
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let cfg = SampleSelectConfig::default();
        let res = streaming_select(&mut device, &source, 20_000, &cfg).unwrap();
        assert_eq!(
            res.value,
            crate::element::reference_select(&data, 20_000).unwrap()
        );
        // The committed sample sort must have staged exactly
        // s = sample_size().max(b) elements in shared memory.
        let s = cfg.sample_size().max(cfg.num_buckets);
        let sample_commit = device
            .records()
            .iter()
            .find(|r| r.name == "sample")
            .expect("sampling pass committed");
        assert_eq!(
            sample_commit.config.shared_mem_bytes as usize,
            s * std::mem::size_of::<f32>(),
            "sample size drifted from the configured s"
        );
    }

    // -----------------------------------------------------------------
    // Checkpoint / resume
    // -----------------------------------------------------------------

    fn temp_ckpt(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sselect-ckpt-{}-{tag}.ckpt", std::process::id()))
    }

    fn test_fingerprint() -> Fingerprint {
        let topo = ShardTopology::single(1000);
        Fingerprint {
            seed: 7,
            n: 1000,
            rank: 500,
            num_chunks: 4,
            num_buckets: 16,
            shards: topo.shards() as u64,
            topology_hash: topo.fingerprint(),
            elem_bytes: 4,
        }
    }

    #[test]
    fn checkpoint_roundtrips_losslessly() {
        let fp = test_fingerprint();
        let state = CheckpointState::<f32> {
            phase: PHASE_COUNT,
            next_chunk: 2,
            rng_state: 0xDEAD_BEEF,
            elements_seen: 500,
            sample: vec![],
            splitters: (0..15).map(|i| i as f32).collect(),
            counts: (0..16).map(|i| i * 3).collect(),
            kept: vec![1.5, -0.0, f32::NAN],
        };
        let bytes = encode_checkpoint(&fp, &state);
        let back = decode_checkpoint::<f32>(&bytes, &fp).unwrap();
        assert_eq!(back.phase, PHASE_COUNT);
        assert_eq!(back.next_chunk, 2);
        assert_eq!(back.rng_state, 0xDEAD_BEEF);
        assert_eq!(back.elements_seen, 500);
        assert_eq!(back.splitters, state.splitters);
        assert_eq!(back.counts, state.counts);
        // bit-exact, including NaN payloads and the sign of -0.0
        let kept_bits: Vec<u32> = back.kept.iter().map(|x| x.to_bits()).collect();
        let expect_bits: Vec<u32> = state.kept.iter().map(|x| x.to_bits()).collect();
        assert_eq!(kept_bits, expect_bits);
    }

    #[test]
    fn checksum_catches_any_flipped_byte() {
        let fp = test_fingerprint();
        let state = CheckpointState::<f32>::fresh(7);
        let bytes = encode_checkpoint(&fp, &state);
        for pos in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                decode_checkpoint::<f32>(&bad, &fp).is_err(),
                "flip at byte {pos} must be detected"
            );
        }
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let fp = test_fingerprint();
        let state = CheckpointState::<f32>::fresh(7);
        let bytes = encode_checkpoint(&fp, &state);
        let other = Fingerprint {
            rank: 501,
            ..test_fingerprint()
        };
        let err = decode_checkpoint::<f32>(&bytes, &other).unwrap_err();
        assert!(err.contains("fingerprint"), "got: {err}");
    }

    #[test]
    fn shard_topology_change_is_rejected_with_specific_message() {
        let two = ShardTopology::even(1000, 2);
        let four = ShardTopology::even(1000, 4);
        let fp2 = Fingerprint {
            shards: two.shards() as u64,
            topology_hash: two.fingerprint(),
            ..test_fingerprint()
        };
        let fp4 = Fingerprint {
            shards: four.shards() as u64,
            topology_hash: four.fingerprint(),
            ..test_fingerprint()
        };
        let bytes = encode_checkpoint(&fp2, &CheckpointState::<f32>::fresh(7));
        let err = decode_checkpoint::<f32>(&bytes, &fp4).unwrap_err();
        assert!(err.contains("shard topology changed"), "got: {err}");
        assert!(err.contains("2 shard(s)"), "got: {err}");
        // Same shard count but different boundaries is also a different run.
        let uneven = ShardTopology::from_boundaries(vec![0, 100, 1000]);
        let fp_uneven = Fingerprint {
            shards: uneven.shards() as u64,
            topology_hash: uneven.fingerprint(),
            ..test_fingerprint()
        };
        let err = decode_checkpoint::<f32>(&bytes, &fp_uneven).unwrap_err();
        assert!(err.contains("shard topology changed"), "got: {err}");
        // And the matching topology round-trips.
        assert!(decode_checkpoint::<f32>(&bytes, &fp2).is_ok());
    }

    #[test]
    fn resume_under_different_shard_count_restarts_cleanly() {
        let data = uniform(1 << 16, 23);
        let rank = 1 << 15;
        let cfg = SampleSelectConfig::default();
        let path = temp_ckpt("topo-mismatch");
        let _ = std::fs::remove_file(&path);

        // "Kill" a K=2 run mid-way so a checkpoint survives on disk.
        let two = ShardTopology::even(data.len(), 2);
        let mut flaky = FlakyChunks::new(&data, 1 << 13, 5, usize::MAX);
        flaky.transient = false;
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let err =
            streaming_select_with_topology(&mut device, &flaky, rank, &cfg, &path, false, &two)
                .unwrap_err();
        assert!(matches!(err, SelectError::ChunkLoad(_)));
        assert!(path.exists(), "checkpoint must survive the crash");

        // Resume with --shards 4: the checkpoint must be rejected with a
        // clean event and the run must restart (and still be exact).
        let four = ShardTopology::even(data.len(), 4);
        let healthy = SliceChunks::new(&data, 1 << 13);
        let mut device = Device::new(v100(), &pool);
        let res =
            streaming_select_with_topology(&mut device, &healthy, rank, &cfg, &path, true, &four)
                .unwrap();
        assert_eq!(res.value, reference_select(&data, rank).unwrap());
        assert_eq!(
            res.report.resilience.resumed, 0,
            "foreign topology never resumes"
        );
        assert_eq!(res.report.resilience.corruptions_detected, 1);
        assert!(
            res.report
                .resilience
                .log
                .iter()
                .any(|l| l.to_string().contains("shard topology changed")),
            "rejection must name the topology change: {:?}",
            res.report.resilience.log
        );
        assert!(!path.exists(), "checkpoint deleted after success");

        // Resuming with the *matching* topology still works.
        let _ = std::fs::remove_file(&path);
        let mut flaky = FlakyChunks::new(&data, 1 << 13, 5, usize::MAX);
        flaky.transient = false;
        let mut device = Device::new(v100(), &pool);
        let _ = streaming_select_with_topology(&mut device, &flaky, rank, &cfg, &path, false, &two)
            .unwrap_err();
        let mut device = Device::new(v100(), &pool);
        let res =
            streaming_select_with_topology(&mut device, &healthy, rank, &cfg, &path, true, &two)
                .unwrap();
        assert_eq!(res.value, reference_select(&data, rank).unwrap());
        assert_eq!(res.report.resilience.resumed, 1);
    }

    #[test]
    fn killed_run_resumes_bit_identical() {
        let data = uniform(1 << 17, 9);
        let rank = 1 << 16;
        let cfg = SampleSelectConfig::default();
        let path = temp_ckpt("resume");
        let _ = std::fs::remove_file(&path);

        // Ground truth: the uninterrupted run.
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let healthy = SliceChunks::new(&data, 1 << 14);
        let uninterrupted = streaming_select(&mut device, &healthy, rank, &cfg).unwrap();

        // "Kill" a run mid-way: chunk 5 fails permanently.
        let mut flaky = FlakyChunks::new(&data, 1 << 14, 5, usize::MAX);
        flaky.transient = false;
        let mut device = Device::new(v100(), &pool);
        let err = streaming_select_with_checkpoint(&mut device, &flaky, rank, &cfg, &path, false)
            .unwrap_err();
        assert!(matches!(err, SelectError::ChunkLoad(_)));
        assert!(path.exists(), "checkpoint must survive the crash");

        // Resume against the healthy source.
        let mut device = Device::new(v100(), &pool);
        let resumed =
            streaming_select_with_checkpoint(&mut device, &healthy, rank, &cfg, &path, true)
                .unwrap();
        assert_eq!(
            resumed.value.to_bits(),
            uninterrupted.value.to_bits(),
            "resumed run must be bit-identical to the uninterrupted one"
        );
        assert_eq!(resumed.report.resilience.resumed, 1);
        assert!(resumed
            .report
            .resilience
            .log
            .iter()
            .any(|l| matches!(l, ResilienceEvent::Resumed(_))));
        assert!(!path.exists(), "checkpoint deleted after success");
    }

    #[test]
    fn corrupted_checkpoint_triggers_clean_restart() {
        let data = uniform(1 << 16, 10);
        let rank = 1 << 15;
        let cfg = SampleSelectConfig::default();
        let path = temp_ckpt("corrupt");
        std::fs::write(&path, b"SSCKgarbage-that-is-not-a-checkpoint").unwrap();

        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let source = SliceChunks::new(&data, 1 << 14);
        let res = streaming_select_with_checkpoint(&mut device, &source, rank, &cfg, &path, true)
            .unwrap();
        assert_eq!(res.value, reference_select(&data, rank).unwrap());
        assert_eq!(res.report.resilience.resumed, 0, "nothing to resume from");
        assert_eq!(res.report.resilience.corruptions_detected, 1);
        assert!(res
            .report
            .resilience
            .log
            .iter()
            .any(|l| l.to_string().starts_with("corruption: checkpoint")));
        assert!(!path.exists(), "checkpoint deleted after success");
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let data = uniform(1 << 16, 11);
        let rank = 12_345;
        let cfg = SampleSelectConfig::default();
        let path = temp_ckpt("plain");
        let _ = std::fs::remove_file(&path);

        let pool = ThreadPool::new(2);
        let source = SliceChunks::new(&data, 1 << 14);
        let mut device = Device::new(v100(), &pool);
        let plain = streaming_select(&mut device, &source, rank, &cfg).unwrap();
        let mut device = Device::new(v100(), &pool);
        let ckpt = streaming_select_with_checkpoint(&mut device, &source, rank, &cfg, &path, false)
            .unwrap();
        assert_eq!(plain.value.to_bits(), ckpt.value.to_bits());
        assert_eq!(
            plain.report.kernel_launches("count_nowrite"),
            ckpt.report.kernel_launches("count_nowrite"),
            "checkpointing must not change the kernel schedule"
        );
        assert!(!path.exists());
    }
}
