//! Fused top-k selection (§IV-I).
//!
//! When not only the kth-smallest element but all larger elements are of
//! interest, the filter kernel is modified to copy "not only elements
//! from the target bucket, but also from all buckets containing larger
//! elements. As the splitters are ordered, the recursion still only
//! needs to descend into the target bucket, but all elements from larger
//! buckets are guaranteed to be part of the top-k selection."

use crate::count::count_kernel_scoped;
use crate::element::SelectElement;
use crate::filter::filter_kernel_scoped;
use crate::instrument::SelectReport;
use crate::obs::{self, Histogram, SpanKind};
use crate::params::SampleSelectConfig;
use crate::recursion::{base_case_select_with, recycle_level, validate_input};
use crate::reduce::reduce_kernel;
use crate::rng::SplitMix64;
use crate::splitter::sample_kernel_into;
use crate::workspace::SelectWorkspace;
use crate::{SelectError, SelectResult};
use gpu_sim::arch::v100;
use gpu_sim::{Device, LaunchOrigin};

/// Result of a top-k extraction.
#[derive(Debug, Clone)]
pub struct TopKResult<T> {
    /// The `k` largest elements, in no particular order.
    pub elements: Vec<T>,
    /// The threshold: the smallest element of the top-k set (the
    /// `(n-k)`-th smallest of the input).
    pub threshold: T,
    /// Measurement report.
    pub report: SelectReport,
}

/// Extract the `k` largest elements on a simulated device.
pub fn top_k_largest_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
) -> Result<TopKResult<T>, SelectError> {
    top_k_largest_with_workspace(device, data, k, cfg, &mut SelectWorkspace::new())
}

/// [`top_k_largest_on_device`] with a reusable [`SelectWorkspace`] (see
/// [`crate::recursion::sample_select_with_workspace`] for the reuse
/// contract).
pub fn top_k_largest_with_workspace<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
    ws: &mut SelectWorkspace<T>,
) -> Result<TopKResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    if k == 0 || k > data.len() {
        return Err(SelectError::RankOutOfRange {
            rank: k,
            len: data.len(),
        });
    }
    // The threshold element has rank n - k.
    let rank = data.len() - k;
    validate_input(data, rank, cfg)?;

    let n = data.len();
    let records_before = device.records().len();
    obs::span_enter(
        SpanKind::Query,
        "topk-sampleselect",
        0,
        device.now().as_ns(),
    );
    let mut rng = SplitMix64::new(cfg.seed);

    // `collected` accumulates elements already known to be in the top-k
    // (from buckets strictly above the target bucket at each level).
    let mut collected: Vec<T> = Vec::with_capacity(k);
    let mut cur: Vec<T> = Vec::new();
    let mut use_storage = false;
    let mut cur_rank = rank;
    let mut levels = 0u32;
    let mut terminated_early = false;
    let threshold: T;

    loop {
        let slice: &[T] = if use_storage { &cur } else { data };
        let origin = if levels == 0 {
            LaunchOrigin::Host
        } else {
            LaunchOrigin::Device
        };

        if slice.len() <= cfg.base_case_size.max(cfg.sample_size()) {
            // Base case: the bitonic selection fully sorts its working
            // copy (`ws.base`), so the top-k suffix is read directly.
            let SelectWorkspace {
                base, sort_scratch, ..
            } = &mut *ws;
            let value =
                base_case_select_with(device, slice, cur_rank, cfg, origin, base, sort_scratch);
            collected.extend_from_slice(&base[cur_rank..]);
            threshold = value;
            break;
        }
        levels += 1;
        obs::span_enter(
            SpanKind::Level,
            "level",
            (levels - 1) as u64,
            device.now().as_ns(),
        );

        sample_kernel_into(device, slice, cfg, &mut rng, origin, ws)?;
        let tree = ws.tree().expect("sample_kernel_into built a tree");
        let count = count_kernel_scoped(device, slice, tree, cfg, true, origin, &ws.scratch);
        let red = reduce_kernel(device, &count, LaunchOrigin::Device);
        let bucket = red.bucket_for_rank(cur_rank as u64);
        let b = tree.num_buckets() as u32;

        // Fused filter: the target bucket plus every larger bucket.
        let fused = filter_kernel_scoped(
            device,
            slice,
            &count,
            &red,
            bucket as u32..b,
            cfg,
            LaunchOrigin::Device,
            &ws.scratch,
        );
        // Elements of the target bucket come first in the fused output
        // (the extraction is bucket-major).
        let target_size = red.bucket_size(bucket) as usize;
        let (target_part, larger_part) = fused.split_at(target_size);
        collected.extend_from_slice(larger_part);

        if tree.is_equality_bucket(bucket) {
            // Everything in the target bucket equals the threshold; the
            // top-k set needs exactly those at ranks >= cur_rank.
            let offset = red.bucket_offsets[bucket] as usize;
            let need = target_size - (cur_rank - offset);
            collected.extend_from_slice(&target_part[..need]);
            threshold = tree.equality_value(bucket);
            terminated_early = true;
            device.recycle_vec("filter-out", fused);
            recycle_level(device, count, red);
            obs::span_exit(device.now().as_ns());
            break;
        }

        cur_rank -= red.bucket_offsets[bucket] as usize;
        let mut next = device.lease_vec::<T>(target_size, "topk-cur");
        next.extend_from_slice(target_part);
        let prev = std::mem::replace(&mut cur, next);
        device.recycle_vec("topk-cur", prev);
        device.recycle_vec("filter-out", fused);
        recycle_level(device, count, red);
        obs::observe(Histogram::LevelKeptElements, cur.len() as u64);
        obs::span_exit(device.now().as_ns());
        use_storage = true;
    }
    device.recycle_vec("topk-cur", cur);

    // A wrong cardinality means a corrupted count/filter pipeline (the
    // invariant the old debug_assert only checked in debug builds);
    // surface it as a permanent error instead of returning a wrong-size
    // set in release builds.
    if collected.len() != k {
        return Err(SelectError::Corruption {
            invariant: "topk-cardinality",
            detail: format!("collected {} elements for k = {k}", collected.len()),
        });
    }
    obs::absorb_device(device);
    obs::pool_sample(device);
    obs::span_exit(device.now().as_ns());
    let report = SelectReport::from_records(
        "topk-sampleselect",
        n,
        &device.records()[records_before..],
        levels,
        terminated_early,
    );
    Ok(TopKResult {
        elements: collected,
        threshold,
        report,
    })
}

/// Extract the `k` largest elements on a default simulated device.
pub fn top_k_largest<T: SelectElement>(
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
) -> Result<TopKResult<T>, SelectError> {
    let mut device = Device::on_global_pool(v100());
    top_k_largest_on_device(&mut device, data, k, cfg)
}

/// Extract the `k` smallest elements (bottom-k), the mirror of
/// [`top_k_largest_on_device`]: the fused filter keeps the target bucket
/// plus every *smaller* bucket. Implemented by selecting rank `k-1` and
/// filtering the prefix.
pub fn bottom_k_smallest_on_device<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
) -> Result<TopKResult<T>, SelectError> {
    cfg.validate().map_err(SelectError::InvalidConfig)?;
    if k == 0 || k > data.len() {
        return Err(SelectError::RankOutOfRange {
            rank: k,
            len: data.len(),
        });
    }
    // Negate via the sort-key order: bottom-k of data == top-k under the
    // reversed order. Rather than add a reversed driver, select the
    // threshold (rank k-1) and collect everything <= it, trimming ties.
    let threshold = crate::recursion::sample_select_on_device(device, data, k - 1, cfg)?;
    let n = data.len();
    let records_before = device.records().len();
    obs::span_enter(
        SpanKind::Query,
        "bottomk-sampleselect",
        0,
        device.now().as_ns(),
    );
    let mut elements: Vec<T> = Vec::with_capacity(k);
    let mut ties = Vec::new();
    for &x in data {
        if x.lt(threshold.value) {
            elements.push(x);
        } else if !threshold.value.lt(x) {
            ties.push(x);
        }
    }
    let need = k - elements.len();
    elements.extend(ties.into_iter().take(need));
    // charge the extraction pass
    let mut cost = gpu_sim::KernelCost::new();
    cost.global_read_bytes += (n * T::BYTES) as u64;
    cost.global_write_bytes += (k * T::BYTES) as u64;
    cost.int_ops += n as u64 * 2;
    let launch = cfg.launch_config(n, T::BYTES);
    cost.blocks = launch.blocks as u64;
    device.commit("bottom_filter", launch, LaunchOrigin::Device, cost);

    debug_assert_eq!(elements.len(), k);
    obs::absorb_device(device);
    obs::span_exit(device.now().as_ns());
    let mut report = SelectReport::from_records(
        "bottomk-sampleselect",
        n,
        &device.records()[records_before..],
        threshold.report.levels,
        threshold.report.terminated_early,
    );
    report.total_time += threshold.report.total_time;
    Ok(TopKResult {
        elements,
        threshold: threshold.value,
        report,
    })
}

/// Convenience: the kth-largest element (top-k threshold) as a plain
/// [`SelectResult`], without materializing the top-k set.
pub fn kth_largest<T: SelectElement>(
    data: &[T],
    k: usize,
    cfg: &SampleSelectConfig,
) -> Result<SelectResult<T>, SelectError> {
    if k == 0 || k > data.len() {
        return Err(SelectError::RankOutOfRange {
            rank: k,
            len: data.len(),
        });
    }
    crate::sample_select(data, data.len() - k, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::sort_elements;
    use crate::rng::SplitMix64;
    use hpc_par::ThreadPool;

    fn uniform(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() as f32).collect()
    }

    fn check_topk(data: &[f32], k: usize) {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let res =
            top_k_largest_on_device(&mut device, data, k, &SampleSelectConfig::default()).unwrap();
        assert_eq!(res.elements.len(), k);

        let mut sorted = data.to_vec();
        sort_elements(&mut sorted);
        let expected: Vec<u32> = sorted[data.len() - k..]
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let mut got: Vec<u32> = res.elements.iter().map(|x| x.to_bits()).collect();
        got.sort_unstable();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(got, expected, "top-{k} multiset mismatch");
        assert_eq!(res.threshold, sorted[data.len() - k]);
    }

    #[test]
    fn small_input_topk() {
        let data = vec![5.0f32, 1.0, 9.0, 3.0, 7.0];
        check_topk(&data, 2);
        check_topk(&data, 5);
    }

    #[test]
    fn large_input_topk() {
        let data = uniform(200_000, 1);
        check_topk(&data, 10);
        check_topk(&data, 1000);
        check_topk(&data, 100_000);
    }

    #[test]
    fn topk_with_duplicates() {
        let mut rng = SplitMix64::new(2);
        let data: Vec<f32> = (0..50_000)
            .map(|_| (rng.next_below(8) as f32) * 1.5)
            .collect();
        // ties at the threshold boundary must still give exactly k
        for k in [1usize, 100, 25_000, 50_000] {
            let pool = ThreadPool::new(4);
            let mut device = Device::new(v100(), &pool);
            let res =
                top_k_largest_on_device(&mut device, &data, k, &SampleSelectConfig::default())
                    .unwrap();
            assert_eq!(res.elements.len(), k);
            let mut sorted = data.clone();
            sort_elements(&mut sorted);
            let threshold = sorted[data.len() - k];
            assert_eq!(res.threshold, threshold);
            assert!(res.elements.iter().all(|&x| x >= threshold));
            // count of strictly-greater elements must match
            let expected_gt = sorted[data.len() - k..]
                .iter()
                .filter(|&&x| x > threshold)
                .count();
            let got_gt = res.elements.iter().filter(|&&x| x > threshold).count();
            assert_eq!(got_gt, expected_gt);
        }
    }

    #[test]
    fn k_equals_n_returns_everything() {
        let data = uniform(5_000, 3);
        check_topk(&data, 5_000);
    }

    #[test]
    fn invalid_k_rejected() {
        let data = vec![1.0f32, 2.0];
        let err = top_k_largest(&data, 0, &SampleSelectConfig::default()).unwrap_err();
        assert!(matches!(err, SelectError::RankOutOfRange { .. }));
        let err = top_k_largest(&data, 3, &SampleSelectConfig::default()).unwrap_err();
        assert!(matches!(err, SelectError::RankOutOfRange { .. }));
    }

    #[test]
    fn bottom_k_is_the_sorted_prefix() {
        let data = uniform(60_000, 9);
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        for k in [1usize, 100, 30_000] {
            let res =
                bottom_k_smallest_on_device(&mut device, &data, k, &SampleSelectConfig::default())
                    .unwrap();
            assert_eq!(res.elements.len(), k);
            let mut sorted = data.clone();
            sort_elements(&mut sorted);
            let mut got: Vec<u32> = res.elements.iter().map(|x| x.to_bits()).collect();
            let mut expected: Vec<u32> = sorted[..k].iter().map(|x| x.to_bits()).collect();
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "k = {k}");
            assert_eq!(res.threshold, sorted[k - 1]);
        }
    }

    #[test]
    fn bottom_k_with_ties_at_threshold() {
        let data = vec![2.0f32, 1.0, 2.0, 2.0, 3.0, 0.5];
        let pool = ThreadPool::new(1);
        let mut device = Device::new(v100(), &pool);
        let res =
            bottom_k_smallest_on_device(&mut device, &data, 4, &SampleSelectConfig::default())
                .unwrap();
        assert_eq!(res.elements.len(), 4);
        assert_eq!(res.threshold, 2.0);
        assert!(res.elements.iter().all(|&x| x <= 2.0));
        assert_eq!(res.elements.iter().filter(|&&x| x == 2.0).count(), 2);
    }

    #[test]
    fn kth_largest_matches_reference() {
        let data = uniform(30_000, 4);
        let mut sorted = data.clone();
        sort_elements(&mut sorted);
        let res = kth_largest(&data, 7, &SampleSelectConfig::default()).unwrap();
        assert_eq!(res.value, sorted[data.len() - 7]);
    }
}
