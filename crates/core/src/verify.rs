//! Algorithm-based fault tolerance (ABFT) for the selection pipeline.
//!
//! Selection is naturally self-verifiable: every intermediate buffer of
//! SampleSelect obeys cheap algebraic invariants, and the final answer
//! admits an O(n) *rank certificate* — one counting pass that proves the
//! returned value really has the requested rank. This module collects
//! both layers:
//!
//! * **Spot checks** validate the invariants of each recursion level as
//!   it completes: the count histogram must sum to the level's input
//!   size, the sampled splitters must be monotone, and the filter output
//!   must be exactly as large as the selected bucket's count. They cost
//!   O(b) per level and catch most silent corruptions near where they
//!   happened.
//! * **Rank certification** ([`certify_rank`]) recounts, directly
//!   against the untouched input, how many elements fall below and tie
//!   with the candidate answer. It catches *any* wrong answer regardless
//!   of which buffer was corrupted, at the price of one more O(n) pass.
//!
//! Violations surface as [`SelectError::Corruption`], which
//! [`crate::resilient`] treats as transient: re-running with re-seeded
//! sampling recomputes every intermediate buffer from the intact input.
//!
//! The module also hosts [`corrupt_elements`], the bridge that exposes
//! typed element buffers to the simulator's bit-flip injector
//! ([`gpu_sim::Device::corrupt_region`]).

use crate::element::SelectElement;
use crate::params::SampleSelectConfig;
use crate::SelectError;
use gpu_sim::{Device, KernelCost, LaunchOrigin, MemoryCorruption};

/// How much self-verification a selection run performs.
///
/// The default is [`VerifyPolicy::Off`]: verification costs extra kernel
/// launches, and fault-free runs (the common case) don't need it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyPolicy {
    /// No integrity checking (the fast path).
    #[default]
    Off,
    /// Per-level invariant spot checks: histogram sum, splitter
    /// monotonicity, filter output size. O(b) extra work per level.
    Spot,
    /// Spot checks plus an exact rank certificate on the final answer
    /// (one extra O(n) counting pass).
    Paranoid,
}

impl VerifyPolicy {
    /// Whether per-level invariant checks run.
    pub fn spot_checks(self) -> bool {
        matches!(self, VerifyPolicy::Spot | VerifyPolicy::Paranoid)
    }

    /// Whether the final answer gets a rank certificate.
    pub fn certify(self) -> bool {
        matches!(self, VerifyPolicy::Paranoid)
    }
}

impl std::str::FromStr for VerifyPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyPolicy::Off),
            "spot" => Ok(VerifyPolicy::Spot),
            "paranoid" => Ok(VerifyPolicy::Paranoid),
            other => Err(format!(
                "unknown verify policy `{other}` (expected off, spot or paranoid)"
            )),
        }
    }
}

impl std::fmt::Display for VerifyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyPolicy::Off => write!(f, "off"),
            VerifyPolicy::Spot => write!(f, "spot"),
            VerifyPolicy::Paranoid => write!(f, "paranoid"),
        }
    }
}

/// Expose a typed element buffer to the device's memory-corruption
/// injector.
///
/// The simulator corrupts raw byte images; element types are bridged
/// through their lossless bit representation
/// ([`SelectElement::to_bits_u64`]), so an injected bit flip lands on a
/// real bit of a real element — including NaN payloads and sign bits.
/// Returns the corruption descriptor when one fired.
pub fn corrupt_elements<T: SelectElement>(
    device: &mut Device,
    region: &str,
    data: &mut [T],
) -> Option<MemoryCorruption> {
    device.fault_plan()?;
    // The image is the lossless 64-bit representation, clamped to the
    // element width (key-value pairs image only their key).
    let width = T::BYTES.min(8);
    let mut bytes: Vec<u8> = Vec::with_capacity(data.len() * width);
    for &x in data.iter() {
        bytes.extend_from_slice(&x.to_bits_u64().to_le_bytes()[..width]);
    }
    let corruption = device.corrupt_region(region, bytes.as_mut_slice())?;
    // Deserialize only the element the corruption landed on, leaving
    // every other element (and any payload bits outside the image)
    // untouched.
    let idx = corruption.byte_offset / width;
    if idx < data.len() {
        let mut buf = [0u8; 8];
        buf[..width].copy_from_slice(&bytes[idx * width..(idx + 1) * width]);
        data[idx] = T::from_bits_u64(u64::from_le_bytes(buf));
    }
    Some(corruption)
}

/// ABFT invariant: the count histogram of a level must sum to the number
/// of elements the level was given.
pub fn check_histogram(counts: &[u64], n: usize) -> Result<(), SelectError> {
    let total: u64 = counts.iter().sum();
    if total != n as u64 {
        return Err(SelectError::Corruption {
            invariant: "histogram-sum",
            detail: format!("bucket counts sum to {total} for input of {n} elements"),
        });
    }
    Ok(())
}

/// ABFT invariant: sampled splitters must be monotonically non-decreasing
/// (they come from a sorted sample, so any inversion means corruption).
pub fn check_splitters<T: SelectElement>(splitters: &[T]) -> Result<(), SelectError> {
    for (i, w) in splitters.windows(2).enumerate() {
        if w[1].lt(w[0]) {
            return Err(SelectError::Corruption {
                invariant: "splitter-order",
                detail: format!("splitter {} sorts below splitter {}", i + 1, i),
            });
        }
    }
    Ok(())
}

/// ABFT invariant: the filter output must contain exactly as many
/// elements as the selected bucket's count claimed.
pub fn check_filter_size(actual: usize, expected: u64) -> Result<(), SelectError> {
    if actual as u64 != expected {
        return Err(SelectError::Corruption {
            invariant: "filter-size",
            detail: format!("filter extracted {actual} elements, bucket count says {expected}"),
        });
    }
    Ok(())
}

/// Count how many elements of `data` sort strictly below `value` and how
/// many tie with it (under the total order of [`SelectElement::lt`]).
///
/// `value` has valid rank `r` iff `below <= r < below + tied`. Plain
/// host-side helper — [`certify_rank`] is the instrumented device
/// version.
pub fn rank_bounds<T: SelectElement>(data: &[T], value: T) -> (u64, u64) {
    let mut below = 0u64;
    let mut tied = 0u64;
    for &x in data {
        if x.lt(value) {
            below += 1;
        } else if !value.lt(x) {
            tied += 1;
        }
    }
    (below, tied)
}

/// Exact rank certificate: one counting pass over the untouched input
/// proving that `value` really is a `rank`-th smallest element.
///
/// Commits a `certify` kernel (same grid as a count pass, no oracle
/// writes) so the certificate shows up in timings and traces. Fails with
/// [`SelectError::Corruption`] when the rank is outside the half-open
/// interval `[below, below + tied)` — which can only happen if some
/// intermediate buffer was corrupted into a self-consistent but wrong
/// state that the spot checks couldn't see.
pub fn certify_rank<T: SelectElement>(
    device: &mut Device,
    data: &[T],
    value: T,
    rank: usize,
    cfg: &SampleSelectConfig,
    origin: LaunchOrigin,
) -> Result<(), SelectError> {
    let n = data.len();
    let launch = cfg.launch_config(n, T::BYTES);
    let blocks = launch.blocks as usize;
    let chunk = launch.block_chunk(n);

    let (below, tied) = hpc_par::parallel_map_reduce(
        device.pool(),
        blocks,
        1,
        (0u64, 0u64),
        |range, acc| {
            let (mut below, mut tied) = acc;
            for block in range {
                let start = block * chunk;
                let end = ((block + 1) * chunk).min(n);
                for &x in &data[start..end] {
                    if x.lt(value) {
                        below += 1;
                    } else if !value.lt(x) {
                        tied += 1;
                    }
                }
            }
            (below, tied)
        },
        |a, b| (a.0 + b.0, a.1 + b.1),
    );

    let mut cost = KernelCost::new();
    cost.global_read_bytes = n as u64 * T::BYTES as u64;
    cost.int_ops = 2 * n as u64;
    cost.blocks = blocks as u64;
    device.commit("certify", launch, origin, cost);

    let r = rank as u64;
    if below <= r && r < below + tied {
        Ok(())
    } else {
        Err(SelectError::Corruption {
            invariant: "rank-certificate",
            detail: format!(
                "returned value has rank interval [{below}, {}), requested rank {rank}",
                below + tied
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::arch::v100;
    use gpu_sim::FaultPlan;
    use hpc_par::ThreadPool;

    #[test]
    fn policy_parsing_and_gates() {
        assert_eq!("off".parse::<VerifyPolicy>().unwrap(), VerifyPolicy::Off);
        assert_eq!("spot".parse::<VerifyPolicy>().unwrap(), VerifyPolicy::Spot);
        assert_eq!(
            "paranoid".parse::<VerifyPolicy>().unwrap(),
            VerifyPolicy::Paranoid
        );
        assert!("bogus".parse::<VerifyPolicy>().is_err());
        assert_eq!(VerifyPolicy::default(), VerifyPolicy::Off);

        assert!(!VerifyPolicy::Off.spot_checks());
        assert!(VerifyPolicy::Spot.spot_checks());
        assert!(!VerifyPolicy::Spot.certify());
        assert!(VerifyPolicy::Paranoid.spot_checks());
        assert!(VerifyPolicy::Paranoid.certify());
        assert_eq!(VerifyPolicy::Paranoid.to_string(), "paranoid");
    }

    #[test]
    fn histogram_check_accepts_and_rejects() {
        assert!(check_histogram(&[3, 4, 5], 12).is_ok());
        let err = check_histogram(&[3, 4, 5], 13).unwrap_err();
        assert!(matches!(
            err,
            SelectError::Corruption {
                invariant: "histogram-sum",
                ..
            }
        ));
    }

    #[test]
    fn splitter_check_accepts_sorted_rejects_inverted() {
        assert!(check_splitters(&[1.0f32, 2.0, 2.0, 5.0]).is_ok());
        assert!(check_splitters::<f32>(&[]).is_ok());
        // NaN collapses to the maximum sort key, so a trailing NaN is fine…
        assert!(check_splitters(&[1.0f32, f32::NAN]).is_ok());
        // …but a leading NaN is an inversion.
        let err = check_splitters(&[f32::NAN, 1.0f32]).unwrap_err();
        assert!(matches!(
            err,
            SelectError::Corruption {
                invariant: "splitter-order",
                ..
            }
        ));
    }

    #[test]
    fn filter_size_check() {
        assert!(check_filter_size(7, 7).is_ok());
        let err = check_filter_size(6, 7).unwrap_err();
        assert!(matches!(
            err,
            SelectError::Corruption {
                invariant: "filter-size",
                ..
            }
        ));
    }

    #[test]
    fn rank_bounds_counts_below_and_ties() {
        let data = [5.0f32, 1.0, 3.0, 3.0, 9.0];
        assert_eq!(rank_bounds(&data, 3.0f32), (1, 2));
        assert_eq!(rank_bounds(&data, 9.0f32), (4, 1));
        assert_eq!(rank_bounds(&data, 0.5f32), (0, 0));
    }

    #[test]
    fn certificate_accepts_true_rank_rejects_wrong_value() {
        let pool = ThreadPool::new(4);
        let mut device = Device::new(v100(), &pool);
        let data: Vec<f32> = (0..10_000).map(|i| ((i * 37) % 1000) as f32).collect();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cfg = SampleSelectConfig::default();

        let rank = 1234;
        assert!(certify_rank(
            &mut device,
            &data,
            sorted[rank],
            rank,
            &cfg,
            LaunchOrigin::Host
        )
        .is_ok());
        let err = certify_rank(
            &mut device,
            &data,
            sorted[rank] + 1.0,
            rank,
            &cfg,
            LaunchOrigin::Host,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SelectError::Corruption {
                invariant: "rank-certificate",
                ..
            }
        ));

        let rec = device
            .records()
            .iter()
            .find(|r| r.name == "certify")
            .unwrap();
        assert_eq!(rec.cost.global_read_bytes, 10_000 * 4);
        assert_eq!(rec.cost.int_ops, 20_000);
    }

    #[test]
    fn corrupt_elements_changes_exactly_one_element() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        device.set_fault_plan(FaultPlan::new(7).corrupt_accesses_at(&[0]));
        let original: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut data = original.clone();
        let corruption = corrupt_elements(&mut device, "splitters", &mut data).unwrap();
        assert_eq!(corruption.region, "splitters");
        let changed = data
            .iter()
            .zip(&original)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(changed, 1, "one bit flip must hit exactly one element");
    }

    #[test]
    fn corrupt_elements_without_plan_is_noop() {
        let pool = ThreadPool::new(2);
        let mut device = Device::new(v100(), &pool);
        let mut data = vec![1.0f32, 2.0, 3.0];
        assert!(corrupt_elements(&mut device, "splitters", &mut data).is_none());
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
    }
}
