//! Reusable selection workspaces: the zero-allocation hot path.
//!
//! A real GPU implementation of SampleSelect allocates its device
//! buffers (oracles, per-block counters, splitter scratch, filter
//! output) once and reuses them across recursion levels and across
//! repeated queries — `cudaMalloc` in the middle of a recursion would
//! dwarf the kernels themselves. This module is the simulation analogue:
//!
//! * [`KernelScratch`] pools the small per-worker buffers the kernels'
//!   data-parallel closures need (block-local bucket counters, warp
//!   atomic-collision scratch, filter cursors);
//! * [`SelectWorkspace`] owns the per-query element buffers — the
//!   splitter sample, the bitonic sorting scratch, the staged splitters,
//!   the built [`SearchTree`] (node arrays reused across levels when the
//!   bucket count is unchanged), and the base-case copy.
//!
//! Together with the device-side [`gpu_sim::BufferPool`] (oracles,
//! partial counts, prefix sums, filter output), a warmed-up
//! [`crate::recursion::sample_select_with_workspace`] run performs zero
//! heap allocations in the level kernels — a property pinned by the
//! `zero_alloc` integration test with a counting global allocator.
//!
//! ## Ownership rules
//!
//! * A `SelectWorkspace` may be reused across queries and across inputs,
//!   but not concurrently: each concurrent driver needs its own.
//! * `KernelScratch` *is* safe to share across the worker threads of one
//!   kernel launch (leases go through a mutex; each worker holds its
//!   lease only for the duration of its chunk).
//! * Buffers leased from the device [`gpu_sim::BufferPool`] are returned
//!   by the driver at the end of each recursion level; the pool — not
//!   the workspace — owns their allocations between queries. Poisoned
//!   regions (hit by injected corruption) are never recycled.

use crate::element::SelectElement;
use crate::searchtree::SearchTree;
use std::sync::Mutex;

/// Best-fit take: the smallest shelved buffer with `capacity >= len`.
fn take_best<U>(shelf: &mut Vec<Vec<U>>, len: usize) -> Option<Vec<U>> {
    shelf
        .iter()
        .enumerate()
        .filter(|(_, v)| v.capacity() >= len)
        .min_by_key(|(_, v)| v.capacity())
        .map(|(i, _)| i)
        .map(|i| shelf.swap_remove(i))
}

/// A pool of the small integer buffers the kernel closures use per
/// worker (bucket counters, collision scratch, filter cursors).
///
/// Shareable across the worker threads of a parallel kernel launch;
/// construction is allocation-free, so the legacy (workspace-less)
/// kernel entry points create one per call at no cost.
#[derive(Debug, Default)]
pub struct KernelScratch {
    u64s: Mutex<Vec<Vec<u64>>>,
    u32s: Mutex<Vec<Vec<u32>>>,
}

impl KernelScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lease a zeroed `len`-element `u64` buffer.
    pub fn lease_u64(&self, len: usize) -> Vec<u64> {
        let mut v = take_best(&mut self.u64s.lock().unwrap(), len).unwrap_or_default();
        v.clear();
        v.resize(len, 0);
        v
    }

    /// Return a `u64` buffer for later reuse.
    pub fn give_u64(&self, buf: Vec<u64>) {
        if buf.capacity() > 0 {
            self.u64s.lock().unwrap().push(buf);
        }
    }

    /// Lease a zeroed `len`-element `u32` buffer.
    pub fn lease_u32(&self, len: usize) -> Vec<u32> {
        let mut v = take_best(&mut self.u32s.lock().unwrap(), len).unwrap_or_default();
        v.clear();
        v.resize(len, 0);
        v
    }

    /// Return a `u32` buffer for later reuse.
    pub fn give_u32(&self, buf: Vec<u32>) {
        if buf.capacity() > 0 {
            self.u32s.lock().unwrap().push(buf);
        }
    }
}

/// Reusable per-query element buffers for the SampleSelect drivers.
///
/// Create once, pass to [`crate::recursion::sample_select_with_workspace`]
/// (or the splitter/base-case helpers) for every query; all level-local
/// element storage is reused instead of reallocated. The functional
/// result is bit-identical to the workspace-less path — the equivalence
/// is pinned by a property test.
#[derive(Debug)]
pub struct SelectWorkspace<T> {
    /// Closure-local integer scratch, shared by all kernels of a run.
    pub scratch: KernelScratch,
    /// The splitter sample drawn by the sample kernel.
    pub(crate) sample: Vec<T>,
    /// Staged splitters (percentiles of the sorted sample).
    pub(crate) splitters: Vec<T>,
    /// Padded buffer for the bitonic sorting network.
    pub(crate) sort_scratch: Vec<T>,
    /// The splitter search tree, rebuilt in place level after level.
    pub(crate) tree: Option<SearchTree<T>>,
    /// Base-case copy of the final bucket.
    pub(crate) base: Vec<T>,
}

impl<T> Default for SelectWorkspace<T> {
    fn default() -> Self {
        Self {
            scratch: KernelScratch::new(),
            sample: Vec::new(),
            splitters: Vec::new(),
            sort_scratch: Vec::new(),
            tree: None,
            base: Vec::new(),
        }
    }
}

impl<T: SelectElement> SelectWorkspace<T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// The search tree built by the most recent sample-kernel run.
    pub fn tree(&self) -> Option<&SearchTree<T>> {
        self.tree.as_ref()
    }

    /// Take ownership of the most recently built search tree.
    pub fn take_tree(&mut self) -> Option<SearchTree<T>> {
        self.tree.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr_of<U>(v: &[U]) -> *const U {
        v.as_ptr()
    }

    #[test]
    fn scratch_reuses_allocations() {
        let scratch = KernelScratch::new();
        let a = scratch.lease_u64(256);
        let a_ptr = ptr_of(&a);
        scratch.give_u64(a);
        let b = scratch.lease_u64(256);
        assert_eq!(ptr_of(&b), a_ptr, "same allocation handed back");
        assert!(b.iter().all(|&x| x == 0), "lease returns zeroed buffers");
    }

    #[test]
    fn scratch_leases_are_zeroed_after_dirty_give() {
        let scratch = KernelScratch::new();
        let mut a = scratch.lease_u32(8);
        a.iter_mut().for_each(|x| *x = 7);
        scratch.give_u32(a);
        let b = scratch.lease_u32(8);
        assert_eq!(b, vec![0u32; 8]);
    }

    #[test]
    fn scratch_best_fit_avoids_regrowing() {
        let scratch = KernelScratch::new();
        // Shelve a 1-element and a 256-element buffer.
        scratch.give_u64(Vec::with_capacity(1));
        scratch.give_u64(Vec::with_capacity(256));
        let big = scratch.lease_u64(200);
        assert!(big.capacity() >= 256, "picked the sufficient buffer");
        let small = scratch.lease_u64(1);
        assert!(small.capacity() < 256, "best fit kept the small one");
    }

    #[test]
    fn workspace_tree_roundtrip() {
        let mut ws: SelectWorkspace<f32> = SelectWorkspace::new();
        assert!(ws.tree().is_none());
        SearchTree::rebuild_into(&mut ws.tree, &[10.0f32, 20.0, 30.0]);
        assert_eq!(ws.tree().unwrap().num_buckets(), 4);
        let tree = ws.take_tree().unwrap();
        assert_eq!(tree.lookup(15.0), 1);
        assert!(ws.tree().is_none());
    }
}
