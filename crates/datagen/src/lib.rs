//! # select-datagen
//!
//! Workload generators for the selection experiments.
//!
//! The paper's evaluation (§V-A) uses datasets "generated as uniform
//! distribution across a pre-defined set of distinct values", with sizes
//! `n = 2^16 .. 2^28` and `d = 1, 16, 128, 1024, n` distinct values, and
//! picks the target rank uniformly at random per dataset. This crate
//! reproduces those workloads and adds the adversarial distributions
//! used to demonstrate SampleSelect's robustness against value-based
//! methods (BucketSelect/RadixSelect).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sampleselect::SelectElement;

/// The value distributions available to experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform over `d` distinct, evenly spaced values (§V-A's main
    /// workload; `d = 1` makes every element identical).
    UniformDistinct { distinct: usize },
    /// Continuous uniform on `[0, 1)` — the `d = n` case.
    Uniform,
    /// Gaussian via Box–Muller.
    Normal { mean: f64, std_dev: f64 },
    /// Exponential with rate `lambda` (a skewed but smooth case).
    Exponential { lambda: f64 },
    /// Already sorted ascending (pathological for naive pivot rules).
    SortedAscending,
    /// Sorted descending.
    SortedDescending,
    /// Adversarial for *value-range* bucketing (BucketSelect): almost
    /// all mass in a tiny interval near zero plus a few huge outliers
    /// that stretch the range, so uniform value-splitting puts nearly
    /// everything in one bucket, level after level.
    ClusteredOutliers,
    /// A geometric cascade of ever-denser clusters: value-range methods
    /// need one full pass per scale (`~log` levels), while rank-based
    /// methods are oblivious to it.
    GeometricCascade,
}

impl Distribution {
    /// Short label used in benchmark output rows.
    pub fn label(&self) -> String {
        match self {
            Distribution::UniformDistinct { distinct } => format!("uniform-d{distinct}"),
            Distribution::Uniform => "uniform".to_string(),
            Distribution::Normal { .. } => "normal".to_string(),
            Distribution::Exponential { .. } => "exponential".to_string(),
            Distribution::SortedAscending => "sorted-asc".to_string(),
            Distribution::SortedDescending => "sorted-desc".to_string(),
            Distribution::ClusteredOutliers => "clustered-outliers".to_string(),
            Distribution::GeometricCascade => "geometric-cascade".to_string(),
        }
    }
}

/// How the target rank is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankChoice {
    /// Uniformly random in `0..n` (the paper's §V-A protocol,
    /// "to simulate a variety of different workloads").
    Random,
    /// The median `n/2`.
    Median,
    /// A fixed rank.
    Fixed(usize),
}

/// A reproducible workload specification.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of elements.
    pub n: usize,
    /// Value distribution.
    pub distribution: Distribution,
    /// Rank selection policy.
    pub rank: RankChoice,
    /// Base RNG seed; combine with a repetition index via
    /// [`WorkloadSpec::instantiate`].
    pub seed: u64,
}

impl WorkloadSpec {
    /// Uniform workload with `d = n` (fully distinct), random rank.
    pub fn uniform(n: usize, seed: u64) -> Self {
        Self {
            n,
            distribution: Distribution::Uniform,
            rank: RankChoice::Random,
            seed,
        }
    }

    /// The paper's repeated-elements workload: uniform over `d` values.
    pub fn with_distinct(n: usize, distinct: usize, seed: u64) -> Self {
        Self {
            n,
            distribution: Distribution::UniformDistinct { distinct },
            rank: RankChoice::Random,
            seed,
        }
    }

    /// Generate repetition `rep` of this workload.
    pub fn instantiate<T: SelectElement>(&self, rep: u64) -> Workload<T> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ rep.wrapping_mul(0x9E3779B97F4A7C15));
        let data = generate::<T>(self.n, self.distribution, &mut rng);
        let rank = match self.rank {
            RankChoice::Random => rng.gen_range(0..self.n.max(1)),
            RankChoice::Median => self.n / 2,
            RankChoice::Fixed(k) => k,
        };
        Workload {
            data,
            rank,
            label: self.distribution.label(),
        }
    }
}

/// A concrete generated workload.
#[derive(Debug, Clone)]
pub struct Workload<T> {
    /// The input sequence.
    pub data: Vec<T>,
    /// The target rank.
    pub rank: usize,
    /// Distribution label (for reporting).
    pub label: String,
}

/// Generate `n` values of the given distribution.
pub fn generate<T: SelectElement>(n: usize, dist: Distribution, rng: &mut StdRng) -> Vec<T> {
    match dist {
        Distribution::UniformDistinct { distinct } => {
            let d = distinct.max(1);
            (0..n)
                .map(|_| {
                    let idx = rng.gen_range(0..d);
                    // Spread the d values over [0, 1) with even spacing.
                    T::from_f64((idx as f64 + 0.5) / d as f64)
                })
                .collect()
        }
        Distribution::Uniform => (0..n).map(|_| T::from_f64(rng.gen::<f64>())).collect(),
        Distribution::Normal { mean, std_dev } => {
            // Box–Muller, two values per draw.
            let mut out = Vec::with_capacity(n);
            while out.len() < n {
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                out.push(T::from_f64(mean + std_dev * r * theta.cos()));
                if out.len() < n {
                    out.push(T::from_f64(mean + std_dev * r * theta.sin()));
                }
            }
            out
        }
        Distribution::Exponential { lambda } => (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                T::from_f64(-u.ln() / lambda)
            })
            .collect(),
        Distribution::SortedAscending => (0..n)
            .map(|i| T::from_f64(i as f64 / n.max(1) as f64))
            .collect(),
        Distribution::SortedDescending => (0..n)
            .map(|i| T::from_f64((n - i) as f64 / n.max(1) as f64))
            .collect(),
        Distribution::ClusteredOutliers => {
            // ~99.99% of elements in [0, 1e-6); a handful of outliers up
            // to 1e9 stretch the value range by 15 orders of magnitude.
            (0..n)
                .map(|_| {
                    if rng.gen::<f64>() < 1e-4 {
                        T::from_f64(rng.gen::<f64>() * 1e9)
                    } else {
                        T::from_f64(rng.gen::<f64>() * 1e-6)
                    }
                })
                .collect()
        }
        Distribution::GeometricCascade => {
            // Half the mass at scale 1, decreasing shares at scales
            // 2^-6, 2^-12, ...: each value-range split isolates only the
            // top scale.
            (0..n)
                .map(|_| {
                    let level = rng.gen_range(0u32..16);
                    let scale = (0.5f64).powi((level * 6) as i32);
                    T::from_f64(scale * (1.0 + rng.gen::<f64>()))
                })
                .collect()
        }
    }
}

/// The paper's sweep sizes: `n = 2^16 .. 2^28` (§V-A). `full = false`
/// stops at 2^24 to keep harness runtimes sane on a laptop-class host.
pub fn paper_sizes(full: bool) -> Vec<usize> {
    let max_exp = if full { 28 } else { 24 };
    (16..=max_exp).step_by(2).map(|e| 1usize << e).collect()
}

/// The paper's distinct-value counts for the repetition study
/// (Fig. 8 right): `d = 1, 16, 128, 1024, …, n`.
pub fn paper_distinct_counts(n: usize) -> Vec<usize> {
    let mut counts = vec![1usize, 16, 128, 1024];
    let mut d = 1024 * 8;
    while d < n {
        counts.push(d);
        d *= 64;
    }
    counts.push(n);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(dist: Distribution) -> WorkloadSpec {
        WorkloadSpec {
            n: 10_000,
            distribution: dist,
            rank: RankChoice::Random,
            seed: 42,
        }
    }

    #[test]
    fn uniform_distinct_has_exactly_d_values() {
        for d in [1usize, 16, 128] {
            let w: Workload<f32> =
                spec(Distribution::UniformDistinct { distinct: d }).instantiate(0);
            let mut values: Vec<u32> = w.data.iter().map(|x| x.to_bits()).collect();
            values.sort_unstable();
            values.dedup();
            assert_eq!(values.len(), d, "d = {d}");
        }
    }

    #[test]
    fn uniform_values_in_unit_interval() {
        let w: Workload<f64> = spec(Distribution::Uniform).instantiate(0);
        assert!(w.data.iter().all(|&x| (0.0..1.0).contains(&x)));
        assert_eq!(w.data.len(), 10_000);
    }

    #[test]
    fn rank_in_range_and_deterministic() {
        let s = spec(Distribution::Uniform);
        let w1: Workload<f32> = s.instantiate(3);
        let w2: Workload<f32> = s.instantiate(3);
        assert!(w1.rank < w1.data.len());
        assert_eq!(w1.rank, w2.rank);
        assert_eq!(w1.data, w2.data);
        let w3: Workload<f32> = s.instantiate(4);
        assert_ne!(w1.data, w3.data, "different repetitions differ");
    }

    #[test]
    fn normal_has_plausible_moments() {
        let s = WorkloadSpec {
            n: 200_000,
            distribution: Distribution::Normal {
                mean: 10.0,
                std_dev: 2.0,
            },
            rank: RankChoice::Median,
            seed: 7,
        };
        let w: Workload<f64> = s.instantiate(0);
        let mean = w.data.iter().sum::<f64>() / w.data.len() as f64;
        let var = w.data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / w.data.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_is_positive_with_correct_mean() {
        let s = WorkloadSpec {
            n: 100_000,
            distribution: Distribution::Exponential { lambda: 2.0 },
            rank: RankChoice::Median,
            seed: 8,
        };
        let w: Workload<f64> = s.instantiate(0);
        assert!(w.data.iter().all(|&x| x > 0.0));
        let mean = w.data.iter().sum::<f64>() / w.data.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sorted_distributions_are_sorted() {
        let asc: Workload<f32> = spec(Distribution::SortedAscending).instantiate(0);
        assert!(asc.data.windows(2).all(|w| w[0] <= w[1]));
        let desc: Workload<f32> = spec(Distribution::SortedDescending).instantiate(0);
        assert!(desc.data.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn clustered_outliers_shape() {
        let s = WorkloadSpec {
            n: 100_000,
            distribution: Distribution::ClusteredOutliers,
            rank: RankChoice::Median,
            seed: 9,
        };
        let w: Workload<f64> = s.instantiate(0);
        let clustered = w.data.iter().filter(|&&x| x < 1e-6).count();
        let outliers = w.data.iter().filter(|&&x| x > 1e6).count();
        assert!(clustered > 99_000, "clustered {clustered}");
        assert!(outliers > 0 && outliers < 100, "outliers {outliers}");
    }

    #[test]
    fn geometric_cascade_spans_scales() {
        let s = WorkloadSpec {
            n: 100_000,
            distribution: Distribution::GeometricCascade,
            rank: RankChoice::Median,
            seed: 10,
        };
        let w: Workload<f64> = s.instantiate(0);
        let max = w.data.iter().cloned().fold(f64::MIN, f64::max);
        let min = w.data.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1e20, "dynamic range {max}/{min}");
    }

    #[test]
    fn paper_sizes_default_and_full() {
        let small = paper_sizes(false);
        assert_eq!(small.first(), Some(&(1 << 16)));
        assert_eq!(small.last(), Some(&(1 << 24)));
        let full = paper_sizes(true);
        assert_eq!(full.last(), Some(&(1 << 28)));
    }

    #[test]
    fn paper_distinct_counts_include_endpoints() {
        let counts = paper_distinct_counts(1 << 20);
        assert_eq!(counts[0], 1);
        assert!(counts.contains(&16));
        assert!(counts.contains(&1024));
        assert_eq!(*counts.last().unwrap(), 1 << 20);
    }

    #[test]
    fn median_and_fixed_rank_choices() {
        let mut s = spec(Distribution::Uniform);
        s.rank = RankChoice::Median;
        let w: Workload<f32> = s.instantiate(0);
        assert_eq!(w.rank, 5_000);
        s.rank = RankChoice::Fixed(123);
        let w: Workload<f32> = s.instantiate(0);
        assert_eq!(w.rank, 123);
    }

    #[test]
    fn labels_are_distinct_and_stable() {
        assert_eq!(Distribution::Uniform.label(), "uniform");
        assert_eq!(
            Distribution::UniformDistinct { distinct: 16 }.label(),
            "uniform-d16"
        );
        assert_eq!(
            Distribution::ClusteredOutliers.label(),
            "clustered-outliers"
        );
    }
}
