//! GPU architecture descriptors.
//!
//! Each [`GpuArchitecture`] bundles the publicly documented hardware
//! characteristics of a GPU model (the paper's Table I) together with the
//! cost-model parameters the simulator charges for memory traffic, atomic
//! operations, warp intrinsics, and kernel launches.
//!
//! The three shipped models are the two GPUs the paper evaluates on — the
//! Kepler-generation **Tesla K20Xm** and the Volta-generation **Tesla
//! V100** — plus the Fermi-generation **Tesla C2070** used in the paper's
//! §V-D comparison against BucketSelect (Alabi et al.).

use crate::cost::SimTime;

/// NVIDIA GPU hardware generations relevant to the paper.
///
/// The generation determines which low-level communication features are
/// available: fast *native* shared-memory atomics arrived with Maxwell
/// (the paper's §V-E cites the Maxwell shared-atomics improvement as the
/// reason warp aggregation is unnecessary on the V100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GpuGeneration {
    /// Fermi (compute capability 2.x) — e.g. Tesla C2070.
    Fermi,
    /// Kepler (3.x) — e.g. Tesla K20Xm. Shared atomics are lock-based and
    /// slow; global atomics were significantly improved over Fermi.
    Kepler,
    /// Maxwell (5.x) — first generation with native shared-memory atomics.
    Maxwell,
    /// Pascal (6.x).
    Pascal,
    /// Volta (7.0) — e.g. Tesla V100. Independent thread scheduling,
    /// very fast shared atomics.
    Volta,
}

impl GpuGeneration {
    /// Whether shared-memory atomics are implemented natively in hardware
    /// (Maxwell and newer) rather than through a lock/retry sequence.
    pub fn has_native_shared_atomics(self) -> bool {
        self >= GpuGeneration::Maxwell
    }

    /// Whether device-side kernel launch (CUDA Dynamic Parallelism) is
    /// supported (compute capability >= 3.5).
    pub fn has_dynamic_parallelism(self) -> bool {
        self >= GpuGeneration::Kepler
    }
}

/// Inter-device interconnect model: the bandwidth/latency pair the
/// simulator charges for traffic that crosses device boundaries
/// (all-reduced histograms, splitter broadcasts, shard re-partitioning).
///
/// Fermi/Kepler parts talk over PCIe 2.0; the V100 generation brings
/// NVLink. Bandwidth is per-direction sustained (not the marketing
/// aggregate); latency is the one-way small-message hop cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Interconnect name, e.g. `"NVLink 2.0"`.
    pub name: &'static str,
    /// Sustained per-direction bandwidth in GB/s (== bytes/ns).
    pub bandwidth_gbs: f64,
    /// One-way hop latency in microseconds.
    pub latency_us: f64,
}

impl LinkModel {
    /// PCIe 2.0 x16: ~8 GB/s theoretical, ~6 GB/s sustained.
    pub fn pcie2(latency_us: f64) -> Self {
        LinkModel {
            name: "PCIe 2.0 x16",
            bandwidth_gbs: 6.0,
            latency_us,
        }
    }

    /// NVLink 2.0 (V100 SXM2): 25 GB/s per link per direction, three
    /// links usable between a device pair in the DGX topology.
    pub fn nvlink2() -> Self {
        LinkModel {
            name: "NVLink 2.0",
            bandwidth_gbs: 75.0,
            latency_us: 1.3,
        }
    }

    /// Sustained link bandwidth in bytes per nanosecond.
    pub fn bytes_per_ns(&self) -> f64 {
        self.bandwidth_gbs // GB/s == bytes/ns
    }

    /// Point-to-point transfer time for `bytes` over one hop.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        SimTime::from_us(self.latency_us) + SimTime::from_ns(bytes as f64 / self.bytes_per_ns())
    }

    /// Ring all-reduce time for a `bytes`-sized payload across
    /// `devices` peers: `2 (k-1)` pipeline steps, each moving a
    /// `bytes / k` fragment and paying one hop latency. Degenerates to
    /// zero for a single device (nothing to reduce across).
    pub fn all_reduce_time(&self, bytes: u64, devices: usize) -> SimTime {
        if devices <= 1 {
            return SimTime::ZERO;
        }
        let k = devices as f64;
        let steps = 2.0 * (k - 1.0);
        let fragment = bytes as f64 / k;
        SimTime::from_us(self.latency_us) * steps
            + SimTime::from_ns(steps * fragment / self.bytes_per_ns())
    }

    /// Binomial-tree broadcast of `bytes` from one root to `devices - 1`
    /// peers: `ceil(log2 k)` rounds, each a full-payload hop.
    pub fn broadcast_time(&self, bytes: u64, devices: usize) -> SimTime {
        if devices <= 1 {
            return SimTime::ZERO;
        }
        let rounds = (devices as f64).log2().ceil();
        self.transfer_time(bytes) * rounds
    }
}

/// Hardware description + cost-model parameters for one GPU model.
///
/// The "documented" fields mirror the paper's Table I. The `*_ns`
/// cost-model fields are the simulator's analytic parameters; they are
/// derived from microbenchmark literature for each generation and are the
/// only place architecture-specific behaviour enters the simulation — the
/// kernels themselves are architecture-agnostic.
#[derive(Debug, Clone)]
pub struct GpuArchitecture {
    /// Marketing name, e.g. `"Tesla V100"`.
    pub name: &'static str,
    /// Hardware generation.
    pub generation: GpuGeneration,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Double-precision peak throughput in TFLOP/s.
    pub dp_tflops: f64,
    /// Single-precision peak throughput in TFLOP/s.
    pub sp_tflops: f64,
    /// Device memory capacity in GiB.
    pub mem_capacity_gib: f64,
    /// Theoretical peak memory bandwidth in GB/s.
    pub peak_bw_gbs: f64,
    /// Sustained memory bandwidth in GB/s (the paper measures this with
    /// the CUDA SDK bandwidth test; the cost model uses it for traffic).
    pub sustained_bw_gbs: f64,
    /// L2 cache size in MiB.
    pub l2_cache_mib: f64,
    /// L1/shared-memory size per SM in KiB.
    pub l1_kib: u32,
    /// Usable shared memory per thread block in KiB.
    pub shared_mem_per_block_kib: u32,
    /// Threads per warp (32 on every NVIDIA generation).
    pub warp_size: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Inter-device interconnect (PCIe or NVLink) for multi-GPU runs.
    pub link: LinkModel,

    // ---- cost-model parameters ----
    /// Cost of one warp-wide shared-memory atomic *instruction* on one
    /// SM, in nanoseconds (conflict-free case). Kepler compiles shared
    /// atomics to a lock/retry sequence, making this large; Maxwell+
    /// execute them natively in the shared-memory pipeline.
    pub shared_atomic_warp_ns: f64,
    /// Additional cost per same-address *replay* within a warp (the
    /// hardware serializes lanes hitting one address), in nanoseconds.
    pub shared_atomic_replay_ns: f64,
    /// Device-wide throughput cost per global atomic operation (L2
    /// bound), in nanoseconds per op, assuming distinct addresses.
    pub global_atomic_throughput_ns: f64,
    /// Serialization cost per global atomic op *to the same address*
    /// (device-wide; all blocks contend in L2), in nanoseconds.
    pub global_atomic_same_address_ns: f64,
    /// Cost of one warp-wide ballot/shuffle intrinsic, in nanoseconds
    /// (charged per warp, per intrinsic).
    pub warp_intrinsic_ns: f64,
    /// Shared-memory access throughput per SM in bytes per nanosecond.
    pub smem_bytes_per_ns: f64,
    /// Latency of a host-side kernel launch, in microseconds.
    pub host_launch_us: f64,
    /// Latency of a device-side (dynamic parallelism) launch, in
    /// microseconds.
    pub device_launch_us: f64,
    /// Non-coalesced access penalty multiplier for global traffic
    /// (effective bytes moved per byte requested for strided access).
    pub uncoalesced_penalty: f64,
    /// Integer/comparison operation throughput per SM in ops per
    /// nanosecond (used to charge the search-tree traversal arithmetic).
    pub int_ops_per_ns_per_sm: f64,
}

impl GpuArchitecture {
    /// Total device-wide integer-op throughput in ops/ns.
    pub fn int_ops_per_ns(&self) -> f64 {
        self.int_ops_per_ns_per_sm * self.num_sms as f64
    }

    /// Sustained memory bandwidth in bytes per nanosecond.
    pub fn bytes_per_ns(&self) -> f64 {
        self.sustained_bw_gbs // GB/s == bytes/ns
    }

    /// The largest bucket count for which the search tree plus bucket
    /// counters fit into one block's shared memory, assuming `elem_bytes`
    /// splitter storage and 4-byte counters.
    ///
    /// This is the limit the paper refers to with "the maximal bucket
    /// count for which the `sample` and `count` kernels stay within the
    /// shared memory limits (b <= 1024 on older NVIDIA GPUs)".
    pub fn max_buckets_in_shared(&self, elem_bytes: usize) -> usize {
        let budget = self.shared_mem_per_block_kib as usize * 1024;
        // tree: (2b - 1) splitter slots; counters: b u32 slots.
        let mut b = 2usize;
        while (2 * b * 2 - 1) * elem_bytes + b * 2 * 4 <= budget {
            b *= 2;
        }
        b
    }
}

/// NVIDIA Tesla K20Xm (Kepler GK110) — Table I, left column.
pub fn k20xm() -> GpuArchitecture {
    GpuArchitecture {
        name: "Tesla K20Xm",
        generation: GpuGeneration::Kepler,
        num_sms: 14,
        clock_ghz: 0.75,
        dp_tflops: 1.2,
        sp_tflops: 3.5,
        mem_capacity_gib: 5.0,
        peak_bw_gbs: 208.0,
        sustained_bw_gbs: 146.0,
        l2_cache_mib: 1.5,
        l1_kib: 64,
        shared_mem_per_block_kib: 48,
        warp_size: 32,
        max_threads_per_block: 1024,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 16,
        link: LinkModel::pcie2(8.0),
        // Kepler shared atomics are compiled to a lock/retry loop in
        // shared memory: expensive per instruction AND per same-address
        // replay — the reason the paper's K20Xm results favour the
        // global-atomics variants.
        shared_atomic_warp_ns: 55.0,
        shared_atomic_replay_ns: 38.0,
        global_atomic_throughput_ns: 0.15,
        global_atomic_same_address_ns: 1.2,
        warp_intrinsic_ns: 0.9,
        smem_bytes_per_ns: 128.0,
        host_launch_us: 8.0,
        device_launch_us: 4.0,
        uncoalesced_penalty: 4.0,
        int_ops_per_ns_per_sm: 48.0,
    }
}

/// NVIDIA Tesla V100 (Volta GV100) — Table I, right column.
pub fn v100() -> GpuArchitecture {
    GpuArchitecture {
        name: "Tesla V100",
        generation: GpuGeneration::Volta,
        num_sms: 80,
        clock_ghz: 1.53,
        dp_tflops: 7.0,
        sp_tflops: 14.0,
        mem_capacity_gib: 16.0,
        peak_bw_gbs: 900.0,
        sustained_bw_gbs: 742.0,
        l2_cache_mib: 6.0,
        l1_kib: 128,
        shared_mem_per_block_kib: 96,
        warp_size: 32,
        max_threads_per_block: 1024,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 32,
        link: LinkModel::nvlink2(),
        // Native shared atomics: pipelined at roughly one warp-wide
        // instruction per ~50 SM cycles, with cheap same-address
        // replays — fast enough that warp aggregation buys nothing
        // (§V-E), yet enough to be SampleSelect's bottleneck (§V-D).
        shared_atomic_warp_ns: 35.0,
        shared_atomic_replay_ns: 0.6,
        global_atomic_throughput_ns: 0.22,
        global_atomic_same_address_ns: 1.2,
        warp_intrinsic_ns: 0.35,
        smem_bytes_per_ns: 256.0,
        host_launch_us: 6.0,
        device_launch_us: 3.0,
        uncoalesced_penalty: 4.0,
        int_ops_per_ns_per_sm: 96.0,
    }
}

/// NVIDIA Tesla C2070 (Fermi) — the GPU Alabi et al. evaluated
/// BucketSelect on; used for the paper's §V-D cross-paper comparison.
pub fn c2070() -> GpuArchitecture {
    GpuArchitecture {
        name: "Tesla C2070",
        generation: GpuGeneration::Fermi,
        num_sms: 14,
        clock_ghz: 1.15,
        dp_tflops: 0.515,
        sp_tflops: 1.03,
        mem_capacity_gib: 6.0,
        peak_bw_gbs: 144.0,
        sustained_bw_gbs: 102.0,
        l2_cache_mib: 0.75,
        l1_kib: 64,
        shared_mem_per_block_kib: 48,
        warp_size: 32,
        max_threads_per_block: 1024,
        max_threads_per_sm: 1536,
        max_blocks_per_sm: 8,
        link: LinkModel::pcie2(10.0),
        // Fermi: shared atomics lock-based, global atomics slow (pre-
        // Kepler L2 atomic improvements).
        shared_atomic_warp_ns: 130.0,
        shared_atomic_replay_ns: 100.0,
        global_atomic_throughput_ns: 0.4,
        global_atomic_same_address_ns: 3.0,
        warp_intrinsic_ns: 1.4,
        smem_bytes_per_ns: 64.0,
        host_launch_us: 10.0,
        device_launch_us: 10.0, // no dynamic parallelism: host launch cost
        uncoalesced_penalty: 6.0,
        int_ops_per_ns_per_sm: 32.0,
    }
}

/// All architectures shipped with the simulator, for sweeps.
pub fn all_architectures() -> Vec<GpuArchitecture> {
    vec![c2070(), k20xm(), v100()]
}

/// Look an architecture up by (case-insensitive) substring of its name.
pub fn by_name(name: &str) -> Option<GpuArchitecture> {
    let needle = name.to_ascii_lowercase();
    all_architectures()
        .into_iter()
        .find(|a| a.name.to_ascii_lowercase().contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_order_matches_release_order() {
        assert!(GpuGeneration::Fermi < GpuGeneration::Kepler);
        assert!(GpuGeneration::Kepler < GpuGeneration::Maxwell);
        assert!(GpuGeneration::Maxwell < GpuGeneration::Volta);
    }

    #[test]
    fn native_shared_atomics_from_maxwell() {
        assert!(!GpuGeneration::Fermi.has_native_shared_atomics());
        assert!(!GpuGeneration::Kepler.has_native_shared_atomics());
        assert!(GpuGeneration::Maxwell.has_native_shared_atomics());
        assert!(GpuGeneration::Volta.has_native_shared_atomics());
    }

    #[test]
    fn dynamic_parallelism_from_kepler() {
        assert!(!GpuGeneration::Fermi.has_dynamic_parallelism());
        assert!(GpuGeneration::Kepler.has_dynamic_parallelism());
    }

    #[test]
    fn table1_characteristics() {
        let k = k20xm();
        assert_eq!(k.generation, GpuGeneration::Kepler);
        assert!((k.sustained_bw_gbs - 146.0).abs() < 1e-9);
        let v = v100();
        assert_eq!(v.num_sms, 80);
        assert!((v.sustained_bw_gbs - 742.0).abs() < 1e-9);
        assert!(v.sustained_bw_gbs < v.peak_bw_gbs);
        assert!(k.sustained_bw_gbs < k.peak_bw_gbs);
    }

    #[test]
    fn kepler_shared_atomics_slower_than_volta() {
        // This parameter relationship drives the paper's central
        // architecture-dependent result (Fig. 8): Kepler pays heavily
        // both per instruction and per same-address replay.
        assert!(k20xm().shared_atomic_warp_ns > v100().shared_atomic_warp_ns);
        assert!(k20xm().shared_atomic_replay_ns > 50.0 * v100().shared_atomic_replay_ns);
    }

    #[test]
    fn max_buckets_in_shared_is_reasonable() {
        let v = v100();
        // f32 splitters: at least 1024 buckets must fit (paper §V-G).
        assert!(v.max_buckets_in_shared(4) >= 1024);
        let k = k20xm();
        assert!(k.max_buckets_in_shared(4) >= 1024);
        assert!(k.max_buckets_in_shared(8) >= 512);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("v100").unwrap().name, "Tesla V100");
        assert_eq!(by_name("K20").unwrap().name, "Tesla K20Xm");
        assert_eq!(by_name("C2070").unwrap().name, "Tesla C2070");
        assert!(by_name("A100").is_none());
    }

    #[test]
    fn bytes_per_ns_equals_gbs() {
        // GB/s and bytes/ns are the same unit; guard against unit slips.
        assert!((v100().bytes_per_ns() - 742.0).abs() < 1e-12);
    }

    #[test]
    fn link_transfer_monotone_in_bytes_with_latency_floor() {
        let link = v100().link;
        let small = link.transfer_time(64);
        let large = link.transfer_time(1 << 20);
        assert!(small < large);
        // Tiny messages are latency-bound: the floor is the hop latency.
        assert!(small.as_us() >= link.latency_us);
        assert!(small.as_us() < link.latency_us + 1.0);
    }

    #[test]
    fn nvlink_beats_pcie() {
        let bytes = 64u64 << 20;
        assert!(v100().link.transfer_time(bytes) < c2070().link.transfer_time(bytes));
        assert!(v100().link.all_reduce_time(bytes, 4) < k20xm().link.all_reduce_time(bytes, 4));
    }

    #[test]
    fn all_reduce_degenerates_and_scales() {
        let link = v100().link;
        assert_eq!(link.all_reduce_time(1 << 20, 1), SimTime::ZERO);
        // Ring all-reduce moves ~2x the payload regardless of k; the
        // latency term grows with k.
        let t2 = link.all_reduce_time(1 << 20, 2);
        let t8 = link.all_reduce_time(1 << 20, 8);
        assert!(t8 > t2);
        assert!(t8.as_us() < t2.as_us() * 10.0);
    }

    #[test]
    fn broadcast_rounds_are_logarithmic() {
        let link = k20xm().link;
        let one = link.broadcast_time(4096, 2);
        let four = link.broadcast_time(4096, 4);
        let eight = link.broadcast_time(4096, 8);
        assert!((four.as_ns() - 2.0 * one.as_ns()).abs() < 1e-6);
        assert!((eight.as_ns() - 3.0 * one.as_ns()).abs() < 1e-6);
    }
}
