//! A thread-level BSP (bulk-synchronous parallel) block executor: the
//! reference interpretation of the SIMT model.
//!
//! The production kernels in this workspace are *vectorized* — they
//! process data warp-by-warp with explicit loops, which is fast on the
//! host. This module provides the slow-but-obviously-correct
//! counterpart: a block of simulated threads, each defined by a
//! closure, executed in lockstep **phases** separated by barriers
//! (`__syncthreads`). Warp-wide intrinsics and shared-memory atomics
//! are exposed per phase, with the same exact collision accounting as
//! the vectorized path.
//!
//! Its role is cross-validation: tests run small kernels through both
//! implementations and require bit-identical results and identical
//! collision counts (see `count.rs`'s tests in the `sampleselect`
//! crate and the tests below).

use crate::cost::KernelCost;
use crate::warp::{ballot, warp_atomic_stats, WARP_SIZE};

/// A simulated thread block executing in BSP phases.
///
/// Threads do not run concurrently; each *phase* is a closure invoked
/// once per thread, and phases are separated by implicit barriers. This
/// models any CUDA kernel of the form
/// `phase; __syncthreads(); phase; …` — which covers every kernel in
/// the paper.
pub struct BlockExec {
    num_threads: usize,
    /// Shared memory as 32-bit words (the granularity of the paper's
    /// counters; element payloads use their own typed arrays).
    shared_u32: Vec<u32>,
    /// Resource usage accrued by this block.
    pub cost: KernelCost,
    barriers: u64,
}

impl BlockExec {
    /// Create a block of `num_threads` threads with `shared_words`
    /// 32-bit words of shared memory (zero-initialized).
    pub fn new(num_threads: usize, shared_words: usize) -> Self {
        assert!(
            num_threads > 0 && num_threads.is_multiple_of(WARP_SIZE),
            "thread blocks are whole warps"
        );
        let mut cost = KernelCost::new();
        cost.blocks = 1;
        Self {
            num_threads,
            shared_u32: vec![0; shared_words],
            cost,
            barriers: 0,
        }
    }

    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn num_warps(&self) -> usize {
        self.num_threads / WARP_SIZE
    }

    /// Read shared memory (tracked).
    pub fn smem_read(&mut self, idx: usize) -> u32 {
        self.cost.smem_bytes += 4;
        self.shared_u32[idx]
    }

    /// Write shared memory (tracked).
    pub fn smem_write(&mut self, idx: usize, value: u32) {
        self.cost.smem_bytes += 4;
        self.shared_u32[idx] = value;
    }

    /// Untracked view for result extraction.
    pub fn shared(&self) -> &[u32] {
        &self.shared_u32
    }

    /// Run one phase: `f(tid, block)` for every thread, in thread order,
    /// followed by an implicit barrier.
    ///
    /// Sequential execution per phase is faithful for programs whose
    /// phases are data-race-free (each shared location written by at
    /// most one thread per phase, or only through the atomic helpers) —
    /// which the assertions in the atomic helpers enforce for counters.
    pub fn phase<F>(&mut self, mut f: F)
    where
        F: FnMut(usize, &mut BlockExec),
    {
        for tid in 0..self.num_threads {
            f(tid, self);
        }
        self.barrier();
    }

    /// A warp-synchronous phase: `f(warp_id, lane_values)` receives each
    /// warp's 32 per-lane values produced by `lane(tid)` and returns the
    /// per-lane results; used to model ballot/shuffle-style exchanges.
    pub fn warp_phase<L, F, T: Copy + Default>(&mut self, mut lane: L, mut f: F) -> Vec<T>
    where
        L: FnMut(usize, &mut BlockExec) -> T,
        F: FnMut(usize, &[T], &mut BlockExec) -> Vec<T>,
    {
        let mut out = vec![T::default(); self.num_threads];
        for warp in 0..self.num_warps() {
            let base = warp * WARP_SIZE;
            let values: Vec<T> = (0..WARP_SIZE).map(|l| lane(base + l, self)).collect();
            let results = f(warp, &values, self);
            assert_eq!(results.len(), WARP_SIZE);
            out[base..base + WARP_SIZE].copy_from_slice(&results);
        }
        self.barrier();
        out
    }

    /// Warp-wide ballot across one warp's predicate values, charged as
    /// one intrinsic.
    pub fn warp_ballot(&mut self, preds: &[bool]) -> u32 {
        self.cost.warp_intrinsics += 1;
        ballot(preds)
    }

    /// Execute one warp-wide shared-memory atomic-add instruction: each
    /// lane increments `counter_base + targets[lane]`. Returns each
    /// lane's fetched-before value; charges the exact collision cost.
    pub fn warp_shared_atomic_add(&mut self, counter_base: usize, targets: &[u32]) -> Vec<u32> {
        assert!(targets.len() <= WARP_SIZE);
        let mut scratch = vec![0u32; self.shared_u32.len()];
        let stats = warp_atomic_stats(targets, &mut scratch);
        self.cost.shared_atomic_warp_ops += 1;
        self.cost.shared_atomic_replays += stats.max_multiplicity.saturating_sub(1) as u64;
        // lanes commit in lane order (hardware order is unspecified; any
        // serialization yields the same final counter values)
        targets
            .iter()
            .map(|&t| {
                let slot = counter_base + t as usize;
                let old = self.shared_u32[slot];
                self.shared_u32[slot] = old + 1;
                old
            })
            .collect()
    }

    /// Block-wide barrier (`__syncthreads`), charged as an intrinsic.
    pub fn barrier(&mut self) {
        self.barriers += 1;
        self.cost.warp_intrinsics += 1;
    }

    /// Barriers executed so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_run_every_thread_once() {
        let mut block = BlockExec::new(64, 64);
        block.phase(|tid, b| {
            b.smem_write(tid, tid as u32 * 2);
        });
        for tid in 0..64 {
            assert_eq!(block.shared()[tid], tid as u32 * 2);
        }
        assert_eq!(block.barriers(), 1);
    }

    #[test]
    #[should_panic(expected = "whole warps")]
    fn partial_warp_blocks_rejected() {
        BlockExec::new(33, 0);
    }

    #[test]
    fn histogram_kernel_thread_style() {
        // The count kernel's inner loop written thread-style: 128
        // threads classify one element each into 8 counters.
        let mut block = BlockExec::new(128, 8);
        let data: Vec<u32> = (0..128).map(|i| (i * 13) % 8).collect();
        for warp in 0..4 {
            let targets: Vec<u32> = (0..WARP_SIZE).map(|l| data[warp * 32 + l]).collect();
            block.warp_shared_atomic_add(0, &targets);
        }
        // counters hold the histogram
        let mut expected = [0u32; 8];
        for &d in &data {
            expected[d as usize] += 1;
        }
        assert_eq!(block.shared()[..8], expected[..]);
        assert_eq!(block.cost.shared_atomic_warp_ops, 4);
        // 128 elements over 8 counters: each warp has max multiplicity 4
        assert_eq!(block.cost.shared_atomic_replays, 4 * 3);
    }

    #[test]
    fn atomic_add_returns_fetch_order_values() {
        let mut block = BlockExec::new(32, 4);
        let olds = block.warp_shared_atomic_add(0, &[1, 1, 1, 2]);
        assert_eq!(olds, vec![0, 1, 2, 0]);
        assert_eq!(block.shared()[1], 3);
        assert_eq!(block.shared()[2], 1);
    }

    #[test]
    fn warp_phase_exposes_lane_values() {
        let mut block = BlockExec::new(64, 0);
        let results = block.warp_phase(
            |tid, _| tid as u32,
            |_warp, lanes, b| {
                // ballot of "odd lane value"
                let preds: Vec<bool> = lanes.iter().map(|&v| v % 2 == 1).collect();
                let mask = b.warp_ballot(&preds);
                lanes.iter().map(|_| mask).collect()
            },
        );
        // odd lanes of every warp: alternating bits
        assert!(results.iter().all(|&m| m == 0xAAAA_AAAA));
        assert_eq!(block.cost.warp_intrinsics, 2 + 1); // 2 ballots + 1 barrier
    }

    #[test]
    fn cost_matches_vectorized_accounting() {
        // All 32 lanes hit one counter: 1 warp op + 31 replays — exactly
        // what the vectorized count kernel charges for the same warp.
        let mut block = BlockExec::new(32, 1);
        block.warp_shared_atomic_add(0, &[0; 32]);
        assert_eq!(block.cost.shared_atomic_warp_ops, 1);
        assert_eq!(block.cost.shared_atomic_replays, 31);
        assert_eq!(block.shared()[0], 32);
    }
}
